"""Trajectory cache for the batched ensemble engines.

The paper's §4.3 design loop reruns the *same* transient ensembles many
times: a readout-tolerance sweep re-reads one mismatch ensemble at many
thresholds, a PUF attack re-simulates the same chips per challenge
batch, a parameter study revisits grid points. Every rerun used to pay
the full integration again. :class:`TrajectoryCache` memoizes batched
solves keyed by *everything that determines the result bit-for-bit*:

* the batch's structural signature (state layout, production terms,
  algebraic definitions, diffusion terms);
* every per-instance attribute value (numeric values hashed exactly;
  callable values through their stable ``_ark_vector_key`` /
  builtin / importable-module identity);
* the stacked initial states;
* the output grid (``t_span``/``n_points`` or an explicit ``t_eval``)
  and every solver option that steers the integrator (method, rtol,
  atol, max_step, dense flag, SDE noise seeds, and the canonical
  array-backend spec — backend name plus dtype — so numerically
  different executions never collide).

A batch whose identity cannot be established *stably* — e.g. a
registered closure with no ``_ark_vector_key`` — is reported as
uncachable (``key_for`` returns ``None``) rather than risking a
wrong-answer collision; callers fall through to a plain solve.

Backends: an in-memory LRU (default) plus an optional on-disk store
(``directory=...``) holding one ``.npz`` per entry, so long sweeps
survive process restarts. Hits return copies — a caller mutating a
returned trajectory cannot poison the store.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import sys
import uuid
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.core import expr as E
from repro.core.odesystem import OdeSystem
from repro.sim.array_api import canonical_spec


#: Folded into every key: bump whenever solver numerics change in a
#: way no keyed option captures (integrator coefficients, emitter
#: layout), so persisted disk entries from older code are invalidated
#: instead of silently replayed as current results.
#: 2: the unified execution-plan layer keys ``freeze_tol`` (and the
#: noisy path keys the full solver-option set), so pre-plan disk
#: entries no longer match.
#: 3: keys fold in the *canonical* array-backend spec (backend name +
#: dtype, e.g. ``numpy:float64``), so a float32 or jax solve can never
#: replay a float64/numpy entry — and ``None``/``"numpy"``/
#: ``"numpy:float64"`` spellings of the default all share one key.
#: 4: the adaptive SDE methods (``heun-adaptive``/``em-adaptive``)
#: land ``rtol``/``atol`` a *solver-accuracy* role on the noisy path
#: (previously they only steered the freeze criterion there), and
#: correlated-noise aliasing (``share_wiener``) rekeys diffusion
#: stream identities — both change what an option set means, so older
#: noisy entries must not replay.
CACHE_SCHEMA = 4


def _function_token(name: str, fn) -> tuple | None:
    """A process-independent identity for a registered function, or
    ``None`` when there is none (anonymous closures — uncachable,
    because ``id()`` can be recycled within a process and is
    meaningless across processes)."""
    vector_key = getattr(fn, "_ark_vector_key", None)
    if vector_key is not None:
        return ("vk", repr(vector_key))
    if E.BUILTIN_FUNCTIONS.get(name) is fn:
        return ("builtin", name)
    module_name = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if module_name and qualname and "<locals>" not in qualname:
        target = sys.modules.get(module_name)
        for part in qualname.split("."):
            target = getattr(target, part, None)
            if target is None:
                break
        if target is fn:
            return ("module", module_name, qualname)
    return None


def _value_token(value) -> tuple | None:
    """Hashable identity of one attribute value (or None: uncachable)."""
    if isinstance(value, (bool,)):
        return ("bool", value)
    if isinstance(value, (int, float, np.floating, np.integer)):
        return ("num", float(value))
    if callable(value):
        token = _function_token("", value)
        return None if token is None else ("call",) + token
    if isinstance(value, str):
        return ("str", value)
    return None


@dataclass
class CacheStats:
    """Hit/miss/eviction counters, surfaced on the cache object itself.

    Field access (``cache.stats.hits``) keeps working for existing
    callers; ``cache.stats()`` additionally returns the whole block as
    a plain dict snapshot, which is what benchmarks and ``RunReport``
    consumers embed.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    uncachable: int = 0
    evictions: int = 0
    #: disk entries that existed but could not be read back (truncated
    #: write from a crashed run, filesystem corruption...) — counted as
    #: misses and warned about, never raised mid-sweep.
    corrupt: int = 0
    bytes_stored: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __call__(self) -> dict:
        """Snapshot as a plain dict (includes the derived hit rate)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "uncachable": self.uncachable,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "bytes_stored": self.bytes_stored,
            "hit_rate": self.hit_rate,
        }


@dataclass
class TrajectoryCache:
    """LRU (+ optional disk) store of batched trajectories.

    :param maxsize: in-memory entries kept (least-recently-used
        eviction); 0 disables the memory tier (disk only).
    :param directory: optional path for the persistent tier; created on
        first store. Each entry is one uncompressed ``.npz``.
    """

    maxsize: int = 64
    directory: str | pathlib.Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict)

    def key_for(self, systems: list[OdeSystem], kind: str,
                options: dict) -> str | None:
        """Cache key of a batched solve, or ``None`` when any part of
        the batch's identity is unstable (then the caller must solve).

        :param systems: the structurally compatible batch, in row order.
        :param kind: solver family tag (``"batch"`` or ``"sde"``) so a
            deterministic and a stochastic run never share a key.
        :param options: every solver option that steers the result —
            grid spec, method, tolerances, noise seeds... Values may be
            scalars, strings, ``None``, tuples, or numpy arrays.
        """
        lead = systems[0]
        hasher = hashlib.sha256()
        hasher.update(f"schema={CACHE_SCHEMA};".encode())
        hasher.update(kind.encode())
        signature = lead.structural_signature()
        # The signature's function-identity element (position 4, see
        # OdeSystem.structural_signature) uses id() for untagged
        # callables — stable within a process but meaningless on disk
        # and recyclable by the allocator, so it is replaced by stable
        # tokens (or the whole batch is declared uncachable).
        function_tokens = []
        for name, fn in sorted(lead.functions.items()):
            token = _function_token(name, fn)
            if token is None:
                self.stats.uncachable += 1
                telemetry.add("cache.uncachable")
                return None
            function_tokens.append((name, token))
        stable = (signature[0], signature[1], signature[2],
                  signature[3], tuple(function_tokens), signature[5])
        hasher.update(repr(stable).encode())
        for key in sorted(lead.attr_values):
            values = [system.attr_values.get(key) for system in systems]
            if all(isinstance(v, (int, float, np.floating, np.integer))
                   and not isinstance(v, bool) for v in values):
                hasher.update(repr(key).encode())
                hasher.update(np.asarray(values, dtype=float).tobytes())
                continue
            tokens = [_value_token(v) for v in values]
            if any(token is None for token in tokens):
                self.stats.uncachable += 1
                telemetry.add("cache.uncachable")
                return None
            hasher.update(repr((key, tokens)).encode())
        hasher.update(np.stack([system.y0 for system in systems])
                      .tobytes())
        for name in sorted(options):
            value = options[name]
            if name == "array_backend":
                # Canonicalize so every spelling of the default
                # (None, "numpy", "numpy:float64") shares one key while
                # any other backend or dtype gets its own; see
                # :func:`repro.sim.array_api.canonical_spec`.
                value = canonical_spec(value)
            hasher.update(name.encode())
            if isinstance(value, np.ndarray):
                hasher.update(value.astype(float).tobytes())
            else:
                hasher.update(repr(value).encode())
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------

    def _disk_path(self, key: str) -> pathlib.Path | None:
        if self.directory is None:
            return None
        return pathlib.Path(self.directory) / f"{key}.npz"

    def get(self, key: str) -> tuple[np.ndarray, np.ndarray] | None:
        """The stored ``(t, y)`` pair (copies), or ``None`` on miss.

        A disk entry that exists but cannot be read back (torn write
        from a crashed run, disk corruption) is a *miss*, not an error:
        it is counted in ``stats.corrupt``, warned about once, and the
        caller re-solves — a damaged cache file must never abort a
        sweep that would have succeeded without a cache.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            telemetry.add("cache.hits")
            return entry[0].copy(), entry[1].copy()
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                with np.load(path) as payload:
                    t, y = payload["t"], payload["y"]
            except Exception as error:
                self.stats.corrupt += 1
                self.stats.misses += 1
                telemetry.add("cache.corrupt")
                telemetry.add("cache.misses")
                warnings.warn(
                    f"trajectory cache entry {path} is unreadable "
                    f"({type(error).__name__}: {error}); treating as "
                    f"a miss and re-solving", RuntimeWarning,
                    stacklevel=2)
                return None
            self._remember(key, t, y)
            self.stats.hits += 1
            telemetry.add("cache.hits")
            return t.copy(), y.copy()
        self.stats.misses += 1
        telemetry.add("cache.misses")
        return None

    def put(self, key: str, t: np.ndarray, y: np.ndarray):
        """Store one batched result (arrays are copied in). ``y``
        keeps its dtype — a float32-policy entry must replay as
        float32, not silently widen on the warm path."""
        t = np.asarray(t, dtype=float).copy()
        y = np.asarray(y).copy()
        self._remember(key, t, y)
        path = self._disk_path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Write-then-rename so neither a crashed run nor several
            # processes storing the same key concurrently (pool workers
            # or parallel sweeps sharing one --cache-dir) can ever
            # publish a torn .npz; the temp name must be per-writer for
            # the rename to be atomic, and the fsync before the rename
            # keeps a power loss from replacing a good entry with an
            # empty file (rename can be durable before the data is).
            temporary = path.with_suffix(
                f".{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp.npz")
            try:
                with open(temporary, "wb") as handle:
                    np.savez(handle, t=t, y=y)
                    handle.flush()
                    os.fsync(handle.fileno())
                temporary.replace(path)
            finally:
                temporary.unlink(missing_ok=True)
        self.stats.stores += 1
        self.stats.bytes_stored += t.nbytes + y.nbytes
        telemetry.add("cache.stores")
        telemetry.add("cache.bytes_stored", t.nbytes + y.nbytes)

    def _remember(self, key: str, t: np.ndarray, y: np.ndarray):
        if self.maxsize < 1:
            return
        self._entries[key] = (t, y)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            telemetry.add("cache.evictions")

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self):
        """Drop the in-memory tier (disk entries are kept)."""
        self._entries.clear()


def cache_lookup(store: TrajectoryCache | None, systems, kind,
                 options: dict):
    """The lookup half of the caching protocol: returns ``(key,
    trajectory-or-None)``. ``key`` is ``None`` for an absent store or
    an unstable batch identity (then nothing may be stored either); a
    non-``None`` trajectory is the rebuilt hit."""
    from repro.sim.batch_solver import BatchTrajectory

    if store is None:
        return None, None
    key = store.key_for(systems, kind, options)
    if key is None:
        return None, None
    hit = store.get(key)
    if hit is None:
        return key, None
    return key, BatchTrajectory(t=hit[0], y=hit[1],
                                systems=list(systems))


def cache_store(store: TrajectoryCache | None, key,
                trajectory, storable: bool) -> None:
    """The store half of the protocol: persist a solved batch under a
    key obtained from :func:`cache_lookup`. ``storable=False`` vetoes
    storing a result an uncached rerun could not reproduce bit-for-bit
    (e.g. a shard-split adaptive solve, whose step control differs
    from the whole-group integration)."""
    if store is not None and key is not None and storable:
        store.put(key, trajectory.t, trajectory.y)


def cached_batch_solve(store: TrajectoryCache | None, systems, kind,
                       options: dict, solve):
    """Run one batched solve through an optional cache: key, get,
    rebuild-on-hit, else solve and store — the shared sequence of the
    ensemble and noisy drivers (the streaming executor uses the
    :func:`cache_lookup`/:func:`cache_store` halves directly, because
    its solve happens asynchronously between them).

    ``solve()`` must return ``(BatchTrajectory, storable)``; solver
    exceptions propagate to the caller unchanged.
    """
    key, hit = cache_lookup(store, systems, kind, options)
    if hit is not None:
        return hit
    trajectory, storable = solve()
    cache_store(store, key, trajectory, storable)
    return trajectory


_DEFAULT_CACHE: TrajectoryCache | None = None


def default_cache() -> TrajectoryCache:
    """The process-wide cache used by ``cache=True`` drivers."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = TrajectoryCache()
    return _DEFAULT_CACHE


def resolve_cache(cache) -> TrajectoryCache | None:
    """Normalize a driver's ``cache`` argument: ``None``/``False`` (no
    caching), ``True`` (process-wide default), a directory path (disk
    backed), or a :class:`TrajectoryCache` instance."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return default_cache()
    if isinstance(cache, (str, pathlib.Path)):
        return TrajectoryCache(directory=cache)
    if isinstance(cache, TrajectoryCache):
        return cache
    raise TypeError(
        f"cache must be None, bool, a path, or a TrajectoryCache, got "
        f"{type(cache).__name__}")
