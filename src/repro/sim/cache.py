"""Trajectory cache for the batched ensemble engines.

The paper's §4.3 design loop reruns the *same* transient ensembles many
times: a readout-tolerance sweep re-reads one mismatch ensemble at many
thresholds, a PUF attack re-simulates the same chips per challenge
batch, a parameter study revisits grid points. Every rerun used to pay
the full integration again. :class:`TrajectoryCache` memoizes batched
solves keyed by *everything that determines the result bit-for-bit*:

* the batch's structural signature (state layout, production terms,
  algebraic definitions, diffusion terms);
* every per-instance attribute value (numeric values hashed exactly;
  callable values through their stable ``_ark_vector_key`` /
  builtin / importable-module identity);
* the stacked initial states;
* the output grid (``t_span``/``n_points`` or an explicit ``t_eval``)
  and every solver option that steers the integrator (method, rtol,
  atol, max_step, dense flag, SDE noise seeds).

A batch whose identity cannot be established *stably* — e.g. a
registered closure with no ``_ark_vector_key`` — is reported as
uncachable (``key_for`` returns ``None``) rather than risking a
wrong-answer collision; callers fall through to a plain solve.

Backends: an in-memory LRU (default) plus an optional on-disk store
(``directory=...``) holding one ``.npz`` per entry, so long sweeps
survive process restarts. Hits return copies — a caller mutating a
returned trajectory cannot poison the store.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import sys
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core import expr as E
from repro.core.odesystem import OdeSystem


#: Folded into every key: bump whenever solver numerics change in a
#: way no keyed option captures (integrator coefficients, emitter
#: layout), so persisted disk entries from older code are invalidated
#: instead of silently replayed as current results.
#: 2: the unified execution-plan layer keys ``freeze_tol`` (and the
#: noisy path keys the full solver-option set), so pre-plan disk
#: entries no longer match.
CACHE_SCHEMA = 2


def _function_token(name: str, fn) -> tuple | None:
    """A process-independent identity for a registered function, or
    ``None`` when there is none (anonymous closures — uncachable,
    because ``id()`` can be recycled within a process and is
    meaningless across processes)."""
    vector_key = getattr(fn, "_ark_vector_key", None)
    if vector_key is not None:
        return ("vk", repr(vector_key))
    if E.BUILTIN_FUNCTIONS.get(name) is fn:
        return ("builtin", name)
    module_name = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if module_name and qualname and "<locals>" not in qualname:
        target = sys.modules.get(module_name)
        for part in qualname.split("."):
            target = getattr(target, part, None)
            if target is None:
                break
        if target is fn:
            return ("module", module_name, qualname)
    return None


def _value_token(value) -> tuple | None:
    """Hashable identity of one attribute value (or None: uncachable)."""
    if isinstance(value, (bool,)):
        return ("bool", value)
    if isinstance(value, (int, float, np.floating, np.integer)):
        return ("num", float(value))
    if callable(value):
        token = _function_token("", value)
        return None if token is None else ("call",) + token
    if isinstance(value, str):
        return ("str", value)
    return None


@dataclass
class CacheStats:
    """Hit/miss counters (the benchmark runner reports these)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    uncachable: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class TrajectoryCache:
    """LRU (+ optional disk) store of batched trajectories.

    :param maxsize: in-memory entries kept (least-recently-used
        eviction); 0 disables the memory tier (disk only).
    :param directory: optional path for the persistent tier; created on
        first store. Each entry is one uncompressed ``.npz``.
    """

    maxsize: int = 64
    directory: str | pathlib.Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict)

    def key_for(self, systems: list[OdeSystem], kind: str,
                options: dict) -> str | None:
        """Cache key of a batched solve, or ``None`` when any part of
        the batch's identity is unstable (then the caller must solve).

        :param systems: the structurally compatible batch, in row order.
        :param kind: solver family tag (``"batch"`` or ``"sde"``) so a
            deterministic and a stochastic run never share a key.
        :param options: every solver option that steers the result —
            grid spec, method, tolerances, noise seeds... Values may be
            scalars, strings, ``None``, tuples, or numpy arrays.
        """
        lead = systems[0]
        hasher = hashlib.sha256()
        hasher.update(f"schema={CACHE_SCHEMA};".encode())
        hasher.update(kind.encode())
        signature = lead.structural_signature()
        # The signature's function-identity element (position 4, see
        # OdeSystem.structural_signature) uses id() for untagged
        # callables — stable within a process but meaningless on disk
        # and recyclable by the allocator, so it is replaced by stable
        # tokens (or the whole batch is declared uncachable).
        function_tokens = []
        for name, fn in sorted(lead.functions.items()):
            token = _function_token(name, fn)
            if token is None:
                self.stats.uncachable += 1
                return None
            function_tokens.append((name, token))
        stable = (signature[0], signature[1], signature[2],
                  signature[3], tuple(function_tokens), signature[5])
        hasher.update(repr(stable).encode())
        for key in sorted(lead.attr_values):
            values = [system.attr_values.get(key) for system in systems]
            if all(isinstance(v, (int, float, np.floating, np.integer))
                   and not isinstance(v, bool) for v in values):
                hasher.update(repr(key).encode())
                hasher.update(np.asarray(values, dtype=float).tobytes())
                continue
            tokens = [_value_token(v) for v in values]
            if any(token is None for token in tokens):
                self.stats.uncachable += 1
                return None
            hasher.update(repr((key, tokens)).encode())
        hasher.update(np.stack([system.y0 for system in systems])
                      .tobytes())
        for name in sorted(options):
            value = options[name]
            hasher.update(name.encode())
            if isinstance(value, np.ndarray):
                hasher.update(value.astype(float).tobytes())
            else:
                hasher.update(repr(value).encode())
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------

    def _disk_path(self, key: str) -> pathlib.Path | None:
        if self.directory is None:
            return None
        return pathlib.Path(self.directory) / f"{key}.npz"

    def get(self, key: str) -> tuple[np.ndarray, np.ndarray] | None:
        """The stored ``(t, y)`` pair (copies), or ``None`` on miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0].copy(), entry[1].copy()
        path = self._disk_path(key)
        if path is not None and path.exists():
            with np.load(path) as payload:
                t, y = payload["t"], payload["y"]
            self._remember(key, t, y)
            self.stats.hits += 1
            return t.copy(), y.copy()
        self.stats.misses += 1
        return None

    def put(self, key: str, t: np.ndarray, y: np.ndarray):
        """Store one batched result (arrays are copied in)."""
        t = np.asarray(t, dtype=float).copy()
        y = np.asarray(y, dtype=float).copy()
        self._remember(key, t, y)
        path = self._disk_path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Write-then-rename so neither a crashed run nor several
            # processes storing the same key concurrently (pool workers
            # or parallel sweeps sharing one --cache-dir) can ever
            # publish a torn .npz; the temp name must be per-writer for
            # the rename to be atomic, and the fsync before the rename
            # keeps a power loss from replacing a good entry with an
            # empty file (rename can be durable before the data is).
            temporary = path.with_suffix(
                f".{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp.npz")
            try:
                with open(temporary, "wb") as handle:
                    np.savez(handle, t=t, y=y)
                    handle.flush()
                    os.fsync(handle.fileno())
                temporary.replace(path)
            finally:
                temporary.unlink(missing_ok=True)
        self.stats.stores += 1

    def _remember(self, key: str, t: np.ndarray, y: np.ndarray):
        if self.maxsize < 1:
            return
        self._entries[key] = (t, y)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self):
        """Drop the in-memory tier (disk entries are kept)."""
        self._entries.clear()


def cache_lookup(store: TrajectoryCache | None, systems, kind,
                 options: dict):
    """The lookup half of the caching protocol: returns ``(key,
    trajectory-or-None)``. ``key`` is ``None`` for an absent store or
    an unstable batch identity (then nothing may be stored either); a
    non-``None`` trajectory is the rebuilt hit."""
    from repro.sim.batch_solver import BatchTrajectory

    if store is None:
        return None, None
    key = store.key_for(systems, kind, options)
    if key is None:
        return None, None
    hit = store.get(key)
    if hit is None:
        return key, None
    return key, BatchTrajectory(t=hit[0], y=hit[1],
                                systems=list(systems))


def cache_store(store: TrajectoryCache | None, key,
                trajectory, storable: bool) -> None:
    """The store half of the protocol: persist a solved batch under a
    key obtained from :func:`cache_lookup`. ``storable=False`` vetoes
    storing a result an uncached rerun could not reproduce bit-for-bit
    (e.g. a shard-split adaptive solve, whose step control differs
    from the whole-group integration)."""
    if store is not None and key is not None and storable:
        store.put(key, trajectory.t, trajectory.y)


def cached_batch_solve(store: TrajectoryCache | None, systems, kind,
                       options: dict, solve):
    """Run one batched solve through an optional cache: key, get,
    rebuild-on-hit, else solve and store — the shared sequence of the
    ensemble and noisy drivers (the streaming executor uses the
    :func:`cache_lookup`/:func:`cache_store` halves directly, because
    its solve happens asynchronously between them).

    ``solve()`` must return ``(BatchTrajectory, storable)``; solver
    exceptions propagate to the caller unchanged.
    """
    key, hit = cache_lookup(store, systems, kind, options)
    if hit is not None:
        return hit
    trajectory, storable = solve()
    cache_store(store, key, trajectory, storable)
    return trajectory


_DEFAULT_CACHE: TrajectoryCache | None = None


def default_cache() -> TrajectoryCache:
    """The process-wide cache used by ``cache=True`` drivers."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = TrajectoryCache()
    return _DEFAULT_CACHE


def resolve_cache(cache) -> TrajectoryCache | None:
    """Normalize a driver's ``cache`` argument: ``None``/``False`` (no
    caching), ``True`` (process-wide default), a directory path (disk
    backed), or a :class:`TrajectoryCache` instance."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return default_cache()
    if isinstance(cache, (str, pathlib.Path)):
        return TrajectoryCache(directory=cache)
    if isinstance(cache, TrajectoryCache):
        return cache
    raise TypeError(
        f"cache must be None, bool, a path, or a TrajectoryCache, got "
        f"{type(cache).__name__}")
