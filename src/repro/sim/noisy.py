"""Transient-noise ensemble driver: (chip seed × noise trial) sweeps.

The paper's nonideality story has two independent axes — fabrication
mismatch (one sample per *chip*, §4.3) and transient noise (one
realization per *trial*). Reliability-style questions need both: how
stable is one fabricated chip's behavior across repeated noisy runs?

:func:`run_noisy_ensemble` runs the full outer product in as few batched
SDE solves as possible: every chip is compiled once, structurally
compatible chips share one :class:`~repro.sim.batch_codegen.BatchRhs`,
and each chip's system is *replicated* ``trials`` times inside the batch
(replication is free — the per-instance attribute arrays just repeat
rows), so a 16-chip × 8-trial sweep is one 128-instance vectorized
integration instead of 128 scipy solves. Noise seeds are
``"<chip_seed>:<trial>"`` tokens, so every pair owns an independent —
and reproducible — Wiener realization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compiler import compile_graph
from repro.core.graph import DynamicalGraph
from repro.core.odesystem import OdeSystem
from repro.core.simulator import Trajectory
from repro.errors import SimulationError

from repro.sim.batch_codegen import compile_batch, group_by_signature
from repro.sim.batch_solver import BatchTrajectory, solve_batch
from repro.sim.cache import cached_batch_solve, resolve_cache
from repro.sim.sde_solver import solve_sde


@dataclass
class NoisyEnsembleResult:
    """Outcome of a (chips × trials) transient-noise sweep.

    ``batches`` hold the stacked noisy runs, chip-major and trial-minor
    within each batch; ``references`` (optional) hold one deterministic
    noise-free run per chip on the same output grid — the reference
    trace reliability metrics compare against.
    """

    seeds: list = field(default_factory=list)
    trials: int = 0
    batches: list[BatchTrajectory] = field(default_factory=list)
    #: Chip indices (into ``seeds``) of each batch, chip-major order.
    groups: list[list[int]] = field(default_factory=list)
    references: list[Trajectory] | None = None
    #: chip index -> (batch number, first row of its trial block).
    _rows: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def n_chips(self) -> int:
        return len(self.seeds)

    def trajectory(self, chip_index: int, trial: int) -> Trajectory:
        """One (chip, trial) run as a serial :class:`Trajectory`."""
        if not 0 <= trial < self.trials:
            raise IndexError(f"trial {trial} outside 0..{self.trials - 1}")
        batch_number, row = self._rows[chip_index]
        return self.batches[batch_number].instance(row + trial)

    def trials_of(self, chip_index: int) -> list[Trajectory]:
        """All noise trials of one chip."""
        return [self.trajectory(chip_index, trial)
                for trial in range(self.trials)]

    def trial_rows(self, chip_index: int):
        """The (batch, row slice) holding one chip's trials — for
        vectorized readout without unpacking to serial trajectories."""
        batch_number, row = self._rows[chip_index]
        return self.batches[batch_number], slice(row, row + self.trials)

    def reference(self, chip_index: int) -> Trajectory:
        """The chip's deterministic (noise-free) run."""
        if self.references is None:
            raise SimulationError(
                "run_noisy_ensemble(..., reference=False) kept no "
                "deterministic references")
        return self.references[chip_index]


def _compile_target(target) -> OdeSystem:
    if isinstance(target, DynamicalGraph):
        return compile_graph(target)
    if isinstance(target, OdeSystem):
        return target
    raise SimulationError(
        f"noisy-ensemble factory must return a DynamicalGraph or "
        f"OdeSystem, got {type(target).__name__}")


def run_noisy_ensemble(factory, seeds, t_span, *, trials: int = 8,
                       n_points: int = 500, method: str = "heun",
                       t_eval=None, max_step: float | None = None,
                       reference: bool = True, trial_base: int = 0,
                       block: int = 256,
                       cache=None) -> NoisyEnsembleResult:
    """Simulate every (fabricated chip, noise trial) pair, batched.

    :param factory: ``factory(seed) -> DynamicalGraph | OdeSystem`` —
        the §4.3 chip factory; its graphs carry the noise sources
        (``noise(...)`` terms or ``ns`` annotations).
    :param seeds: mismatch seeds, one fabricated chip each.
    :param trials: independent noise realizations per chip.
    :param method: SDE method, ``heun`` (default) or ``em``.
    :param reference: also integrate each chip once deterministically
        (batched RK4 on the same grid) for reliability references.
    :param trial_base: first trial number — shift to draw a fresh,
        non-overlapping set of realizations for the same chips.
    :param cache: trajectory cache (``True``, a directory path, or a
        :class:`~repro.sim.cache.TrajectoryCache`); the key includes
        the noise-seed tokens, so a rerun of the same (chips × trials)
        sweep replays the stored realizations bit-for-bit while a
        shifted ``trial_base`` misses and integrates fresh ones.
    """
    seeds = list(seeds)
    if trials < 1:
        raise SimulationError(f"trials must be >= 1, got {trials}")
    systems = [_compile_target(factory(seed)) for seed in seeds]
    result = NoisyEnsembleResult(seeds=seeds, trials=trials)
    store = resolve_cache(cache)

    for indices in group_by_signature(systems):
        replicated: list[OdeSystem] = []
        noise_seeds: list[str] = []
        for row_base, index in enumerate(indices):
            result._rows[index] = (len(result.batches),
                                   row_base * trials)
            replicated.extend([systems[index]] * trials)
            noise_seeds.extend(
                f"{seeds[index]}:{trial_base + trial}"
                for trial in range(trials))
        # `block` is excluded from the key on purpose: the Wiener
        # realization is block-size independent, so it cannot change
        # the result.
        batch = cached_batch_solve(
            store, replicated, "sde",
            {"noise_seeds": tuple(noise_seeds), "method": method,
             "n_points": n_points, "t_eval": t_eval,
             "max_step": max_step,
             "t_span": (float(t_span[0]), float(t_span[1]))},
            lambda replicated=replicated, noise_seeds=noise_seeds: (
                solve_sde(compile_batch(replicated), t_span,
                          noise_seeds=noise_seeds, n_points=n_points,
                          method=method, t_eval=t_eval,
                          max_step=max_step, block=block), True))
        result.batches.append(batch)
        result.groups.append(list(indices))

    if reference:
        result.references = [None] * len(seeds)
        for indices in group_by_signature(systems):
            group_systems = [systems[i] for i in indices]
            reference_batch = cached_batch_solve(
                store, group_systems, "batch",
                {"n_points": n_points, "method": "rk4",
                 "t_eval": t_eval, "max_step": max_step,
                 "t_span": (float(t_span[0]), float(t_span[1]))},
                lambda group_systems=group_systems: (
                    solve_batch(compile_batch(group_systems), t_span,
                                n_points=n_points, method="rk4",
                                t_eval=t_eval, max_step=max_step),
                    True))
            for row, index in enumerate(indices):
                result.references[index] = reference_batch.instance(row)
    return result
