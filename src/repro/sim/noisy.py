"""Transient-noise ensemble driver: (chip seed × noise trial) sweeps.

The paper's nonideality story has two independent axes — fabrication
mismatch (one sample per *chip*, §4.3) and transient noise (one
realization per *trial*). Reliability-style questions need both: how
stable is one fabricated chip's behavior across repeated noisy runs?

Since the unified execution-plan layer (:mod:`repro.sim.plan`),
:func:`run_noisy_ensemble` is a thin shim over
:func:`repro.sim.run_ensemble` — ``run_ensemble(..., trials=K)`` runs
the identical (chip × trial) outer product in as few batched SDE solves
as possible: every chip is compiled once, structurally compatible chips
share one :class:`~repro.sim.batch_codegen.BatchRhs`, and each chip's
system is *replicated* ``trials`` times inside the batch (replication
is free — the per-instance attribute arrays just repeat rows), so a
16-chip × 8-trial sweep is one 128-instance vectorized integration
instead of 128 scipy solves. Noise seeds are ``"<chip_seed>:<trial>"``
tokens, so every pair owns an independent — and reproducible — Wiener
realization, regardless of batch layout, sharding, or caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.simulator import Trajectory
from repro.errors import SimulationError

from repro.sim.batch_solver import BatchTrajectory
from repro.sim.plan import DEFAULT_SHARD_MIN

__all__ = ["NoisyEnsembleChunk", "NoisyEnsembleResult",
           "run_noisy_ensemble"]


@dataclass
class NoisyEnsembleResult:
    """Outcome of a (chips × trials) transient-noise sweep.

    ``batches`` hold the stacked noisy runs, chip-major and trial-minor
    within each batch; ``references`` (optional) hold one deterministic
    noise-free run per chip on the same output grid — the reference
    trace reliability metrics compare against.
    """

    seeds: list = field(default_factory=list)
    trials: int = 0
    batches: list[BatchTrajectory] = field(default_factory=list)
    #: Chip indices (into ``seeds``) of each batch, chip-major order.
    groups: list[list[int]] = field(default_factory=list)
    references: list[Trajectory] | None = None
    #: chip index -> (batch number, first row of its trial block).
    _rows: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: The run's :class:`~repro.telemetry.RunReport` when the driver
    #: was called with ``telemetry=`` (``None`` otherwise).
    telemetry: object = None

    @property
    def n_chips(self) -> int:
        return len(self.seeds)

    def trajectory(self, chip_index: int, trial: int) -> Trajectory:
        """One (chip, trial) run as a serial :class:`Trajectory`."""
        if not 0 <= trial < self.trials:
            raise IndexError(f"trial {trial} outside 0..{self.trials - 1}")
        batch_number, row = self._rows[chip_index]
        return self.batches[batch_number].instance(row + trial)

    def trials_of(self, chip_index: int) -> list[Trajectory]:
        """All noise trials of one chip."""
        return [self.trajectory(chip_index, trial)
                for trial in range(self.trials)]

    def trial_rows(self, chip_index: int):
        """The (batch, row slice) holding one chip's trials — for
        vectorized readout without unpacking to serial trajectories."""
        batch_number, row = self._rows[chip_index]
        return self.batches[batch_number], slice(row, row + self.trials)

    def reference(self, chip_index: int) -> Trajectory:
        """The chip's deterministic (noise-free) run."""
        if self.references is None:
            raise SimulationError(
                "run_noisy_ensemble(..., reference=False) kept no "
                "deterministic references")
        return self.references[chip_index]


@dataclass
class NoisyEnsembleChunk(NoisyEnsembleResult):
    """One finished structural group of a *streamed* (chips × trials)
    sweep. The inherited accessors (``trajectory``, ``trials_of``,
    ``reference``…) work chunk-locally: chip ``k`` of the chunk is seed
    index ``indices[k]`` of the original seed list, and ``seeds`` holds
    just this group's chip seeds. ``order`` is the group's submission
    position — :func:`repro.sim.plan.assemble_chunks` sorts by it, so
    a stream drained in any completion order reassembles bit-identically
    to the barriered :class:`NoisyEnsembleResult`.
    """

    #: Seed-list indices of this group's chips (chip-major order).
    indices: list[int] = field(default_factory=list)
    #: Submission order of the chunk's group.
    order: int = 0
    #: Chunk-level stream stats (arrival time, order, rows) when the
    #: stream ran inside a telemetry collection window; else ``None``.
    stats: dict | None = None


def run_noisy_ensemble(factory, seeds, t_span, *, trials: int = 8,
                       n_points: int = 500, method: str = "heun",
                       t_eval=None, max_step: float | None = None,
                       reference: bool = True, trial_base: int = 0,
                       block: int = 256, cache=None,
                       engine: str = "batch",
                       processes: int | None = None,
                       shard_min: int = DEFAULT_SHARD_MIN,
                       freeze_tol: float | None = None,
                       stream: bool = False, array_backend=None,
                       schedule: str = "even", overshard: int = 1,
                       pin_workers: bool = False,
                       telemetry=None, progress=None):
    """Simulate every (fabricated chip, noise trial) pair, batched.

    A delegating shim over the unified driver — exactly
    ``run_ensemble(factory, seeds, t_span, trials=trials,
    sde_method=method, noise_seed=trial_base, ...)`` — kept as the
    established name of the (chips × trials) sweep. Outputs are
    bit-identical to the unified call (test-enforced).

    :param factory: ``factory(seed) -> DynamicalGraph | OdeSystem`` —
        the §4.3 chip factory; its graphs carry the noise sources
        (``noise(...)`` terms or ``ns`` annotations).
    :param seeds: mismatch seeds, one fabricated chip each.
    :param trials: independent noise realizations per chip.
    :param method: SDE method — ``heun`` (default), ``em``,
        ``milstein``, or the adaptive pair ``heun-adaptive``/
        ``em-adaptive`` (see :mod:`repro.sim.sde_solver`).
    :param reference: also integrate each chip once deterministically
        (batched RK4 on the same grid) for reliability references.
    :param trial_base: first trial number — shift to draw a fresh,
        non-overlapping set of realizations for the same chips.
    :param cache: trajectory cache (``True``, a directory path, or a
        :class:`~repro.sim.cache.TrajectoryCache`); the key includes
        the noise-seed tokens, so a rerun of the same (chips × trials)
        sweep replays the stored realizations bit-for-bit while a
        shifted ``trial_base`` misses and integrates fresh ones.
    :param engine: execution backend (``batch``/``serial``/``shard``/
        ``pool``/``auto``, see
        :func:`~repro.sim.ensemble.run_ensemble`).
    :param processes: process-pool width — (chip × trial) SDE batches
        of at least ``shard_min`` rows run on the persistent zero-copy
        pool as per-core sub-batches, bit-identical to the unsharded
        solve.
    :param freeze_tol: per-instance step masks (see
        :func:`~repro.sim.sde_solver.solve_sde`).
    :param stream: yield per-group :class:`NoisyEnsembleChunk` objects
        as they finish instead of the barriered result (see
        :func:`~repro.sim.ensemble.run_ensemble`).
    :param array_backend: array namespace for the batched SDE kernels
        (``None``/``"numpy"`` default; see
        :func:`~repro.sim.ensemble.run_ensemble`). Wiener draws stay
        on the host PRNG, so realizations are backend-independent.
    :param schedule: pool/shard row-split policy (``even``/``cost``);
        the fixed-step SDE methods are partition-independent, so
        ``cost`` splits (and ``overshard``/``pin_workers``) apply
        fully and stay bit-identical, while the adaptive pair is
        pinned to the canonical even split (see
        :func:`~repro.sim.ensemble.run_ensemble`).
    :param telemetry: metric collection (``True``, a
        :class:`~repro.telemetry.RunReport`, or ``None``; see
        :func:`~repro.sim.ensemble.run_ensemble`). The populated
        report lands on ``result.telemetry``.
    :returns: a :class:`NoisyEnsembleResult`, or — with
        ``stream=True`` — an iterator of :class:`NoisyEnsembleChunk`.
    """
    from repro.sim.ensemble import run_ensemble

    return run_ensemble(factory, seeds, t_span, trials=trials,
                        sde_method=method, noise_seed=trial_base,
                        n_points=n_points, t_eval=t_eval,
                        max_step=max_step, reference=reference,
                        block=block, cache=cache, engine=engine,
                        processes=processes, shard_min=shard_min,
                        freeze_tol=freeze_tol, stream=stream,
                        array_backend=array_backend,
                        schedule=schedule, overshard=overshard,
                        pin_workers=pin_workers,
                        telemetry=telemetry, progress=progress)
