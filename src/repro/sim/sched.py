"""Cost-model-driven adaptive scheduling for the shard/pool backends.

The paper's sweeps are embarrassingly parallel but badly skewed: rows
of one structural group differ wildly in cost (a stiff OBC instance
pays ~3x the RHS evals of a settled one — the same skew the freeze
masks exploit), yet the historical ``np.array_split`` row split gives
every shard the same row *count*, so one slow shard gates the whole
group while warm pool workers idle. This module replaces that split
with a scheduling layer shared by the ``shard`` and ``pool`` backends:

* **Cost model** (:class:`CostProfile`) — per-group predicted per-row
  seconds, seeded from static structure (state count, method weight)
  and refined online from the per-shard solve timings pool workers
  already ship home; persisted as a small JSON profile next to the
  trajectory cache so warm sweeps start informed.
* **Cost-balanced splitting** (:func:`balanced_parts`) — rows are
  partitioned so *predicted shard costs* equalize instead of row
  counts. Partitions stay contiguous and cover every row exactly once,
  and fixed-step methods are value-independent per row, so the result
  is bit-identical to the even split (test-enforced).
* **Oversubscription** — groups split into ``overshard x processes``
  shards drained from the existing pull queue, so fast workers
  naturally steal the tail of a skewed group.
* **Worker pinning** (:func:`pin_worker_processes`) — optional
  round-robin CPU affinity for pool workers via
  ``os.sched_setaffinity`` on Linux; a no-op elsewhere.

Bit-identity contract: fixed-step methods (``rk4`` and both SDE
methods) keep every row's arithmetic row-local and Wiener streams are
keyed per ``(seed, element, path)`` token, so *any* row partition
reproduces the canonical result exactly. The adaptive ``rkf45`` runs
one shared step sequence per shard — its results depend on shard
membership at tolerance level — so the scheduler *pins* adaptive
groups to the canonical even split (see :meth:`Scheduler.parts`);
``schedule="cost"`` and ``overshard`` then only apply where they
cannot change results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings

import numpy as np

from repro import telemetry

__all__ = [
    "ADAPTIVE_METHODS",
    "CostProfile",
    "PROFILE_FILENAME",
    "SCHEDULES",
    "Scheduler",
    "balanced_parts",
    "even_parts",
    "group_key",
    "pin_worker_processes",
    "scheduler_for",
    "static_row_cost",
]

#: Schedules accepted by ``ExecutionPlan.schedule`` / ``--schedule``.
SCHEDULES = ("even", "cost")

#: Methods whose arithmetic depends on shard membership: the adaptive
#: solvers (deterministic rkf45 family and the adaptive SDE pair alike)
#: run one shared step-control sequence per shard, so repartitioning
#: changes results at tolerance level. The scheduler pins these to the
#: canonical even split regardless of ``schedule``/``overshard``.
ADAPTIVE_METHODS = ("auto", "rkf45", "rk45", "heun-adaptive",
                    "em-adaptive")

#: File name of the persisted cost profile, created next to the disk
#: trajectory cache (or wherever ``cost_profile=`` points).
PROFILE_FILENAME = "cost_profile.json"

PROFILE_VERSION = 1

#: EWMA weight of a fresh timing observation: heavy enough that two
#: sweeps converge near the observed cost, light enough that one noisy
#: wall-clock sample cannot wreck the profile.
EWMA_ALPHA = 0.5

#: Static per-step work weights by method (relative: rkf45 evaluates
#: six stages per step, heun two drift + two diffusion, rk4 four, em
#: one of each, milstein EM plus the derivative kernel, the adaptive
#: SDE pair a Heun step plus rejections) — only the *ratios* matter,
#: they seed group ordering before any timing has been observed.
_METHOD_WEIGHT = {"rk4": 1.0, "auto": 1.5, "rkf45": 1.5, "rk45": 1.5,
                  "em": 0.5, "heun": 1.0, "milstein": 0.75,
                  "heun-adaptive": 1.5, "em-adaptive": 1.25}


# ----------------------------------------------------------------------
# Partitioning primitives
# ----------------------------------------------------------------------


def even_parts(n_rows: int, n_shards: int) -> list[np.ndarray]:
    """The canonical near-equal contiguous row split (the historical
    ``np.array_split``). Never emits an empty shard: the shard count
    clamps to the row count, and a split below two shards — including
    every single-row group — bypasses sharding entirely (returns
    ``[]``, the caller's run-in-process signal)."""
    n_rows = int(n_rows)
    n_shards = min(int(n_shards), n_rows)
    if n_shards < 2:
        return []
    return [part for part in np.array_split(np.arange(n_rows), n_shards)
            if len(part)]


def balanced_parts(costs, n_shards: int) -> list[np.ndarray]:
    """Contiguous partition of ``len(costs)`` rows into ``n_shards``
    nonempty parts with near-equal *predicted cost* per part.

    Cut points are the cumulative-cost quantiles, then clamped to keep
    every part nonempty — so the partition is always contiguous,
    ordered, and covers each row exactly once, which is what keeps
    fixed-step results bit-identical to :func:`even_parts` (row
    arithmetic is partition-independent; only shard boundaries move).
    Degenerate cost vectors (all zero, negative garbage) fall back to
    the even split.
    """
    costs = np.asarray(costs, dtype=float)
    n_rows = len(costs)
    n_shards = min(int(n_shards), n_rows)
    if n_shards < 2:
        return []
    costs = np.where(np.isfinite(costs), np.maximum(costs, 0.0), 0.0)
    total = float(costs.sum())
    if total <= 0.0:
        return even_parts(n_rows, n_shards)
    cum = np.cumsum(costs)
    targets = total * np.arange(1, n_shards) / n_shards
    cuts = (np.searchsorted(cum, targets, side="left") + 1).tolist()
    for index in range(len(cuts)):
        lowest = cuts[index - 1] + 1 if index else 1
        highest = n_rows - (n_shards - 1 - index)
        cuts[index] = min(max(int(cuts[index]), lowest), highest)
    bounds = [0, *cuts, n_rows]
    return [np.arange(bounds[i], bounds[i + 1])
            for i in range(n_shards)]


def static_row_cost(n_states: int, method: str | None) -> float:
    """Structural seed of the cost model: one relative unit per state
    per step, weighted by the method's stage count. Only used to rank
    groups before any timing has been observed."""
    weight = _METHOD_WEIGHT.get(method or "auto", 1.0)
    return weight * (1.0 + float(n_states))


def group_key(lead_system, method: str | None, kind: str = "ode") -> str:
    """The cost-profile key of one structural group: its structural
    signature digest plus the method and ode/sde kind — everything
    timing observations may legitimately vary with."""
    signature = repr(lead_system.structural_signature())
    digest = hashlib.sha1(signature.encode("utf-8")).hexdigest()[:16]
    return f"{kind}:{method or 'auto'}:{digest}"


# ----------------------------------------------------------------------
# Persisted cost profile
# ----------------------------------------------------------------------


class CostProfile:
    """Per-group observed solve costs, persisted as a small JSON file
    next to the trajectory cache.

    Each entry (keyed by :func:`group_key`) holds a scalar
    ``seconds_per_row`` EWMA plus an optional per-row cost vector
    refined from per-shard timings — shard timings fill their row
    ranges piecewise, so after one skewed run the profile already knows
    *which rows* were slow. A corrupt or incompatible file is discarded
    with a warning (mirroring the trajectory cache's corrupt-entry
    contract): a damaged profile must never abort — or reshape — a
    sweep beyond falling back to the even split.
    """

    def __init__(self, path: str | None = None):
        self.path = path
        self.entries: dict[str, dict] = {}
        self._dirty = False

    @classmethod
    def load(cls, path: str | None) -> "CostProfile":
        profile = cls(path)
        if path is None or not os.path.exists(path):
            return profile
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") != PROFILE_VERSION:
                raise ValueError(
                    f"profile version {payload.get('version')!r} != "
                    f"{PROFILE_VERSION}")
            entries = payload.get("groups")
            if not isinstance(entries, dict) or not all(
                    isinstance(entry, dict)
                    for entry in entries.values()):
                raise ValueError("malformed groups table")
            profile.entries = entries
        except Exception as exc:
            warnings.warn(
                f"discarding corrupt cost profile {path}: {exc}",
                RuntimeWarning, stacklevel=2)
            telemetry.add("sched.profile.corrupt")
            profile.entries = {}
        return profile

    def save(self) -> None:
        """Atomically persist the profile (write-then-rename, the same
        torn-write defense the trajectory cache uses). No-op without a
        path or without new observations."""
        if self.path is None or not self._dirty:
            return
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        payload = {"version": PROFILE_VERSION, "groups": self.entries}
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self._dirty = False

    def row_costs(self, key: str | None, n_rows: int):
        """Predicted per-row seconds for a group of ``n_rows`` rows, or
        ``None`` when nothing useful has been observed. A stored vector
        of the wrong length (the group was resized between runs)
        degrades to the uniform scalar estimate."""
        entry = self.entries.get(key) if key else None
        if not entry:
            return None
        stored = entry.get("row_costs")
        if isinstance(stored, list) and len(stored) == n_rows:
            vector = np.asarray(stored, dtype=float)
            if np.all(np.isfinite(vector)) and vector.min() >= 0.0 \
                    and vector.sum() > 0.0:
                return vector
        scalar = entry.get("seconds_per_row")
        if isinstance(scalar, (int, float)) and scalar > 0.0:
            return np.full(n_rows, float(scalar))
        return None

    def observe(self, key: str, n_rows: int, shards) -> None:
        """Fold one group's per-shard timings in. ``shards`` is an
        iterable of ``(row_offset, shard_rows, seconds)``; each shard's
        mean per-row cost EWMA-updates its row range of the vector, so
        repeated skewed runs converge on the true per-row profile."""
        shards = [(int(offset), int(rows), float(seconds))
                  for offset, rows, seconds in shards
                  if rows > 0 and seconds is not None and seconds >= 0.0]
        total_rows = sum(rows for _offset, rows, _seconds in shards)
        total_seconds = sum(seconds for _o, _r, seconds in shards)
        if total_rows <= 0 or total_seconds <= 0.0:
            return
        entry = self.entries.setdefault(key, {})
        per_row = total_seconds / total_rows
        previous = entry.get("seconds_per_row")
        if isinstance(previous, (int, float)) and previous > 0.0:
            per_row = ((1.0 - EWMA_ALPHA) * float(previous)
                       + EWMA_ALPHA * per_row)
        entry["seconds_per_row"] = per_row
        stored = entry.get("row_costs")
        if isinstance(stored, list) and len(stored) == n_rows:
            vector = np.asarray(stored, dtype=float)
            if not np.all(np.isfinite(vector)) or vector.min() < 0.0:
                vector = np.full(n_rows, per_row)
        else:
            vector = np.full(n_rows, per_row)
        for offset, rows, seconds in shards:
            if 0 <= offset and offset + rows <= n_rows:
                observed = seconds / rows
                vector[offset:offset + rows] = (
                    (1.0 - EWMA_ALPHA) * vector[offset:offset + rows]
                    + EWMA_ALPHA * observed)
        entry["row_costs"] = [float(value) for value in vector]
        entry["observations"] = int(entry.get("observations", 0)) + 1
        self._dirty = True


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------


class Scheduler:
    """One plan's scheduling policy, shared by every group the
    ``shard``/``pool`` backends split: decides each group's row
    partition, ranks groups for submission (longest-predicted-first),
    and feeds shard timings back into the :class:`CostProfile`."""

    def __init__(self, schedule: str = "even", overshard: int = 1,
                 pin_workers: bool = False,
                 profile: CostProfile | None = None):
        self.schedule = schedule
        self.overshard = max(1, int(overshard))
        self.pin_workers = bool(pin_workers)
        self.profile = profile if profile is not None else CostProfile()

    @property
    def active(self) -> bool:
        """Whether this scheduler deviates from the historical default
        (even split, one shard per process, no pinning, no profile)."""
        return (self.schedule != "even" or self.overshard > 1
                or self.profile.path is not None)

    def adaptive(self, method: str | None) -> bool:
        return (method or "auto") in ADAPTIVE_METHODS

    def wants_timing(self, method: str | None) -> bool:
        """Whether shard solves should measure and report their wall
        time (profile refinement + ``sched.*`` counters). Adaptive
        groups are pinned to the canonical split, so their timings
        would refine a model nothing consumes."""
        return self.active and not self.adaptive(method)

    def parts(self, n_rows: int, processes: int, *,
              method: str | None = None,
              key: str | None = None) -> list[np.ndarray]:
        """The group's row partition. Adaptive methods get the
        canonical even split (shard membership is part of their
        arithmetic — see module docstring); fixed-step methods get
        ``overshard x processes`` shards, cut at cost quantiles when a
        profile is available under ``schedule="cost"`` and evenly
        otherwise. ``[]`` means run in-process (one row, or no pool)."""
        n_rows = int(n_rows)
        processes = int(processes)
        if processes < 2 or n_rows < 2:
            return []
        if self.adaptive(method):
            parts = even_parts(n_rows, processes)
            if parts and self.active:
                telemetry.add("sched.adaptive_pinned")
            return parts
        n_shards = processes * self.overshard
        parts: list[np.ndarray] = []
        if self.schedule == "cost":
            costs = self.profile.row_costs(key, n_rows)
            if costs is not None:
                parts = balanced_parts(costs, n_shards)
                if parts:
                    telemetry.add("sched.groups.cost")
        if not parts:
            parts = even_parts(n_rows, n_shards)
            if parts:
                telemetry.add("sched.groups.even")
        if parts:
            telemetry.add("sched.shards", len(parts))
        return parts

    def group_cost(self, key: str | None, n_rows: int, n_states: int,
                   method: str | None) -> float:
        """Predicted total cost of one group — observed per-row seconds
        when profiled, the static structural estimate otherwise (the
        two are never compared across groups of different provenance in
        a meaningful unit; ranking only needs monotonicity)."""
        costs = self.profile.row_costs(key, n_rows)
        if costs is not None:
            return float(costs.sum())
        return static_row_cost(n_states, method) * n_rows

    def observe(self, key: str, n_rows: int, shards,
                processes: int | None = None) -> None:
        """Fold one solved group's shard timings back in: refine the
        profile and emit the ``sched.*`` imbalance counters. ``shards``
        is a list of dicts with ``offset``/``rows``/``seconds`` and —
        on the pool backend — the executing ``worker`` name."""
        timed = [(shard.get("offset", 0), shard.get("rows", 0),
                  shard.get("seconds"))
                 for shard in shards if shard.get("seconds") is not None]
        if not timed:
            return
        predicted = self.profile.row_costs(key, n_rows)
        actual_total = sum(seconds for _o, _r, seconds in timed)
        telemetry.add("sched.actual_shard_seconds", float(actual_total))
        if predicted is not None:
            predicted_total = 0.0
            for offset, rows, _seconds in timed:
                predicted_total += float(
                    predicted[offset:offset + rows].sum())
            telemetry.add("sched.predicted_shard_seconds",
                          float(predicted_total))
        busy: dict[str, float] = {}
        executed: dict[str, int] = {}
        for shard in shards:
            worker = shard.get("worker")
            if worker is None or shard.get("seconds") is None:
                continue
            busy[worker] = busy.get(worker, 0.0) + shard["seconds"]
            executed[worker] = executed.get(worker, 0) + 1
        if busy:
            mean_busy = sum(busy.values()) / len(busy)
            if mean_busy > 0.0:
                telemetry.append("sched.imbalance_ratio",
                                 max(busy.values()) / mean_busy)
        if executed and processes and processes > 0:
            fair = -(-len(timed) // int(processes))  # ceil
            steals = sum(max(0, count - fair)
                         for count in executed.values())
            telemetry.add("sched.steals", steals)
        self.profile.observe(key, n_rows, timed)

    def flush(self) -> None:
        """Persist the (dirty) profile — called once at stream end."""
        self.profile.save()


def profile_path_for(plan) -> str | None:
    """Where the plan's cost profile lives: an explicit
    ``cost_profile=`` path wins, else :data:`PROFILE_FILENAME` next to
    the disk trajectory cache, else nowhere (in-memory only)."""
    explicit = getattr(plan, "cost_profile", None)
    if explicit:
        return os.fspath(explicit)
    from repro.sim.cache import resolve_cache

    store = resolve_cache(getattr(plan, "cache", None))
    directory = getattr(store, "directory", None)
    if directory:
        return os.path.join(os.fspath(directory), PROFILE_FILENAME)
    return None


def scheduler_for(plan) -> Scheduler:
    """The plan's scheduler, created lazily and memoized on the plan
    instance so every group of one stream shares one profile (and one
    flush)."""
    scheduler = plan.__dict__.get("_scheduler")
    if scheduler is None:
        schedule = getattr(plan, "schedule", "even")
        overshard = getattr(plan, "overshard", 1)
        pin = getattr(plan, "pin_workers", False)
        path = profile_path_for(plan)
        profile = CostProfile.load(path) if path else CostProfile()
        scheduler = Scheduler(schedule=schedule, overshard=overshard,
                              pin_workers=pin, profile=profile)
        plan.__dict__["_scheduler"] = scheduler
    return scheduler


def flush_plan(plan) -> None:
    """Flush the plan's scheduler if one was ever created."""
    scheduler = plan.__dict__.get("_scheduler")
    if scheduler is not None:
        scheduler.flush()


# ----------------------------------------------------------------------
# Worker pinning
# ----------------------------------------------------------------------


def pin_worker_processes(pids) -> int:
    """Round-robin the given worker PIDs across the parent's allowed
    CPUs (``os.sched_setaffinity``; Linux only — a silent no-op on
    platforms without the call). Best-effort: a worker that cannot be
    pinned (it already exited, containers restricting the syscall) is
    skipped. Returns the number of workers actually pinned."""
    if not hasattr(os, "sched_setaffinity"):  # pragma: no cover
        return 0
    try:
        cores = sorted(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - exotic os
        return 0
    if not cores:  # pragma: no cover - defensive
        return 0
    pinned = 0
    for index, pid in enumerate(pids):
        try:
            os.sched_setaffinity(pid, {cores[index % len(cores)]})
        except (OSError, ValueError):  # pragma: no cover - racy exit
            continue
        pinned += 1
    if pinned:
        telemetry.add("sched.pinned_workers", pinned)
    return pinned
