"""Batched ensemble simulation engine.

The paper's headline experiments (Figs. 4c/4d, 11c, Table 1) are
Monte-Carlo sweeps over fabricated-instance mismatch; the reference Ark
implementation runs them as vectorized batches (``--vectorize --bz
1024``). This subsystem provides the same capability:

* :mod:`repro.sim.batch_codegen` — one compiled RHS evaluating an
  ``(n_instances, n_states)`` state matrix, per-instance attributes
  stacked as constant arrays;
* :mod:`repro.sim.batch_solver` — vectorized RK4 / adaptive RKF45 with
  per-instance error control on a shared output grid, returning a
  :class:`~repro.sim.batch_solver.BatchTrajectory`;
* :mod:`repro.sim.plan` — the unified execution-plan layer: an
  :class:`~repro.sim.plan.ExecutionPlan` plus a pluggable backend
  registry (``serial``/``batch``/``shard``/``auto``) that every driver
  compiles into, so sharding, caching, and per-instance step masks
  cover the deterministic and the SDE path identically;
* :mod:`repro.sim.ensemble` — :func:`~repro.sim.ensemble.run_ensemble`,
  the one driver for mismatch sweeps *and* (with ``trials=K``)
  transient-noise sweeps;
* :mod:`repro.sim.sde_solver` — batched transient-noise (SDE)
  integration: deterministic per-``(seed, element, path)`` Wiener
  streams plus vectorized Euler–Maruyama / stochastic Heun solvers over
  the same ``(n_instances, n_states)`` storage;
* :mod:`repro.sim.noisy` — :func:`~repro.sim.noisy.run_noisy_ensemble`,
  the established (chip seed × noise trial) name, now a delegating shim
  over the unified driver;
* :mod:`repro.sim.sched` — cost-model-driven adaptive scheduling for
  the ``shard``/``pool`` backends: cost-balanced uneven row splits,
  oversharding onto the pull queue, a persisted per-group cost
  profile, and optional worker CPU pinning — all bit-identical to the
  even split (adaptive methods are pinned to the canonical split);
* :mod:`repro.sim.array_api` — the pluggable array-namespace layer:
  an :class:`~repro.sim.array_api.ArrayBackend` protocol with numpy
  always present (bit-identical default) and jax/cupy registered
  lazily behind optional imports, selected per run via
  ``run_ensemble(..., array_backend=...)`` / ``--array-backend``.

Quickstart::

    from repro.sim import run_ensemble

    result = run_ensemble(
        lambda seed: mismatched_tline("gm", seed=seed),
        seeds=range(100), t_span=(0.0, 8e-8), n_points=300)
    batch = result.batches[0]           # (100, n_states, 300) storage
    band = batch.band("OUT_V")          # Fig. 4c/4d percentile envelope

:func:`repro.simulate_ensemble` is built on this engine and keeps the
legacy list-of-trajectories API.
"""

from repro.sim.array_api import (ArrayBackend, NumpyBackend,
                                 array_backend_names, canonical_spec,
                                 register_array_backend,
                                 resolve_array_backend)
from repro.sim.batch_codegen import (BatchRhs, compile_batch,
                                     generate_batch_source,
                                     group_by_signature)
from repro.sim.batch_solver import BatchTrajectory, solve_batch
from repro.sim.cache import CacheStats, TrajectoryCache, default_cache
from repro.sim.plan import (BACKENDS, ExecutionBackend, ExecutionPlan,
                            NoiseSpec, assemble_chunks, backend_names,
                            execute_plan, register_backend,
                            stream_plan)
from repro.sim.ensemble import (BATCH_METHODS, ENGINES, EnsembleChunk,
                                EnsembleResult, resolve_engine,
                                run_ensemble, stream_ensemble)
from repro.sim.sched import (SCHEDULES, CostProfile, Scheduler,
                             balanced_parts, even_parts)
from repro.sim.sde_solver import (SDE_METHODS, WienerSource,
                                  simulate_sde, solve_sde)
from repro.sim.noisy import (NoisyEnsembleChunk, NoisyEnsembleResult,
                             run_noisy_ensemble)

__all__ = [
    "ArrayBackend",
    "BACKENDS",
    "BATCH_METHODS",
    "BatchRhs",
    "BatchTrajectory",
    "CacheStats",
    "ENGINES",
    "EnsembleChunk",
    "EnsembleResult",
    "ExecutionBackend",
    "ExecutionPlan",
    "NoiseSpec",
    "NoisyEnsembleChunk",
    "NoisyEnsembleResult",
    "NumpyBackend",
    "SCHEDULES",
    "SDE_METHODS",
    "CostProfile",
    "Scheduler",
    "TrajectoryCache",
    "WienerSource",
    "array_backend_names",
    "assemble_chunks",
    "backend_names",
    "balanced_parts",
    "canonical_spec",
    "compile_batch",
    "even_parts",
    "default_cache",
    "execute_plan",
    "generate_batch_source",
    "group_by_signature",
    "register_array_backend",
    "register_backend",
    "resolve_array_backend",
    "resolve_engine",
    "run_ensemble",
    "run_noisy_ensemble",
    "simulate_sde",
    "solve_batch",
    "solve_sde",
    "stream_ensemble",
    "stream_plan",
]
