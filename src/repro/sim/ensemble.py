"""Monte-Carlo ensemble driver (the paper's §4.3 mismatch workflow).

Given a ``factory(seed)`` producing one fabricated instance per seed,
the driver compiles every instance, groups them by structural signature,
and integrates each compatible group through one batched RHS
(:mod:`repro.sim.batch_codegen` + :mod:`repro.sim.batch_solver`).
Instances whose graphs differ structurally (different topology, switch
state, or paradigm) fall back to the serial scipy path — optionally
fanned out across a ``multiprocessing`` pool.

The common case — N mismatch seeds of one Ark function invocation —
lands in a single batch and runs orders of magnitude faster than N
scipy solves; see ``benchmarks/run_bench_ensemble.py`` and
``BENCH_ensemble.json`` for the recorded speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.compiler import compile_graph
from repro.core.graph import DynamicalGraph
from repro.core.odesystem import OdeSystem
from repro.core.simulator import Trajectory, simulate
from repro.errors import SimulationError

from repro.sim import batch_codegen
from repro.sim.batch_codegen import compile_batch, group_by_signature
from repro.sim.batch_solver import BatchTrajectory, solve_batch
from repro.sim.cache import cached_batch_solve, resolve_cache

#: Methods handled natively by the batched solver.
BATCH_METHODS = ("auto", "rkf45", "rk45", "rk4")

#: Smallest batched group the driver will split across a process pool.
DEFAULT_SHARD_MIN = 64


@dataclass
class EnsembleResult:
    """Outcome of an ensemble run.

    ``trajectories`` is ordered like the input seeds (batched instances
    are unpacked back into serial :class:`Trajectory` views), so callers
    of the legacy list-based API keep working; ``batches`` exposes the
    stacked storage for vectorized analysis.
    """

    trajectories: list[Trajectory] = field(default_factory=list)
    batches: list[BatchTrajectory] = field(default_factory=list)
    #: Seed-list indices of each batched group (parallel to batches).
    groups: list[list[int]] = field(default_factory=list)
    #: Seed-list indices that took the serial scipy path.
    serial_indices: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self):
        return iter(self.trajectories)

    def __getitem__(self, index: int) -> Trajectory:
        return self.trajectories[index]

    @property
    def batched_fraction(self) -> float:
        """Share of instances that ran through a batched RHS."""
        total = len(self.trajectories)
        return (total - len(self.serial_indices)) / total if total \
            else 0.0


def _compile_target(target) -> OdeSystem:
    if isinstance(target, DynamicalGraph):
        return compile_graph(target)
    if isinstance(target, OdeSystem):
        return target
    raise SimulationError(
        f"ensemble factory must return a DynamicalGraph or OdeSystem, "
        f"got {type(target).__name__}")


def _serial_job(payload):
    """Module-level worker so a multiprocessing pool can pickle it. The
    factory itself must also pickle — the driver falls back to
    in-process execution when the parent-side pre-flight check fails
    (e.g. lambdas). Failures only visible in the child (a ``spawn``
    worker that cannot re-import the factory's module) propagate like
    any other worker error rather than silently degrading."""
    factory, seed, t_span, options = payload
    trajectory = simulate(factory(seed), t_span, **options)
    return trajectory.t, trajectory.y


def _payload_pickles(payload) -> bool:
    """Pre-flight picklability check. Callers pass one representative
    pool payload plus the full seed list (payloads differ only in
    their seeds, so this answers for all of them at a fraction of
    serializing every duplicated factory/options copy). Checking up
    front (instead of catching the pool's errors) keeps genuine worker
    exceptions — including worker ``TypeError``s — propagating to the
    caller instead of being silently retried in-process."""
    import pickle

    try:
        pickle.dumps(payload)
    except Exception:
        return False
    return True


def _run_serial(factory, seeds, indices, systems, t_span, options,
                processes):
    """Serial scipy path for structurally unique instances, optionally
    across a process pool. Returns {index: Trajectory}."""
    results: dict[int, Trajectory] = {}
    pending = list(indices)
    if processes and processes > 1 and len(pending) > 1:
        payloads = [(factory, seeds[i], t_span, options)
                    for i in pending]
        if _payload_pickles((payloads[0],
                             [seeds[i] for i in pending])):
            import multiprocessing

            with multiprocessing.Pool(processes) as pool:
                rows = pool.map(_serial_job, payloads)
            for index, (t, y) in zip(pending, rows):
                results[index] = Trajectory(t=t, y=y,
                                            system=systems[index])
            return results
    for index in pending:
        results[index] = simulate(systems[index], t_span, **options)
    return results


def _batch_shard_job(payload):
    """Pool worker integrating one shard of a batched group: rebuild the
    shard's instances from (factory, seeds) — systems themselves rarely
    pickle — and run the same batched solve the parent would. ``fuse``
    is the parent's *whole-group* fuse decision: the emitter's dense
    memory guard depends on batch size, so a shard deciding for itself
    could compile a fused RHS where the unsharded group would not,
    breaking shard-vs-whole bit-identity for fixed-step methods."""
    factory, shard_seeds, t_span, options, fuse = payload
    systems = [_compile_target(factory(seed)) for seed in shard_seeds]
    trajectory = solve_batch(compile_batch(systems, fuse=fuse), t_span,
                             **options)
    return trajectory.y


def _solve_batch_sharded(factory, seeds, indices, systems, t_span,
                         options, processes) -> BatchTrajectory | None:
    """Integrate one structural group as per-core sub-batches across a
    process pool. Returns ``None`` when the pool cannot be used (the
    caller then runs the single-process batched solve).

    Each shard is an independent batched solve over a contiguous slice
    of the group, so stacking the shard results reproduces the
    single-process row order exactly; with fixed-step methods the
    result is bit-identical (every instance's arithmetic is row-local),
    while rkf45's shared step sequence may differ at tolerance level
    because error control no longer sees the whole group.
    """
    n_shards = min(int(processes), len(indices))
    if n_shards < 2:
        return None
    lead = systems[indices[0]]
    fuse = (len(indices) * lead.n_states * lead.n_states
            <= batch_codegen.FUSE_DENSE_LIMIT)
    shards = [list(part)
              for part in np.array_split(np.asarray(indices), n_shards)]
    payloads = [(factory, [seeds[i] for i in shard], t_span, options,
                 fuse)
                for shard in shards if shard]
    if not _payload_pickles((payloads[0],
                             [seeds[i] for i in indices])):
        return None
    import multiprocessing

    with multiprocessing.Pool(len(payloads)) as pool:
        stacked = pool.map(_batch_shard_job, payloads)
    y = np.concatenate(stacked, axis=0)
    from repro.sim.batch_solver import _output_grid

    grid = _output_grid(t_span, options.get("n_points", 500),
                        options.get("t_eval"))
    return BatchTrajectory(t=grid, y=y,
                           systems=[systems[i] for i in indices])


def _record_group(result: EnsembleResult, trajectory: BatchTrajectory,
                  indices) -> None:
    result.batches.append(trajectory)
    result.groups.append(list(indices))
    for row, index in enumerate(indices):
        result.trajectories[index] = trajectory.instance(row)


def run_ensemble(factory, seeds, t_span, *, n_points: int = 500,
                 method: str = "auto", rtol: float = 1e-7,
                 atol: float = 1e-9, backend: str = "codegen",
                 t_eval=None, max_step: float | None = None,
                 engine: str = "batch", min_batch: int = 2,
                 processes: int | None = None, dense: bool = True,
                 cache=None,
                 shard_min: int = DEFAULT_SHARD_MIN) -> EnsembleResult:
    """Simulate one fabricated instance per seed, batching wherever the
    instances share structure.

    :param factory: ``factory(seed) -> DynamicalGraph | OdeSystem``.
    :param method: ``auto`` (batched rkf45 + serial RK45 fallback),
        ``rkf45``/``rk4`` (force a batch solver), or any scipy
        ``solve_ivp`` method name (forces the serial path for every
        instance).
    :param engine: ``batch`` (default) or ``serial`` (legacy behavior:
        one scipy solve per seed).
    :param min_batch: smallest structural group worth a batched compile;
        smaller groups run serially.
    :param processes: process-pool width. Batched groups of at least
        ``shard_min`` instances are split into per-core sub-batches,
        and serial-fallback instances fan out one-per-worker (both
        require a picklable factory; in-process execution otherwise).
    :param dense: use dense-output interpolation in the batched rkf45
        (see :func:`~repro.sim.batch_solver.solve_batch`).
    :param cache: trajectory cache — ``True`` (process-wide default
        cache), a directory path (disk backed), or a
        :class:`~repro.sim.cache.TrajectoryCache`. Repeated sweeps
        with identical structure, attributes, grid, and solver options
        reuse the stored integration bit-for-bit.
    :param shard_min: smallest batched group worth splitting across the
        pool (pool spawn + per-shard compile amortize only on large
        groups).
    """
    seeds = list(seeds)
    systems = [_compile_target(factory(seed)) for seed in seeds]
    result = EnsembleResult(trajectories=[None] * len(seeds))
    store = resolve_cache(cache)

    batchable = engine == "batch" and method in BATCH_METHODS
    serial_method = "RK45" if method in BATCH_METHODS else method
    serial_options = dict(n_points=n_points, method=serial_method,
                          rtol=rtol, atol=atol, backend=backend,
                          t_eval=t_eval, max_step=max_step)

    serial_indices: list[int] = []
    if batchable:
        batch_method = "rkf45" if method == "auto" else method
        solver_options = dict(n_points=n_points, method=batch_method,
                              rtol=rtol, atol=atol, t_eval=t_eval,
                              max_step=max_step, dense=dense)
        for indices in group_by_signature(systems):
            if len(indices) < min_batch:
                serial_indices.extend(indices)
                continue
            group_systems = [systems[i] for i in indices]

            def solve(indices=indices, group_systems=group_systems):
                if processes and processes > 1 and \
                        len(indices) >= max(shard_min, 2 * min_batch):
                    sharded = _solve_batch_sharded(
                        factory, seeds, indices, systems, t_span,
                        solver_options, processes)
                    if sharded is not None:
                        # Shard-split rkf45 runs per-shard step
                        # control, so an uncached whole-group rerun
                        # would not reproduce it bit-for-bit — keep it
                        # out of the cache. Fixed-step rk4 shards are
                        # bit-identical and safe to store.
                        return sharded, batch_method == "rk4"
                batch = compile_batch(group_systems)
                return solve_batch(batch, t_span,
                                   **solver_options), True

            try:
                trajectory = cached_batch_solve(
                    store, group_systems, "batch",
                    {**solver_options,
                     "t_span": (float(t_span[0]), float(t_span[1]))},
                    solve)
            except SimulationError:
                # A group the batch path cannot integrate (e.g. a stiff
                # outlier underflowing the rkf45 step floor) is demoted
                # to the serial scipy path rather than failing the
                # whole ensemble — unless the caller forced a batch
                # method explicitly.
                if method != "auto":
                    raise
                serial_indices.extend(indices)
                continue
            _record_group(result, trajectory, indices)
    else:
        serial_indices = list(range(len(seeds)))

    if serial_indices:
        serial = _run_serial(factory, seeds, serial_indices, systems,
                             t_span, serial_options, processes)
        for index, trajectory in serial.items():
            result.trajectories[index] = trajectory
    result.serial_indices = sorted(serial_indices)
    return result
