"""Monte-Carlo ensemble driver (the paper's §4.3 mismatch workflow).

Given a ``factory(seed)`` producing one fabricated instance per seed,
:func:`run_ensemble` compiles every instance, groups by structural
signature, and integrates each compatible group through one batched RHS
(:mod:`repro.sim.batch_codegen` + :mod:`repro.sim.batch_solver`). Since
the unified execution-plan layer (:mod:`repro.sim.plan`) it is also the
single driver for transient-noise sweeps: ``run_ensemble(...,
trials=K)`` realizes K independent Wiener trials per fabricated chip
through the batched SDE engine — :func:`repro.sim.run_noisy_ensemble`
is a thin shim over this same path.

The common case — N mismatch seeds of one Ark function invocation —
lands in a single batch and runs orders of magnitude faster than N
scipy solves; see ``benchmarks/run_bench_ensemble.py`` and
``BENCH_ensemble.json`` for the recorded speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.simulator import Trajectory
from repro.telemetry import RunReport, collect_metrics

from repro.sim.batch_solver import BatchTrajectory
from repro.sim.plan import (BATCH_METHODS, DEFAULT_SHARD_MIN,
                            ExecutionPlan, NoiseSpec)

__all__ = [
    "BATCH_METHODS",
    "DEFAULT_SHARD_MIN",
    "ENGINES",
    "EnsembleChunk",
    "EnsembleResult",
    "resolve_engine",
    "run_ensemble",
    "stream_ensemble",
]

#: Execution-backend names accepted by ``run_ensemble(engine=...)``.
#: ``batch`` maps to the plan layer's per-group ``auto`` policy (send
#: large groups to the persistent pool when one is requested) — the
#: historical behavior; ``pool`` forces the persistent zero-copy pool,
#: ``shard`` the legacy throwaway-pool variant.
ENGINES = ("batch", "serial", "shard", "pool", "auto")


@dataclass
class EnsembleResult:
    """Outcome of an ensemble run.

    ``trajectories`` is ordered like the input seeds (batched instances
    are unpacked back into serial :class:`Trajectory` views), so callers
    of the legacy list-based API keep working; ``batches`` exposes the
    stacked storage for vectorized analysis.
    """

    trajectories: list[Trajectory] = field(default_factory=list)
    batches: list[BatchTrajectory] = field(default_factory=list)
    #: Seed-list indices of each batched group (parallel to batches).
    groups: list[list[int]] = field(default_factory=list)
    #: Seed-list indices that took the serial scipy path.
    serial_indices: list[int] = field(default_factory=list)
    #: The run's :class:`~repro.telemetry.RunReport` when the driver was
    #: called with ``telemetry=`` (``None`` otherwise).
    telemetry: RunReport | None = None

    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self):
        return iter(self.trajectories)

    def __getitem__(self, index: int) -> Trajectory:
        return self.trajectories[index]

    @property
    def batched_fraction(self) -> float:
        """Share of instances that ran through a batched RHS."""
        total = len(self.trajectories)
        return (total - len(self.serial_indices)) / total if total \
            else 0.0


@dataclass
class EnsembleChunk(EnsembleResult):
    """One finished slice of a *streamed* deterministic sweep: either a
    batched structural group or the serial-fallback remainder.

    Unlike the full :class:`EnsembleResult`, ``trajectories`` here is
    chunk-local — ``trajectories[k]`` belongs to seed index
    ``indices[k]`` of the original seed list. ``order`` is the group's
    submission position; :func:`repro.sim.plan.assemble_chunks` sorts
    by it so a drained stream reassembles bit-identically to the
    barriered run no matter the completion order the pool delivered.
    """

    #: Seed-list indices covered by this chunk, one per trajectory.
    indices: list[int] = field(default_factory=list)
    #: Submission order of the chunk's group (serial remainder last).
    order: int = 0
    #: Chunk-level stream stats (arrival time, order, rows) when the
    #: stream ran inside a telemetry collection window; else ``None``.
    stats: dict | None = None


def resolve_engine(engine: str) -> str:
    """Map a driver ``engine`` name onto a plan backend, rejecting
    unknown names up front (an unrecognized engine used to fall back
    to the serial path silently)."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of "
            f"{', '.join(ENGINES)}")
    return "auto" if engine == "batch" else engine


def run_ensemble(factory, seeds, t_span, *, n_points: int = 500,
                 method: str = "auto", rtol: float = 1e-7,
                 atol: float = 1e-9, backend: str = "codegen",
                 t_eval=None, max_step: float | None = None,
                 engine: str = "batch", min_batch: int = 2,
                 processes: int | None = None, dense: bool = True,
                 cache=None, shard_min: int = DEFAULT_SHARD_MIN,
                 freeze_tol: float | None = None,
                 trials: int | None = None,
                 noise_seed: int | None = None,
                 sde_method: str = "heun", block: int = 256,
                 reference: bool = True, stream: bool = False,
                 array_backend=None, schedule: str = "even",
                 overshard: int = 1, pin_workers: bool = False,
                 cost_profile=None, telemetry=None, progress=None):
    """Simulate one fabricated instance per seed, batching wherever the
    instances share structure — the unified driver for deterministic
    *and* transient-noise sweeps.

    :param factory: ``factory(seed) -> DynamicalGraph | OdeSystem``.
    :param method: ``auto`` (batched rkf45 + serial RK45 fallback),
        ``rkf45``/``rk4`` (force a batch solver), or any scipy
        ``solve_ivp`` method name (forces the serial path for every
        instance). Ignored on the noisy path (see ``sde_method``).
    :param engine: execution backend — ``batch`` (default: the plan
        layer's auto policy), ``serial`` (one solve per instance),
        ``pool`` (force the persistent zero-copy worker pool),
        ``shard`` (force the legacy throwaway-pool sharding), or
        ``auto``. Unknown names raise :class:`ValueError`.
    :param min_batch: smallest structural group worth a batched compile;
        smaller groups run serially.
    :param processes: process-pool width. Batched groups of at least
        ``shard_min`` instances run on the persistent zero-copy pool
        (spawned once, reused across solves; results return through
        shared memory instead of pickle), and serial-fallback
        instances fan out one-per-worker (both require a picklable
        factory; in-process execution otherwise). On the noisy path
        the (chip x trial) SDE batches split the same way,
        bit-identically.
    :param dense: use dense-output interpolation in the batched rkf45
        (see :func:`~repro.sim.batch_solver.solve_batch`).
    :param cache: trajectory cache — ``True`` (process-wide default
        cache), a directory path (disk backed), or a
        :class:`~repro.sim.cache.TrajectoryCache`. Repeated sweeps
        with identical structure, attributes, grid, and solver options
        reuse the stored integration bit-for-bit; noisy sweeps key the
        per-(chip, trial) Wiener tokens identically.
    :param shard_min: smallest batched group worth splitting across the
        pool (pool spawn + per-shard compile amortize only on large
        groups).
    :param freeze_tol: per-instance step masks — converged (or
        diverged) instances freeze instead of forcing the worst-case
        step on the whole batch (see
        :func:`~repro.sim.batch_solver.solve_batch`).
    :param trials: ``None`` (default) runs the deterministic mismatch
        sweep and returns an :class:`EnsembleResult`. An integer K
        switches to the transient-noise path: every chip is replicated
        K times inside the batch, each row drawing the deterministic
        Wiener realization of ``"<chip_seed>:<noise_seed + trial>"``,
        and the result is a
        :class:`~repro.sim.noisy.NoisyEnsembleResult`.
    :param noise_seed: first trial index of the noisy path (default 0)
        — shift to draw a fresh, non-overlapping set of realizations
        for the same chips. Setting it without ``trials`` raises.
    :param sde_method: SDE solver of the noisy path — ``heun``
        (default), ``em``, ``milstein``, or the adaptive pair
        ``heun-adaptive``/``em-adaptive`` (``rtol``/``atol`` then
        steer its per-instance error control; see
        :mod:`repro.sim.sde_solver`).
    :param block: Wiener pre-draw block length (noisy path only).
    :param reference: also integrate each chip once deterministically
        (batched RK4 on the same grid) for reliability references
        (noisy path only).
    :param stream: return an *iterator of per-group chunks* instead of
        the barriered result: each finished structural group yields an
        :class:`EnsembleChunk` (or, with ``trials=K``, a
        :class:`~repro.sim.noisy.NoisyEnsembleChunk`) as soon as it
        completes — under the pool backend in worker-completion order —
        so analysis can start before the stiffest group finishes.
        :func:`repro.sim.plan.assemble_chunks` folds a drained stream
        back into the barriered result, bit-identically.
    :param telemetry: metric collection for this run. ``None``/``False``
        (default) disables it at single-context-var-check cost;
        ``True`` collects into a fresh
        :class:`~repro.telemetry.RunReport`; an existing ``RunReport``
        collects into that instance. The populated report is attached
        as ``result.telemetry``. Telemetry never perturbs results —
        trajectories are bit-identical with collection on or off
        (test-enforced). With ``stream=True`` pass a ``RunReport``
        instance (it is finalized when the stream is exhausted) or
        wrap the drain loop in
        :func:`repro.telemetry.collect_metrics` yourself; ``True``
        is rejected because the barriered attach point does not exist.
    :param array_backend: array namespace the batched kernels and
        solver loops run on — ``None``/``"numpy"`` (default, the host
        path, bit-identical to previous releases), a spec string such
        as ``"numpy:float32"``, ``"jax"``, or ``"cupy"`` (the latter
        two require their packages installed), or an
        :class:`~repro.sim.array_api.ArrayBackend` instance. Non-numpy
        backends are restricted to in-process execution —
        ``engine='pool'``/``'shard'`` raise (their workers pickle,
        which would haul device arrays through the host) and ``auto``
        stays on the batch backend.
    :param schedule: row-split policy of the pool/shard backends —
        ``even`` (default, the historical near-equal row counts) or
        ``cost`` (shards cut at predicted-cost quantiles from the
        persisted cost profile, groups submitted longest-first).
        Bit-identical to ``even`` for every method — adaptive groups
        are pinned to the canonical split (see
        :mod:`repro.sim.sched`).
    :param overshard: shards per process for fixed-step groups
        (default 1). ``overshard=4`` splits each group into ``4 x
        processes`` shards drained from the pool's pull queue, so fast
        workers steal the tail of a skewed group — the biggest lever
        on workloads mixing stiff and settled rows under
        ``freeze_tol``.
    :param pin_workers: pin pool workers round-robin to CPUs
        (``os.sched_setaffinity``; Linux only, no-op elsewhere).
    :param cost_profile: explicit path for the persisted cost-profile
        JSON (default: ``cost_profile.json`` inside the disk cache
        directory when one is configured).
    :param progress: an optional
        :class:`~repro.telemetry.ProgressSink` notified per finished
        group (totals up front, counts per chunk) — the hook behind
        ``repro ensemble --stream --progress``. Works with or without
        ``stream`` and receives counts only, so it cannot perturb
        results.
    """
    plan_backend = resolve_engine(engine)
    noise = None
    if trials is not None:
        noise = NoiseSpec(trials=trials, method=sde_method,
                          noise_seed=noise_seed or 0, block=block,
                          reference=reference)
    elif noise_seed is not None:
        raise ValueError(
            "noise_seed was given without trials; pass trials=K to "
            "request a transient-noise sweep")
    plan = ExecutionPlan(
        factory=factory, seeds=list(seeds), t_span=t_span,
        backend=plan_backend, noise=noise, n_points=n_points,
        t_eval=t_eval, method=method, rtol=rtol, atol=atol,
        max_step=max_step, dense=dense, freeze_tol=freeze_tol,
        serial_backend=backend, min_batch=min_batch,
        processes=processes, shard_min=shard_min, cache=cache,
        array_backend=array_backend, schedule=schedule,
        overshard=overshard, pin_workers=pin_workers,
        cost_profile=cost_profile)
    if telemetry is None or telemetry is False:
        return (plan.stream(progress=progress) if stream
                else plan.run(progress=progress))
    if isinstance(telemetry, RunReport):
        report = telemetry
    elif telemetry is True:
        if stream:
            raise ValueError(
                "telemetry=True needs the barriered result to attach "
                "the report to; with stream=True pass a RunReport "
                "instance (finalized at stream exhaustion) or wrap "
                "the drain loop in repro.telemetry.collect_metrics")
        report = RunReport()
    else:
        raise TypeError(
            f"telemetry must be None, bool, or a RunReport, got "
            f"{type(telemetry).__name__}")
    meta = {"driver": "run_ensemble", "engine": engine,
            "seeds": len(plan.seeds)}
    if plan.array_spec() != "numpy:float64":
        meta["array_backend"] = plan.array_spec()
    if schedule != "even" or overshard != 1:
        meta["schedule"] = schedule
        meta["overshard"] = overshard
    if noise is not None:
        meta["trials"] = noise.trials
    if stream:
        return _collected_stream(plan, report, meta, progress)
    with collect_metrics(into=report, meta=meta):
        result = plan.run(progress=progress)
    result.telemetry = report
    return result


def _collected_stream(plan, report, meta, progress=None):
    """Stream a plan inside its own collection window: the report is
    finalized when the stream is exhausted (or closed early)."""
    with collect_metrics(into=report, meta=meta):
        yield from plan.stream(progress=progress)


def stream_ensemble(factory, seeds, t_span, **kwargs):
    """Streaming form of :func:`run_ensemble`: returns the chunk
    iterator directly (exactly ``run_ensemble(..., stream=True)``).

    The first chunk arrives after one structural group finishes — not
    after the whole sweep — so spread/BER analysis can overlap the
    remaining integration::

        for chunk in stream_ensemble(factory, range(1000), span,
                                     processes=8):
            for row, index in enumerate(chunk.indices):
                score(index, chunk.batches[0].instance(row))
    """
    return run_ensemble(factory, seeds, t_span, stream=True, **kwargs)
