"""Monte-Carlo ensemble driver (the paper's §4.3 mismatch workflow).

Given a ``factory(seed)`` producing one fabricated instance per seed,
the driver compiles every instance, groups them by structural signature,
and integrates each compatible group through one batched RHS
(:mod:`repro.sim.batch_codegen` + :mod:`repro.sim.batch_solver`).
Instances whose graphs differ structurally (different topology, switch
state, or paradigm) fall back to the serial scipy path — optionally
fanned out across a ``multiprocessing`` pool.

The common case — N mismatch seeds of one Ark function invocation —
lands in a single batch and runs orders of magnitude faster than N
scipy solves; see ``benchmarks/run_bench_ensemble.py`` and
``BENCH_ensemble.json`` for the recorded speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.compiler import compile_graph
from repro.core.graph import DynamicalGraph
from repro.core.odesystem import OdeSystem
from repro.core.simulator import Trajectory, simulate
from repro.errors import SimulationError

from repro.sim.batch_codegen import compile_batch, group_by_signature
from repro.sim.batch_solver import BatchTrajectory, solve_batch

#: Methods handled natively by the batched solver.
BATCH_METHODS = ("auto", "rkf45", "rk45", "rk4")


@dataclass
class EnsembleResult:
    """Outcome of an ensemble run.

    ``trajectories`` is ordered like the input seeds (batched instances
    are unpacked back into serial :class:`Trajectory` views), so callers
    of the legacy list-based API keep working; ``batches`` exposes the
    stacked storage for vectorized analysis.
    """

    trajectories: list[Trajectory] = field(default_factory=list)
    batches: list[BatchTrajectory] = field(default_factory=list)
    #: Seed-list indices of each batched group (parallel to batches).
    groups: list[list[int]] = field(default_factory=list)
    #: Seed-list indices that took the serial scipy path.
    serial_indices: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self):
        return iter(self.trajectories)

    def __getitem__(self, index: int) -> Trajectory:
        return self.trajectories[index]

    @property
    def batched_fraction(self) -> float:
        """Share of instances that ran through a batched RHS."""
        total = len(self.trajectories)
        return (total - len(self.serial_indices)) / total if total \
            else 0.0


def _compile_target(target) -> OdeSystem:
    if isinstance(target, DynamicalGraph):
        return compile_graph(target)
    if isinstance(target, OdeSystem):
        return target
    raise SimulationError(
        f"ensemble factory must return a DynamicalGraph or OdeSystem, "
        f"got {type(target).__name__}")


def _serial_job(payload):
    """Module-level worker so a multiprocessing pool can pickle it. The
    factory itself must also pickle — the driver falls back to in-process
    execution when it does not (e.g. lambdas)."""
    factory, seed, t_span, options = payload
    trajectory = simulate(factory(seed), t_span, **options)
    return trajectory.t, trajectory.y


def _run_serial(factory, seeds, indices, systems, t_span, options,
                processes):
    """Serial scipy path for structurally unique instances, optionally
    across a process pool. Returns {index: Trajectory}."""
    results: dict[int, Trajectory] = {}
    pending = list(indices)
    if processes and processes > 1 and len(pending) > 1:
        import multiprocessing
        import pickle

        payloads = [(factory, seeds[i], t_span, options)
                    for i in pending]
        try:
            with multiprocessing.Pool(processes) as pool:
                rows = pool.map(_serial_job, payloads)
        except (pickle.PicklingError, AttributeError, TypeError):
            # Unpicklable factory (lambda/closure): quietly degrade to
            # in-process execution. Genuine worker failures (e.g. a
            # SimulationError from one seed) propagate unchanged.
            rows = None
        if rows is not None:
            for index, (t, y) in zip(pending, rows):
                results[index] = Trajectory(t=t, y=y,
                                            system=systems[index])
            return results
    for index in pending:
        results[index] = simulate(systems[index], t_span, **options)
    return results


def run_ensemble(factory, seeds, t_span, *, n_points: int = 500,
                 method: str = "auto", rtol: float = 1e-7,
                 atol: float = 1e-9, backend: str = "codegen",
                 t_eval=None, max_step: float | None = None,
                 engine: str = "batch", min_batch: int = 2,
                 processes: int | None = None) -> EnsembleResult:
    """Simulate one fabricated instance per seed, batching wherever the
    instances share structure.

    :param factory: ``factory(seed) -> DynamicalGraph | OdeSystem``.
    :param method: ``auto`` (batched rkf45 + serial RK45 fallback),
        ``rkf45``/``rk4`` (force a batch solver), or any scipy
        ``solve_ivp`` method name (forces the serial path for every
        instance).
    :param engine: ``batch`` (default) or ``serial`` (legacy behavior:
        one scipy solve per seed).
    :param min_batch: smallest structural group worth a batched compile;
        smaller groups run serially.
    :param processes: fan the *serial* instances out over a
        multiprocessing pool of this size (requires a picklable
        factory; silently degrades to in-process execution otherwise).
    """
    seeds = list(seeds)
    systems = [_compile_target(factory(seed)) for seed in seeds]
    result = EnsembleResult(trajectories=[None] * len(seeds))

    batchable = engine == "batch" and method in BATCH_METHODS
    serial_method = "RK45" if method in BATCH_METHODS else method
    serial_options = dict(n_points=n_points, method=serial_method,
                          rtol=rtol, atol=atol, backend=backend,
                          t_eval=t_eval, max_step=max_step)

    serial_indices: list[int] = []
    if batchable:
        batch_method = "rkf45" if method == "auto" else method
        for indices in group_by_signature(systems):
            if len(indices) < min_batch:
                serial_indices.extend(indices)
                continue
            try:
                batch = compile_batch([systems[i] for i in indices])
                trajectory = solve_batch(batch, t_span,
                                         n_points=n_points,
                                         method=batch_method,
                                         rtol=rtol, atol=atol,
                                         t_eval=t_eval,
                                         max_step=max_step)
            except SimulationError:
                # A group the batch path cannot integrate (e.g. a stiff
                # outlier underflowing the rkf45 step floor) is demoted
                # to the serial scipy path rather than failing the
                # whole ensemble — unless the caller forced a batch
                # method explicitly.
                if method != "auto":
                    raise
                serial_indices.extend(indices)
                continue
            result.batches.append(trajectory)
            result.groups.append(list(indices))
            for row, index in enumerate(indices):
                result.trajectories[index] = trajectory.instance(row)
    else:
        serial_indices = list(range(len(seeds)))

    if serial_indices:
        serial = _run_serial(factory, seeds, serial_indices, systems,
                             t_span, serial_options, processes)
        for index, trajectory in serial.items():
            result.trajectories[index] = trajectory
    result.serial_indices = sorted(serial_indices)
    return result
