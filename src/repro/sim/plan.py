"""Unified execution-plan layer: one driver for every ensemble sweep.

The paper's evaluation workflow is one story — sweep fabrication
mismatch (§4.3) and transient noise over a compiled dynamical system —
and this module tells it through one architecture. An
:class:`ExecutionPlan` captures *what* to integrate (a ``factory(seed)``
per fabricated chip, the seed list, the time span), *how* (grid, solver
options, optional :class:`NoiseSpec` for SDE trials, per-instance
freeze masks) and *where* (an execution backend plus cache/shard
policy). Every public driver — :func:`repro.sim.run_ensemble`,
:func:`repro.sim.run_noisy_ensemble`, and
:func:`repro.simulate_ensemble` — compiles its arguments into a plan
and funnels through :func:`execute_plan`, so features land once and
cover both the deterministic and the stochastic path.

Backends are pluggable through a registry (:data:`BACKENDS`,
:func:`register_backend`):

* ``serial`` — one solve per instance: scipy ``solve_ivp`` per seed on
  the deterministic path, a batch-of-one SDE solve per (chip, trial)
  row on the noisy path (the reference the batched engines are
  benchmarked against);
* ``batch``  — one single-process vectorized solve per structurally
  compatible group (:func:`~repro.sim.batch_solver.solve_batch` /
  :func:`~repro.sim.sde_solver.solve_sde`);
* ``shard``  — the batched solve split into per-core sub-batches across
  a throwaway ``multiprocessing`` pool. Fixed-step methods (``rk4`` and
  the fixed-step SDE trio ``em``/``heun``/``milstein``) are
  bit-identical to the unsharded solve because every instance's
  arithmetic is row-local and Wiener streams are keyed by ``(noise
  seed, element, path)`` — never by batch layout; the adaptive SDE
  pair keeps a path-invariant Wiener *realization* under sharding but
  runs per-shard step control, so it is pinned to the canonical even
  split and kept out of the cache, like rkf45;
* ``pool``   — the same row split run on the **persistent zero-copy
  pool** (:mod:`repro.sim.pool`): workers are spawned once and reused
  across solves, and shard results come back through shared memory
  (:mod:`repro.sim.shm`) instead of pickle. Bit-identical to ``shard``
  (identical splits, identical arithmetic) at a fraction of the
  per-solve overhead;
* ``auto``   — per-group policy: the persistent ``pool`` when a pool
  is requested (``processes > 1``) and the group is large enough, else
  ``batch``.

The executor itself is a *streaming* generator: :func:`stream_plan`
yields one chunk per structurally compatible group as it finishes —
under the ``pool`` backend all groups are submitted up front and chunks
arrive in completion order, so spread/BER analysis can start on the
first group while the stiffest one is still integrating.
:func:`execute_plan` is the barriered form: it drains the stream and
reassembles the chunks (:func:`assemble_chunks`) into the classic
result objects, bit-identical to the pre-streaming driver.

Trajectory caching (:mod:`repro.sim.cache`) is applied uniformly in the
executor — the noisy path is keyed and replayed exactly like the
deterministic one, including sharded SDE results (bit-identical, hence
storable); shard-split *adaptive* ODE solves remain uncachable because
per-shard step control may differ from the whole-group run.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, replace

import numpy as np

from repro import telemetry
from repro.core.compiler import compile_graph
from repro.core.graph import DynamicalGraph
from repro.core.odesystem import OdeSystem
from repro.core.simulator import Trajectory, simulate
from repro.errors import SimulationError

from repro.sim import batch_codegen
from repro.sim import sched as sched_module
from repro.sim.array_api import (array_backend_names, canonical_spec,
                                 parse_backend_spec,
                                 resolve_array_backend)
from repro.sim.batch_codegen import (compile_batch, group_by_signature,
                                     surviving_diffusion)
from repro.sim.batch_solver import (BatchTrajectory, _output_grid,
                                    solve_batch)
from repro.sim.cache import (cache_lookup, cache_store,
                             cached_batch_solve, resolve_cache)
from repro.sim.sde_solver import (ADAPTIVE_SDE_METHODS, SDE_METHODS,
                                  solve_sde)

#: Methods handled natively by the batched ODE solver.
BATCH_METHODS = ("auto", "rkf45", "rk45", "rk4")

#: Smallest batched group the auto policy will split across a pool.
DEFAULT_SHARD_MIN = 64


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class NoiseSpec:
    """The stochastic half of a plan: how many transient-noise trials
    to realize per fabricated chip, and with which SDE solver.

    ``noise_seed`` is the first trial index; every (chip, trial) pair
    draws the deterministic Wiener realization keyed by the token
    ``"<chip_seed>:<noise_seed + trial>"``, so shifting ``noise_seed``
    selects a fresh, non-overlapping set of realizations for the same
    chips while a rerun replays the identical ones.
    """

    trials: int = 8
    method: str = "heun"
    noise_seed: int = 0
    block: int = 256
    reference: bool = True

    def tokens(self, chip_seed) -> list[str]:
        """The chip's per-trial Wiener seed tokens, trial-minor order."""
        return [f"{chip_seed}:{self.noise_seed + trial}"
                for trial in range(self.trials)]


@dataclass
class ExecutionPlan:
    """Everything that determines one ensemble execution.

    :param factory: ``factory(seed) -> DynamicalGraph | OdeSystem``.
    :param seeds: mismatch seeds, one fabricated instance each.
    :param t_span: integration span ``(t0, t1)``.
    :param backend: execution backend name (see :data:`BACKENDS`);
        ``auto`` picks ``pool`` or ``batch`` per group.
    :param noise: ``None`` for a deterministic (ODE) sweep, a
        :class:`NoiseSpec` for a (chip x trial) SDE sweep.
    :param method: ODE method — ``auto``/``rkf45``/``rk4`` run batched,
        any scipy name forces the serial path (ignored when ``noise``
        is set; the SDE method lives in the spec).
    :param freeze_tol: per-instance step mask tolerance — converged (or,
        on the SDE path, diverged) instances freeze at their current
        state instead of forcing the worst-case step on the whole
        batch; ``None`` disables masking (see
        :func:`~repro.sim.batch_solver.solve_batch`).
    :param serial_backend: RHS backend of the serial scipy path
        (``codegen``/``interpreter``).
    :param min_batch: smallest structural group worth a batched compile.
    :param processes: process-pool width for the ``pool``/``shard``
        backends and the serial fan-out.
    :param shard_min: smallest batched group the ``auto`` policy sends
        to the pool.
    :param cache: trajectory-cache spec (``True``, a directory path, or
        a :class:`~repro.sim.cache.TrajectoryCache`).
    :param array_backend: array namespace of the batched solvers (see
        :mod:`repro.sim.array_api`): ``None``/``"numpy"`` (default), a
        spec string like ``"jax"`` or ``"numpy:float32"``, or an
        :class:`~repro.sim.array_api.ArrayBackend`. The ``pool`` and
        ``shard`` backends refuse non-numpy array backends (their
        workers communicate by pickling, which would silently haul
        device arrays through the host); ``auto`` simply keeps such
        groups single-process. The serial scipy ODE path always runs
        numpy.
    :param schedule: row-split policy of the ``shard``/``pool``
        backends — ``even`` (default: the historical near-equal row
        counts) or ``cost`` (shards cut at predicted-cost quantiles
        using the persisted cost profile, and groups submitted
        longest-predicted-first). Bit-identical to ``even`` for every
        method: fixed-step rows are partition-independent, and
        adaptive groups (rkf45 and the adaptive SDE pair) are pinned
        to the canonical even split (see :mod:`repro.sim.sched`).
    :param overshard: shards per process for fixed-step groups —
        ``overshard * processes`` shards drain from the pool's pull
        queue so fast workers steal the tail of a skewed group
        (default 1, the historical one-shard-per-process).
    :param pin_workers: round-robin pool workers across CPUs via
        ``os.sched_setaffinity`` (Linux; no-op elsewhere).
    :param cost_profile: explicit path for the persisted JSON cost
        profile; default is ``cost_profile.json`` next to the disk
        trajectory cache (no persistence without one).
    """

    factory: object
    seeds: list
    t_span: tuple
    backend: str = "auto"
    noise: NoiseSpec | None = None
    n_points: int = 500
    t_eval: object = None
    method: str = "auto"
    rtol: float = 1e-7
    atol: float = 1e-9
    max_step: float | None = None
    dense: bool = True
    freeze_tol: float | None = None
    serial_backend: str = "codegen"
    min_batch: int = 2
    processes: int | None = None
    shard_min: int = DEFAULT_SHARD_MIN
    cache: object = None
    array_backend: object = None
    schedule: str = "even"
    overshard: int = 1
    pin_workers: bool = False
    cost_profile: object = None

    def array_spec(self) -> str:
        """The plan's canonical array-backend spec string
        (``"name:dtype"``) — what travels through solver options,
        worker payloads, and cache keys."""
        return canonical_spec(self.array_backend)

    def validate(self) -> None:
        """Reject malformed plans up front (unknown backend or SDE
        method, unknown/unshippable array backend, non-positive trial
        counts) instead of silently running a different sweep than the
        one asked for."""
        if self.backend not in BACKENDS:
            raise SimulationError(
                f"unknown execution backend {self.backend!r}; "
                f"registered execution backends: "
                f"{', '.join(backend_names())}; registered array "
                f"backends (array_backend=/--array-backend): "
                f"{', '.join(array_backend_names())}")
        # Array-backend checks are name-based on purpose: rejecting
        # 'jax' under a pickling backend must not require jax to be
        # importable.
        array_name, _ = parse_backend_spec(self.array_spec())
        if array_name not in array_backend_names():
            raise SimulationError(
                f"unknown array backend {array_name!r}; registered "
                f"array backends: {', '.join(array_backend_names())}; "
                f"registered execution backends: "
                f"{', '.join(backend_names())}")
        if array_name != "numpy" and self.backend in ("pool", "shard"):
            raise SimulationError(
                f"execution backend {self.backend!r} cannot run on "
                f"array backend {array_name!r}: its workers exchange "
                "work by pickling, which would silently haul device "
                "arrays through the host. Use backend='batch' (one "
                "in-process device solve) or the numpy array backend.")
        if array_name != "numpy":
            # Resolve eagerly so a missing optional dependency fails
            # the plan up front; raised at solve time instead, the
            # auto-method fallback would demote the groups to the
            # serial numpy path and silently ignore the request.
            resolve_array_backend(self.array_backend)
        if self.noise is not None:
            if self.noise.trials < 1:
                raise SimulationError(
                    f"trials must be >= 1, got {self.noise.trials}")
            if self.noise.method not in SDE_METHODS:
                raise SimulationError(
                    f"unknown SDE method {self.noise.method!r}; "
                    f"expected one of {', '.join(SDE_METHODS)}")
        if self.freeze_tol is not None and self.freeze_tol <= 0.0:
            raise ValueError(
                f"freeze_tol must be > 0 (or None), got "
                f"{self.freeze_tol}")
        if self.schedule not in sched_module.SCHEDULES:
            raise SimulationError(
                f"unknown schedule {self.schedule!r}; expected one of "
                f"{', '.join(sched_module.SCHEDULES)}")
        if int(self.overshard) < 1:
            raise SimulationError(
                f"overshard must be >= 1, got {self.overshard}")

    def run(self, progress=None):
        """Execute the plan (see :func:`execute_plan`)."""
        return execute_plan(self, progress=progress)

    def stream(self, progress=None):
        """Stream the plan (see :func:`stream_plan`)."""
        return stream_plan(self, progress=progress)


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------


def _compile_target(target) -> OdeSystem:
    if isinstance(target, DynamicalGraph):
        return compile_graph(target)
    if isinstance(target, OdeSystem):
        return target
    raise SimulationError(
        f"ensemble factory must return a DynamicalGraph or OdeSystem, "
        f"got {type(target).__name__}")


def _pickled_common(*payload) -> bytes | None:
    """Serialize the group-wide head of a pool payload — factory, span,
    solver options — exactly once, returning the bytes (or ``None``
    when unpicklable, e.g. a lambda factory: callers then fall back to
    in-process execution). The bytes double as the payload shipped to
    the workers, so a sweep never pays the factory's serialization
    twice (it used to be pickled once by the pre-flight probe and again
    by the pool, per task)."""
    try:
        return pickle.dumps(payload)
    except Exception:
        return None


def _pickles(payload) -> bool:
    """Cheap probe for the small per-task remainder (seed lists, noise
    tokens). Probing up front — instead of catching the pool's errors —
    keeps genuine worker exceptions propagating to the caller instead
    of being silently retried in-process."""
    try:
        pickle.dumps(payload)
    except Exception:
        return False
    return True


#: Group-wide payload installed into throwaway pool workers by
#: :func:`_pool_init` — deserialized once per worker instead of once
#: per task.
_POOL_COMMON: tuple | None = None


def _pool_init(blob: bytes) -> None:
    global _POOL_COMMON
    _POOL_COMMON = pickle.loads(blob)


def _serial_job(seed):
    """Pool worker for the serial fan-out: one scipy solve per seed.
    The factory/options arrive once per worker via the initializer.
    Failures only visible in the child (a ``spawn`` worker that cannot
    re-import the factory's module) propagate like any other worker
    error rather than silently degrading."""
    factory, t_span, options = _POOL_COMMON
    trajectory = simulate(factory(seed), t_span, **options)
    return trajectory.t, trajectory.y


def _run_serial(factory, seeds, indices, systems, t_span, options,
                processes):
    """Serial scipy path for structurally unique instances, optionally
    across a process pool. Returns {index: Trajectory}."""
    results: dict[int, Trajectory] = {}
    pending = list(indices)
    telemetry.add("serial.solves", len(pending))
    if processes and processes > 1 and len(pending) > 1:
        common = _pickled_common(factory, t_span, options)
        job_seeds = [seeds[i] for i in pending]
        if common is not None and _pickles(job_seeds):
            import multiprocessing

            with multiprocessing.Pool(processes,
                                      initializer=_pool_init,
                                      initargs=(common,)) as pool:
                rows = pool.map(_serial_job, job_seeds)
            for index, (t, y) in zip(pending, rows):
                results[index] = Trajectory(t=t, y=y,
                                            system=systems[index])
            return results
    for index in pending:
        results[index] = simulate(systems[index], t_span, **options)
    return results


def _whole_group_fuse(n_rows: int, lead: OdeSystem) -> bool:
    """The fuse decision the *unsharded* batch would make. Shard/pool
    workers must inherit it: the emitter's dense-tensor memory guard
    depends on batch size, so a shard deciding for itself could compile
    a fused RHS where the whole group would not, breaking
    shard-vs-whole bit-identity for fixed-step methods."""
    return (n_rows * lead.n_states * lead.n_states
            <= batch_codegen.FUSE_DENSE_LIMIT)


def _shard_parts(n_rows: int, processes: int) -> list[np.ndarray]:
    """The canonical row split: contiguous, near-equal sub-batches
    (now delegated to :func:`repro.sim.sched.even_parts`). ``shard``
    and ``pool`` share it, which is what makes the two backends
    bit-identical even for the adaptive rkf45 (whose step control
    depends on shard membership)."""
    if int(processes) < 2:
        return []
    return sched_module.even_parts(n_rows, processes)


def _batch_shard_job(shard_seeds):
    """Pool worker integrating one shard of a batched ODE group:
    rebuild the shard's instances from the seeds — systems themselves
    rarely pickle — and run the same batched solve the parent would.
    The measured wall time feeds the scheduler's cost profile."""
    factory, t_span, options, fuse = _POOL_COMMON
    started = time.perf_counter()
    systems = [_compile_target(factory(seed)) for seed in shard_seeds]
    batch = compile_batch(systems, fuse=fuse,
                          array_backend=options.get("array_backend"))
    trajectory = solve_batch(batch, t_span, **options)
    return trajectory.y, trajectory.nfev, time.perf_counter() - started


def _observe_throwaway(scheduler, key, parts, stacked) -> None:
    """Feed a throwaway-pool group's per-shard wall times into the
    scheduler (the persistent pool routes the same data through
    ``PoolHandle`` instead). Worker identities do not exist here, so
    only the cost profile is refined — no imbalance counters."""
    if scheduler is None or key is None:
        return
    n_rows = sum(len(part) for part in parts)
    stats = [{"offset": int(part[0]), "rows": len(part),
              "seconds": seconds}
             for part, (_y, _nfev, seconds) in zip(parts, stacked)]
    scheduler.observe(key, n_rows, stats)


def _solve_batch_sharded(factory, seeds, indices, systems, t_span,
                         options, processes, scheduler=None,
                         key=None) -> BatchTrajectory | None:
    """Integrate one structural group as per-core sub-batches across a
    throwaway process pool. Returns ``None`` when the pool cannot be
    used (the caller then runs the single-process batched solve).

    Each shard is an independent batched solve over a contiguous slice
    of the group, so stacking the shard results reproduces the
    single-process row order exactly; with fixed-step methods the
    result is bit-identical (every instance's arithmetic is row-local)
    for *any* contiguous partition — which is what lets the scheduler
    cut shards at cost quantiles — while rkf45's shared step sequence
    may differ at tolerance level because error control no longer sees
    the whole group (the scheduler pins it to the canonical split).
    """
    if scheduler is not None:
        parts = scheduler.parts(len(indices), processes,
                                method=options.get("method"), key=key)
    else:
        parts = _shard_parts(len(indices), processes)
    if not parts:
        return None
    fuse = _whole_group_fuse(len(indices), systems[indices[0]])
    common = _pickled_common(factory, t_span, options, fuse)
    shard_seeds = [[seeds[indices[row]] for row in part]
                   for part in parts]
    if common is None or not _pickles(shard_seeds):
        return None
    import multiprocessing

    # Oversharded groups queue more parts than workers; chunksize=1
    # keeps the surplus pull-balanced instead of pre-dealt.
    with multiprocessing.Pool(min(int(processes), len(parts)),
                              initializer=_pool_init,
                              initargs=(common,)) as pool:
        stacked = pool.map(_batch_shard_job, shard_seeds, chunksize=1)
    if scheduler is not None and scheduler.wants_timing(
            options.get("method")):
        _observe_throwaway(scheduler, key, parts, stacked)
    y = np.concatenate([part for part, _nfev, _secs in stacked], axis=0)
    nfev = sum(part_nfev or 0 for _part, part_nfev, _secs in stacked)
    telemetry.add("solver.nfev", nfev)
    grid = _output_grid(t_span, options.get("n_points", 500),
                        options.get("t_eval"))
    return BatchTrajectory(t=grid, y=y,
                           systems=[systems[i] for i in indices],
                           nfev=nfev)


def _compile_sde_rows(factory, rows):
    """Worker-side rebuild of one SDE shard: every chip is rebuilt
    through the factory exactly once per shard and *replicated* for its
    trial rows; the Wiener realization of a row depends only on its
    token, never on the batch layout, so shard rows are bit-identical
    to the unsharded solve. ``rows`` is a list of ``(chip_key,
    chip_seed, noise_token)``; returns ``(replicated, tokens)``.
    Shared by the throwaway shard jobs and the persistent pool's
    workers — one copy keeps the two backends' arithmetic identical."""
    compiled: dict = {}
    replicated, tokens = [], []
    for chip_key, chip_seed, token in rows:
        if chip_key not in compiled:
            compiled[chip_key] = _compile_target(factory(chip_seed))
        replicated.append(compiled[chip_key])
        tokens.append(token)
    return replicated, tokens


def _sde_shard_job(rows):
    """Pool worker integrating one shard of a replicated SDE batch
    (see :func:`_compile_sde_rows` for the replication contract)."""
    factory, t_span, options, fuse = _POOL_COMMON
    started = time.perf_counter()
    replicated, tokens = _compile_sde_rows(factory, rows)
    batch = compile_batch(replicated, fuse=fuse,
                          array_backend=options.get("array_backend"))
    trajectory = solve_sde(batch, t_span, noise_seeds=tokens, **options)
    return trajectory.y, trajectory.nfev, time.perf_counter() - started


def _sde_rows(chip_seeds, chip_keys, noise_seeds) -> list[tuple]:
    return [(chip_keys[r], chip_seeds[chip_keys[r]], noise_seeds[r])
            for r in range(len(noise_seeds))]


def sharded_solve_sde(factory, chip_seeds, chip_keys, noise_seeds,
                      replicated, t_span, options, processes,
                      scheduler=None, key=None) -> BatchTrajectory | None:
    """Integrate a replicated (chip x trial) SDE batch as per-core
    sub-batches. Row ``r`` belongs to chip ``chip_keys[r]`` (an index
    into ``chip_seeds``) and draws the Wiener realization of
    ``noise_seeds[r]``. Returns ``None`` when the pool cannot be used;
    otherwise the result is **bit-identical** to the unsharded
    :func:`~repro.sim.sde_solver.solve_sde` for the fixed-step methods
    — they keep every instance's arithmetic row-local and streams are
    keyed per token, so splitting rows across processes (under *any*
    contiguous partition, including the scheduler's cost-balanced one)
    cannot change them. Adaptive SDE shards share step control per
    shard, so they are pinned to the canonical even split (results are
    then deterministic for a given worker count) and the caller keeps
    them out of the trajectory cache.
    """
    n_rows = len(noise_seeds)
    if scheduler is not None:
        parts = scheduler.parts(n_rows, processes,
                                method=options.get("method"), key=key)
    else:
        parts = _shard_parts(n_rows, processes)
    if not parts:
        return None
    fuse = _whole_group_fuse(n_rows, replicated[0])
    common = _pickled_common(factory, t_span, options, fuse)
    rows = _sde_rows(chip_seeds, chip_keys, noise_seeds)
    shard_rows = [[rows[r] for r in part] for part in parts]
    if common is None or not _pickles(shard_rows):
        return None
    import multiprocessing

    with multiprocessing.Pool(min(int(processes), len(parts)),
                              initializer=_pool_init,
                              initargs=(common,)) as pool:
        stacked = pool.map(_sde_shard_job, shard_rows, chunksize=1)
    if scheduler is not None and scheduler.wants_timing(
            options.get("method")):
        _observe_throwaway(scheduler, key, parts, stacked)
    y = np.concatenate([part for part, _nfev, _secs in stacked], axis=0)
    nfev = sum(part_nfev or 0 for _part, part_nfev, _secs in stacked)
    telemetry.add("solver.nfev", nfev)
    grid = _output_grid(t_span, options.get("n_points", 500),
                        options.get("t_eval"))
    return BatchTrajectory(t=grid, y=y, systems=list(replicated),
                           nfev=nfev)


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


@dataclass
class GroupTask:
    """One structurally compatible group, ready for a backend.

    For ODE groups ``group_systems`` holds one system per chip and
    ``noise_seeds`` is ``None``; for SDE groups ``group_systems`` holds
    the chip-major, trial-minor *replicated* batch, ``chip_keys[r]``
    names the chip (an index into ``chip_indices``) of each row, and
    ``noise_seeds[r]`` its Wiener token. ``options`` are the solver
    keyword arguments of :func:`~repro.sim.batch_solver.solve_batch` /
    :func:`~repro.sim.sde_solver.solve_sde` respectively.
    """

    plan: ExecutionPlan
    indices: list[int]
    group_systems: list[OdeSystem]
    options: dict
    noise_seeds: list[str] | None = None
    chip_keys: list[int] | None = None

    @property
    def chip_seeds(self) -> list:
        seeds = list(self.plan.seeds)
        return [seeds[i] for i in self.indices]


class ExecutionBackend:
    """One strategy for integrating a structurally compatible group.

    Subclasses implement :meth:`solve_ode` and :meth:`solve_sde`, each
    returning ``(BatchTrajectory, storable)`` — ``storable=False``
    vetoes caching a result an uncached rerun could not reproduce
    bit-for-bit. ``batches = False`` marks a backend that forgoes
    vectorized groups entirely (the deterministic executor then sends
    every instance down the per-instance scipy path). Backends that can
    run a group *asynchronously* (for the streaming executor) also
    implement :meth:`submit_ode`/:meth:`submit_sde`, returning a
    :class:`~repro.sim.pool.PoolHandle` or ``None`` when the group must
    run synchronously.
    """

    name = "?"
    #: Whether ODE groups should be batched at all under this backend.
    batches = True

    def solve_ode(self, task: GroupTask):
        raise NotImplementedError

    def solve_sde(self, task: GroupTask):
        raise NotImplementedError

    def submit_ode(self, task: GroupTask):
        """Asynchronous form of :meth:`solve_ode` (``None`` = not
        supported; the executor falls back to the synchronous call)."""
        return None

    def submit_sde(self, task: GroupTask):
        return None


class BatchBackend(ExecutionBackend):
    """Single-process vectorized solve of the whole group."""

    name = "batch"

    def solve_ode(self, task: GroupTask):
        batch = compile_batch(
            task.group_systems,
            array_backend=task.options.get("array_backend"))
        return solve_batch(batch, task.plan.t_span,
                           **task.options), True

    def solve_sde(self, task: GroupTask):
        batch = compile_batch(
            task.group_systems,
            array_backend=task.options.get("array_backend"))
        return solve_sde(batch, task.plan.t_span,
                         noise_seeds=task.noise_seeds,
                         **task.options), True


class SerialBackend(ExecutionBackend):
    """One solve per instance — the legacy/reference shape.

    Deterministic sweeps run scipy ``solve_ivp`` per seed (handled by
    the executor's per-instance path, hence ``batches = False``); noisy
    sweeps run one batch-of-one SDE solve per (chip, trial) row, each
    consuming the identical per-token Wiener stream the batched engines
    use, so responses agree bit for bit with ``batch``/``shard``.
    """

    name = "serial"
    batches = False

    def solve_ode(self, task: GroupTask):  # pragma: no cover - unused
        raise SimulationError(
            "the serial backend integrates ODE instances through the "
            "per-instance scipy path, not through batched groups")

    def solve_sde(self, task: GroupTask):
        singles: dict[int, object] = {}
        rows = []
        for row, system in enumerate(task.group_systems):
            chip = task.chip_keys[row]
            if chip not in singles:
                singles[chip] = compile_batch(
                    [system],
                    array_backend=task.options.get("array_backend"))
            trajectory = solve_sde(singles[chip], task.plan.t_span,
                                   noise_seeds=[task.noise_seeds[row]],
                                   **task.options)
            rows.append(trajectory.y)
        return BatchTrajectory(t=trajectory.t,
                               y=np.concatenate(rows, axis=0),
                               systems=list(task.group_systems)), True


def _pool_width(plan: ExecutionPlan) -> int:
    if plan.processes is not None:
        return int(plan.processes)
    return os.cpu_count() or 1


class ShardBackend(ExecutionBackend):
    """Throwaway-pool sharded solve, falling back to ``batch`` when the
    pool cannot be used (unpicklable factory, group too small, or a
    one-wide pool). Kept as the explicit no-persistent-state variant;
    the ``pool`` backend runs the identical split on reused workers."""

    name = "shard"

    def solve_ode(self, task: GroupTask):
        plan = task.plan
        scheduler = sched_module.scheduler_for(plan)
        key = sched_module.group_key(task.group_systems[0],
                                     task.options.get("method"), "ode")
        sharded = _solve_batch_sharded(
            plan.factory, list(plan.seeds), task.indices,
            {i: s for i, s in zip(task.indices, task.group_systems)},
            plan.t_span, task.options, _pool_width(plan),
            scheduler=scheduler, key=key)
        if sharded is None:
            return BACKENDS["batch"].solve_ode(task)
        # Shard-split rkf45 runs per-shard step control, so an uncached
        # whole-group rerun would not reproduce it bit-for-bit — keep
        # it out of the cache. Fixed-step rk4 shards are bit-identical
        # and safe to store.
        return sharded, task.options.get("method") == "rk4"

    def solve_sde(self, task: GroupTask):
        plan = task.plan
        scheduler = sched_module.scheduler_for(plan)
        key = sched_module.group_key(task.group_systems[0],
                                     task.options.get("method"), "sde")
        sharded = sharded_solve_sde(
            plan.factory, task.chip_seeds, task.chip_keys,
            task.noise_seeds, task.group_systems, plan.t_span,
            task.options, _pool_width(plan), scheduler=scheduler,
            key=key)
        if sharded is None:
            return BACKENDS["batch"].solve_sde(task)
        # Fixed-step SDE shards are bit-identical to the whole-group
        # solve, so the result is safely cachable. The adaptive pair
        # runs per-shard step control (the Wiener *path* is invariant,
        # but the shared accept/reject sequence is not), so a shard
        # split must stay out of the cache — like rkf45 above.
        return sharded, (task.options.get("method")
                         not in ADAPTIVE_SDE_METHODS)


class PoolBackend(ExecutionBackend):
    """Persistent zero-copy pool: the ``shard`` row split executed on
    reused workers (:mod:`repro.sim.pool`) with results returned
    through shared memory (:mod:`repro.sim.shm`) instead of pickle.

    Bit-identical to ``shard`` for every method (the two backends share
    :func:`_shard_parts` and the whole-group fuse decision), and to
    ``batch`` for fixed-step methods. Falls back to ``batch`` when the
    pool cannot be used. Supports asynchronous submission, which is
    what lets the streaming executor yield groups as workers finish.
    """

    name = "pool"

    def _submit(self, task: GroupTask, kind: str, rows: list,
                storable: bool):
        from repro.sim import pool as pool_module
        from repro.sim.shm import ShmBlock

        plan = task.plan
        scheduler = sched_module.scheduler_for(plan)
        method = task.options.get("method")
        key = sched_module.group_key(task.group_systems[0], method,
                                     kind)
        processes = _pool_width(plan)
        parts = scheduler.parts(len(rows), processes, method=method,
                                key=key)
        if not parts:
            return None
        fuse = _whole_group_fuse(len(rows), task.group_systems[0])
        common = _pickled_common(plan.factory, plan.t_span,
                                 task.options, fuse)
        if common is None or not _pickles(rows):
            return None
        grid = _output_grid(plan.t_span,
                            task.options.get("n_points", 500),
                            task.options.get("t_eval"))
        worker_pool = pool_module.get_pool(
            processes, pin_workers=scheduler.pin_workers)
        block = ShmBlock.create((len(rows),
                                 task.group_systems[0].n_states,
                                 len(grid)))
        handle = pool_module.PoolHandle(
            pool=worker_pool, block=block, grid=grid,
            systems=list(task.group_systems), storable=storable,
            masked=task.options.get("freeze_tol") is not None)
        timing = scheduler.wants_timing(method)
        if timing:
            n_rows = len(rows)
            handle.on_shards = (
                lambda stats: scheduler.observe(key, n_rows, stats,
                                                processes=processes))
        offset = 0
        try:
            for part in parts:
                worker_pool.submit(handle, kind, common,
                                   [rows[r] for r in part], offset,
                                   timing=timing)
                offset += len(part)
        except BaseException:
            handle.discard()
            raise
        return handle

    def submit_ode(self, task: GroupTask):
        seeds = list(task.plan.seeds)
        rows = [seeds[i] for i in task.indices]
        # rkf45 runs per-shard step control (same shards as `shard`,
        # hence bit-identical to it) — uncachable for the same reason.
        return self._submit(task, "ode", rows,
                            task.options.get("method") == "rk4")

    def submit_sde(self, task: GroupTask):
        rows = _sde_rows(task.chip_seeds, task.chip_keys,
                         task.noise_seeds)
        # Adaptive SDE shards run per-shard step control — uncachable,
        # mirroring rkf45 (fixed-step shards stay bit-identical).
        return self._submit(task, "sde", rows,
                            task.options.get("method")
                            not in ADAPTIVE_SDE_METHODS)

    def _finish(self, handle):
        try:
            handle.wait()
        except BaseException:
            handle.discard()
            raise
        return handle.result()

    def solve_ode(self, task: GroupTask):
        handle = self.submit_ode(task)
        if handle is None:
            return BACKENDS["batch"].solve_ode(task)
        return self._finish(handle)

    def solve_sde(self, task: GroupTask):
        handle = self.submit_sde(task)
        if handle is None:
            return BACKENDS["batch"].solve_sde(task)
        return self._finish(handle)


class AutoBackend(ExecutionBackend):
    """Per-group policy: send large groups to the persistent pool when
    one was requested (``processes > 1``), run everything else
    single-process — the historical behavior of
    ``run_ensemble(processes=N)``, now with warm workers and pickle-free
    returns (``pool`` is bit-identical to the ``shard`` backend it
    replaced as the auto choice)."""

    name = "auto"

    def _pick(self, task: GroupTask) -> ExecutionBackend:
        plan = task.plan
        # Non-numpy array backends stay in-process: pool workers would
        # pickle device arrays through the host (see validate()).
        if parse_backend_spec(plan.array_spec())[0] != "numpy":
            return BACKENDS["batch"]
        # Size by integrated rows: the group's chips on the ODE path,
        # the full (chip x trial) replication on the SDE path.
        big_enough = len(task.group_systems) >= max(plan.shard_min,
                                                    2 * plan.min_batch)
        if plan.processes and plan.processes > 1 and big_enough:
            return BACKENDS["pool"]
        return BACKENDS["batch"]

    def solve_ode(self, task: GroupTask):
        return self._pick(task).solve_ode(task)

    def solve_sde(self, task: GroupTask):
        return self._pick(task).solve_sde(task)

    def submit_ode(self, task: GroupTask):
        return self._pick(task).submit_ode(task)

    def submit_sde(self, task: GroupTask):
        return self._pick(task).submit_sde(task)


#: The pluggable backend registry. Keys are plan ``backend`` names.
BACKENDS: dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Register (or replace) an execution backend under its name."""
    BACKENDS[backend.name] = backend
    return backend


def backend_names() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(BACKENDS))


register_backend(BatchBackend())
register_backend(SerialBackend())
register_backend(ShardBackend())
register_backend(PoolBackend())
register_backend(AutoBackend())


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------


def execute_plan(plan: ExecutionPlan, progress=None):
    """Compile every instance, group by structural signature, and
    integrate each group through the plan's backend (with uniform
    trajectory caching). Returns an
    :class:`~repro.sim.ensemble.EnsembleResult` for deterministic plans
    and a :class:`~repro.sim.noisy.NoisyEnsembleResult` for plans
    carrying a :class:`NoiseSpec`.

    This is the barriered form of :func:`stream_plan`: it drains the
    chunk stream and reassembles it, bit-identically to the historical
    monolithic driver. ``progress`` (a
    :class:`~repro.telemetry.progress.ProgressSink`) still fires per
    finished group — barriered callers get live progress too."""
    seeds = list(plan.seeds)
    plan = replace(plan, seeds=seeds)
    trials = plan.noise.trials if plan.noise is not None else None
    return assemble_chunks(stream_plan(plan, progress=progress), seeds,
                           trials=trials)


def stream_plan(plan: ExecutionPlan, progress=None):
    """Execute the plan as a stream: an iterator of per-group chunks
    (:class:`~repro.sim.ensemble.EnsembleChunk` /
    :class:`~repro.sim.noisy.NoisyEnsembleChunk`), each one finished
    structurally compatible group, yielded as it completes instead of
    barriering the whole sweep.

    Groups running on the ``pool`` backend are all submitted up front
    and arrive in *completion* order — analysis can start on the first
    (fastest) group while the stiffest one is still integrating; other
    backends yield lazily in group order, which still delivers the
    first chunk after one group's integration rather than the whole
    sweep's. :func:`assemble_chunks` folds a drained stream back into
    the barriered result object. Validation errors raise here, not at
    the first ``next()``.

    ``progress`` is an optional
    :class:`~repro.telemetry.progress.ProgressSink`: it gets ``begin``
    with the sweep's totals, ``advance`` after every yielded chunk, and
    ``finish`` when the stream ends (even abandoned mid-way) — the hook
    behind ``repro ensemble --stream --progress``. It receives counts
    only, never data, so it cannot perturb results."""
    plan.validate()
    seeds = list(plan.seeds)
    # Normalize up front: a generator would be exhausted by the first
    # traversal, and shard tasks re-read plan.seeds.
    plan = replace(plan, seeds=seeds)
    return _stream(plan, seeds, progress)


def _progress_totals(plan: ExecutionPlan, systems: list) -> tuple:
    """(total chunks, total instance-rows) the stream will deliver —
    mirrors the grouping the ODE/SDE streams apply, computed only when
    a progress sink is attached."""
    groups = group_by_signature(systems)
    if plan.noise is not None:
        return len(groups), len(systems) * plan.noise.trials
    backend = BACKENDS[plan.backend]
    if backend.batches and plan.method in BATCH_METHODS:
        batched = [g for g in groups if len(g) >= plan.min_batch]
        n_serial = len(systems) - sum(len(g) for g in batched)
        return len(batched) + (1 if n_serial else 0), len(systems)
    return 1, len(systems)


def _stream(plan: ExecutionPlan, seeds: list, progress=None):
    with telemetry.span("plan.compile"):
        systems = [_compile_target(plan.factory(seed))
                   for seed in seeds]
    telemetry.add("plan.instances", len(systems))
    if progress is not None:
        total_chunks, total_rows = _progress_totals(plan, systems)
        progress.begin(groups=total_chunks, instances=total_rows)
    inner = (_stream_ode(plan, seeds, systems) if plan.noise is None
             else _stream_sde(plan, seeds, systems))
    start = time.monotonic()
    first = True
    chunks_done = 0
    rows_done = 0
    try:
        for chunk in inner:
            if telemetry.enabled():
                # Chunk-arrival accounting: the time-to-first-chunk
                # gauge is the streaming executor's headline number,
                # the arrival list its (monotone) completion profile.
                # The same numbers ride on the chunk itself for
                # consumers of stream_plan.
                arrival = time.monotonic() - start
                if first:
                    telemetry.gauge(
                        "stream.time_to_first_chunk_seconds", arrival)
                    first = False
                telemetry.append("stream.chunk_arrival_seconds",
                                 arrival)
                telemetry.add("stream.chunks")
                chunk.stats = {"arrival_seconds": arrival,
                               "order": chunk.order,
                               "rows": len(chunk.indices)}
            if progress is not None:
                chunks_done += 1
                rows_done += len(chunk.indices) * (
                    plan.noise.trials if plan.noise is not None else 1)
                progress.advance(groups_done=chunks_done,
                                 instances_done=rows_done,
                                 backend=plan.backend)
            yield chunk
    finally:
        # Persist whatever the scheduler learned this sweep — also on
        # early abandonment, so a killed stream still warms the next
        # run's cost profile.
        sched_module.flush_plan(plan)
        if progress is not None:
            progress.finish()


def _span_key(t_span) -> tuple[float, float]:
    return (float(t_span[0]), float(t_span[1]))


def _effective_backend(backend: ExecutionBackend,
                       task: GroupTask) -> ExecutionBackend:
    if isinstance(backend, AutoBackend):
        return backend._pick(task)
    return backend


def _submission_order(plan, tasks, kind) -> list[tuple]:
    """``(order, task)`` pairs in submission order. Under
    ``schedule="cost"`` groups submit longest-predicted-first (LPT), so
    the stiffest group starts integrating before the cheap ones queue
    behind it; ``order`` keeps the original label — groups solve
    independently and :func:`assemble_chunks` re-sorts by it, so
    reordering cannot change results."""
    ordered = list(enumerate(tasks))
    if len(ordered) < 2 or plan.schedule != "cost":
        return ordered
    scheduler = sched_module.scheduler_for(plan)
    # The executor's cache kind for ODE groups is "batch"; the shard
    # payload (and hence profile) kind is "ode" — map to the latter so
    # ordering reads the same profile entries the splits write.
    key_kind = "ode" if kind == "batch" else kind

    def predicted(pair):
        task = pair[1]
        lead = task.group_systems[0]
        method = task.options.get("method")
        key = sched_module.group_key(lead, method, key_kind)
        return scheduler.group_cost(key, len(task.group_systems),
                                    lead.n_states, method)

    return sorted(ordered, key=predicted, reverse=True)


def _drive_groups(plan, tasks, store, kind, key_options, solve_sync,
                  submit_async, on_error):
    """The executor's scheduling core: run every :class:`GroupTask`,
    yielding ``(order, task, BatchTrajectory)`` as groups finish.

    Cache hits yield first (they cost a key + load). Pool-backed groups
    are submitted asynchronously *up front* — workers start integrating
    immediately — and yield in completion order; everything else solves
    synchronously and lazily in group order. ``on_error(task, exc)``
    returns True to swallow a group's :class:`SimulationError` (the ODE
    path demotes the group to the serial fallback); storable results
    land in the trajectory cache exactly as the synchronous driver
    stored them. Any teardown — consumer abandoning the stream, a
    worker crash, ``KeyboardInterrupt`` — discards the in-flight
    handles, which releases their shared-memory blocks."""
    backend = BACKENDS[plan.backend]
    hits, sync, runs = [], [], []
    try:
        for order, task in _submission_order(plan, tasks, kind):
            key, hit = cache_lookup(store, task.group_systems, kind,
                                    key_options(task))
            if hit is not None:
                hits.append((order, task, hit))
                continue
            effective = _effective_backend(backend, task)
            handle = submit_async(effective, task)
            if handle is not None:
                runs.append((order, task, key, handle))
            else:
                sync.append((order, task, key, effective))
        yield from hits
        for order, task, key, effective in sync:
            try:
                with telemetry.span(
                        f"group[{order}].solve:{effective.name}"):
                    trajectory, storable = solve_sync(effective, task)
            except SimulationError as exc:
                if not on_error(task, exc):
                    raise
                continue
            cache_store(store, key, trajectory, storable)
            yield (order, task, trajectory)
        while runs:
            from repro.sim import pool as pool_module

            try:
                with telemetry.span("pool.wait"):
                    handle = pool_module.wait_any(
                        [run[3] for run in runs])
            except pool_module.PoolBrokenError as exc:
                # A dying worker takes every in-flight group with it.
                # Consult on_error for each — the ODE auto path demotes
                # them all to the serial fallback, so a hard crash
                # degrades the sweep instead of killing it; explicit
                # methods and the SDE path re-raise.
                pending = runs[:]
                runs.clear()
                for _order, _task, _key, broken in pending:
                    broken.discard()
                if not all(on_error(task, exc)
                           for _order, task, _key, _handle in pending):
                    raise
                break
            position = next(index for index, run in enumerate(runs)
                            if run[3] is handle)
            order, task, key, handle = runs.pop(position)
            try:
                trajectory, storable = handle.result()
            except SimulationError as exc:
                if not on_error(task, exc):
                    raise
                continue
            cache_store(store, key, trajectory, storable)
            yield (order, task, trajectory)
    except BaseException:
        for run in runs:
            run[3].discard()
        raise


def _stream_ode(plan: ExecutionPlan, seeds, systems):
    from repro.sim.ensemble import EnsembleChunk

    backend = BACKENDS[plan.backend]
    store = resolve_cache(plan.cache)

    batchable = backend.batches and plan.method in BATCH_METHODS
    serial_method = "RK45" if plan.method in BATCH_METHODS \
        else plan.method
    serial_options = dict(n_points=plan.n_points, method=serial_method,
                          rtol=plan.rtol, atol=plan.atol,
                          backend=plan.serial_backend,
                          t_eval=plan.t_eval, max_step=plan.max_step)

    serial_indices: list[int] = []
    tasks: list[GroupTask] = []
    if batchable:
        batch_method = "rkf45" if plan.method == "auto" else plan.method
        # The array backend travels as its canonical spec string — a
        # picklable token the pool workers resolve locally, and the
        # component cache keys discriminate on.
        solver_options = dict(n_points=plan.n_points,
                              method=batch_method, rtol=plan.rtol,
                              atol=plan.atol, t_eval=plan.t_eval,
                              max_step=plan.max_step, dense=plan.dense,
                              freeze_tol=plan.freeze_tol,
                              array_backend=plan.array_spec())
        for indices in group_by_signature(systems):
            if len(indices) < plan.min_batch:
                serial_indices.extend(indices)
                continue
            tasks.append(GroupTask(
                plan=plan, indices=list(indices),
                group_systems=[systems[i] for i in indices],
                options=solver_options))
    else:
        serial_indices = list(range(len(systems)))

    fanout = [plan.processes]

    def on_error(task, exc):
        # A group the batch path cannot integrate (e.g. a stiff
        # outlier underflowing the rkf45 step floor) is demoted to the
        # serial scipy path rather than failing the whole ensemble —
        # unless the caller forced a batch method explicitly.
        if plan.method != "auto":
            return False
        if parse_backend_spec(plan.array_spec())[0] != "numpy":
            # The serial fallback integrates on numpy: demoting a
            # device-backend group would silently swap the array
            # backend out from under the caller.
            return False
        from repro.sim.pool import PoolBrokenError

        if isinstance(exc, PoolBrokenError):
            # Whatever killed the worker (OOM, a crashing factory)
            # would kill a serial fan-out worker too — finish the
            # demoted instances in-process.
            fanout[0] = None
        serial_indices.extend(task.indices)
        return True

    for order, task, trajectory in _drive_groups(
            plan, tasks, store, "batch",
            lambda task: {**task.options,
                          "t_span": _span_key(plan.t_span)},
            lambda effective, task: effective.solve_ode(task),
            lambda effective, task: effective.submit_ode(task),
            on_error):
        yield EnsembleChunk(order=order, indices=list(task.indices),
                            trajectories=trajectory.trajectories(),
                            batches=[trajectory],
                            groups=[list(task.indices)])

    if serial_indices:
        with telemetry.span("serial.fanout"):
            serial = _run_serial(plan.factory, seeds, serial_indices,
                                 systems, plan.t_span, serial_options,
                                 fanout[0])
        ordered = sorted(serial_indices)
        yield EnsembleChunk(order=len(tasks), indices=ordered,
                            trajectories=[serial[i] for i in ordered],
                            serial_indices=ordered)


def _group_has_noise(group_systems) -> bool:
    """Whether the group carries diffusion terms that survive
    shared-value folding (a ``noise(0)`` annotation compiles away)."""
    return bool(surviving_diffusion(group_systems))


def _stream_sde(plan: ExecutionPlan, seeds, systems):
    from repro.sim.noisy import NoisyEnsembleChunk

    backend = BACKENDS[plan.backend]
    noise = plan.noise
    store = resolve_cache(plan.cache)
    groups = group_by_signature(systems)

    if not any(_group_has_noise([systems[i] for i in indices])
               for indices in groups):
        raise SimulationError(
            "transient-noise trials were requested (trials="
            f"{noise.trials}) but every instance compiles to a "
            "deterministic system — no live noise() terms or ns "
            "annotations survive; drop trials=/noise_seed= or add "
            "noise sources to the design")

    # rtol/atol drive the embedded-pair controller on the adaptive SDE
    # methods and the freeze-mask criterion everywhere; they must
    # follow the plan so the same freeze_tol masks identically on both
    # halves of a mixed sweep.
    solver_options = dict(n_points=plan.n_points, method=noise.method,
                          t_eval=plan.t_eval, max_step=plan.max_step,
                          block=noise.block, rtol=plan.rtol,
                          atol=plan.atol, freeze_tol=plan.freeze_tol,
                          array_backend=plan.array_spec())
    tasks: list[GroupTask] = []
    for indices in groups:
        replicated: list[OdeSystem] = []
        noise_seeds: list[str] = []
        chip_keys: list[int] = []
        for row_base, index in enumerate(indices):
            replicated.extend([systems[index]] * noise.trials)
            noise_seeds.extend(noise.tokens(seeds[index]))
            chip_keys.extend([row_base] * noise.trials)
        tasks.append(GroupTask(plan=plan, indices=list(indices),
                               group_systems=replicated,
                               options=solver_options,
                               noise_seeds=noise_seeds,
                               chip_keys=chip_keys))

    reference_backend = backend if backend.batches \
        else BACKENDS["batch"]
    # References are the chips' deterministic baselines: freeze masks
    # are intentionally not applied, so reliability metrics always
    # compare against the exact noise-free transient.
    reference_options = dict(n_points=plan.n_points, method="rk4",
                             rtol=plan.rtol, atol=plan.atol,
                             t_eval=plan.t_eval, max_step=plan.max_step,
                             dense=plan.dense, freeze_tol=None,
                             array_backend=plan.array_spec())

    def key_options(task):
        # `block` is excluded from the key on purpose: the Wiener
        # realization is block-size independent, so it cannot change
        # the result.
        trimmed = {k: v for k, v in task.options.items()
                   if k != "block"}
        return {**trimmed, "noise_seeds": tuple(task.noise_seeds),
                "t_span": _span_key(plan.t_span)}

    for order, task, batch in _drive_groups(
            plan, tasks, store, "sde", key_options,
            lambda effective, task: effective.solve_sde(task),
            lambda effective, task: effective.submit_sde(task),
            lambda task, exc: False):
        indices = task.indices
        references = None
        if noise.reference:
            group_systems = [systems[i] for i in indices]
            reference_task = GroupTask(plan=plan, indices=list(indices),
                                       group_systems=group_systems,
                                       options=reference_options)
            with telemetry.span(f"group[{order}].reference"):
                reference_batch = cached_batch_solve(
                    store, group_systems, "batch",
                    {**reference_options,
                     "t_span": _span_key(plan.t_span)},
                    lambda task=reference_task:
                    reference_backend.solve_ode(task))
            references = [reference_batch.instance(row)
                          for row in range(len(indices))]
        yield NoisyEnsembleChunk(
            order=order, indices=list(indices),
            seeds=[seeds[i] for i in indices], trials=noise.trials,
            batches=[batch],
            groups=[list(range(len(indices)))],
            references=references,
            _rows={local: (0, local * noise.trials)
                   for local in range(len(indices))})


def assemble_chunks(chunks, seeds, trials: int | None = None):
    """Fold a (drained) chunk stream back into the barriered result —
    the exact :class:`~repro.sim.ensemble.EnsembleResult` /
    :class:`~repro.sim.noisy.NoisyEnsembleResult` the pre-streaming
    driver returned, independent of chunk arrival order (chunks are
    re-sorted by submission order). ``trials`` disambiguates an empty
    noisy stream; it is ignored when chunks are present."""
    from repro.sim.ensemble import EnsembleResult
    from repro.sim.noisy import NoisyEnsembleChunk, NoisyEnsembleResult

    seeds = list(seeds)
    chunks = sorted(chunks, key=lambda chunk: chunk.order)
    noisy = trials is not None or any(
        isinstance(chunk, NoisyEnsembleChunk) for chunk in chunks)
    if noisy:
        if chunks:
            trials = chunks[0].trials
        result = NoisyEnsembleResult(seeds=seeds, trials=trials or 0)
        with_references = bool(chunks) and all(
            chunk.references is not None for chunk in chunks)
        if with_references:
            result.references = [None] * len(seeds)
        for chunk in chunks:
            batch_number = len(result.batches)
            result.batches.append(chunk.batches[0])
            result.groups.append(list(chunk.indices))
            for row_base, index in enumerate(chunk.indices):
                result._rows[index] = (batch_number,
                                       row_base * result.trials)
                if with_references:
                    result.references[index] = \
                        chunk.references[row_base]
        return result

    result = EnsembleResult(trajectories=[None] * len(seeds))
    serial_indices: list[int] = []
    for chunk in chunks:
        if chunk.batches:
            result.batches.append(chunk.batches[0])
            result.groups.append(list(chunk.indices))
        else:
            serial_indices.extend(chunk.serial_indices)
        # The chunk already unpacked its per-instance views — reuse
        # them instead of materializing a second set.
        for index, trajectory in zip(chunk.indices,
                                     chunk.trajectories):
            result.trajectories[index] = trajectory
    result.serial_indices = sorted(serial_indices)
    return result
