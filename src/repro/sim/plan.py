"""Unified execution-plan layer: one driver for every ensemble sweep.

The paper's evaluation workflow is one story — sweep fabrication
mismatch (§4.3) and transient noise over a compiled dynamical system —
and this module tells it through one architecture. An
:class:`ExecutionPlan` captures *what* to integrate (a ``factory(seed)``
per fabricated chip, the seed list, the time span), *how* (grid, solver
options, optional :class:`NoiseSpec` for SDE trials, per-instance
freeze masks) and *where* (an execution backend plus cache/shard
policy). Every public driver — :func:`repro.sim.run_ensemble`,
:func:`repro.sim.run_noisy_ensemble`, and
:func:`repro.simulate_ensemble` — compiles its arguments into a plan
and funnels through :func:`execute_plan`, so features land once and
cover both the deterministic and the stochastic path.

Backends are pluggable through a registry (:data:`BACKENDS`,
:func:`register_backend`):

* ``serial`` — one solve per instance: scipy ``solve_ivp`` per seed on
  the deterministic path, a batch-of-one SDE solve per (chip, trial)
  row on the noisy path (the reference the batched engines are
  benchmarked against);
* ``batch``  — one single-process vectorized solve per structurally
  compatible group (:func:`~repro.sim.batch_solver.solve_batch` /
  :func:`~repro.sim.sde_solver.solve_sde`);
* ``shard``  — the batched solve split into per-core sub-batches across
  a ``multiprocessing`` pool. Fixed-step methods (``rk4`` and both SDE
  methods) are bit-identical to the unsharded solve because every
  instance's arithmetic is row-local and Wiener streams are keyed by
  ``(noise seed, element, path)`` — never by batch layout;
* ``auto``   — per-group policy: ``shard`` when a pool is requested and
  the group is large enough, else ``batch``. This is the default and
  reproduces the historical driver behavior.

Trajectory caching (:mod:`repro.sim.cache`) is applied uniformly in the
executor — the noisy path is keyed and replayed exactly like the
deterministic one, including sharded SDE results (bit-identical, hence
storable); shard-split *adaptive* ODE solves remain uncachable because
per-shard step control may differ from the whole-group run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

from repro.core.compiler import compile_graph
from repro.core.graph import DynamicalGraph
from repro.core.odesystem import OdeSystem
from repro.core.simulator import Trajectory, simulate
from repro.errors import SimulationError

from repro.sim import batch_codegen
from repro.sim.batch_codegen import (compile_batch, group_by_signature,
                                     surviving_diffusion)
from repro.sim.batch_solver import (BatchTrajectory, _output_grid,
                                    solve_batch)
from repro.sim.cache import cached_batch_solve, resolve_cache
from repro.sim.sde_solver import SDE_METHODS, solve_sde

#: Methods handled natively by the batched ODE solver.
BATCH_METHODS = ("auto", "rkf45", "rk45", "rk4")

#: Smallest batched group the auto policy will split across a pool.
DEFAULT_SHARD_MIN = 64


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class NoiseSpec:
    """The stochastic half of a plan: how many transient-noise trials
    to realize per fabricated chip, and with which SDE solver.

    ``noise_seed`` is the first trial index; every (chip, trial) pair
    draws the deterministic Wiener realization keyed by the token
    ``"<chip_seed>:<noise_seed + trial>"``, so shifting ``noise_seed``
    selects a fresh, non-overlapping set of realizations for the same
    chips while a rerun replays the identical ones.
    """

    trials: int = 8
    method: str = "heun"
    noise_seed: int = 0
    block: int = 256
    reference: bool = True

    def tokens(self, chip_seed) -> list[str]:
        """The chip's per-trial Wiener seed tokens, trial-minor order."""
        return [f"{chip_seed}:{self.noise_seed + trial}"
                for trial in range(self.trials)]


@dataclass
class ExecutionPlan:
    """Everything that determines one ensemble execution.

    :param factory: ``factory(seed) -> DynamicalGraph | OdeSystem``.
    :param seeds: mismatch seeds, one fabricated instance each.
    :param t_span: integration span ``(t0, t1)``.
    :param backend: execution backend name (see :data:`BACKENDS`);
        ``auto`` picks ``shard`` or ``batch`` per group.
    :param noise: ``None`` for a deterministic (ODE) sweep, a
        :class:`NoiseSpec` for a (chip x trial) SDE sweep.
    :param method: ODE method — ``auto``/``rkf45``/``rk4`` run batched,
        any scipy name forces the serial path (ignored when ``noise``
        is set; the SDE method lives in the spec).
    :param freeze_tol: per-instance step mask tolerance — converged (or,
        on the SDE path, diverged) instances freeze at their current
        state instead of forcing the worst-case step on the whole
        batch; ``None`` disables masking (see
        :func:`~repro.sim.batch_solver.solve_batch`).
    :param serial_backend: RHS backend of the serial scipy path
        (``codegen``/``interpreter``).
    :param min_batch: smallest structural group worth a batched compile.
    :param processes: process-pool width for the ``shard`` backend and
        the serial fan-out.
    :param shard_min: smallest batched group the ``auto`` policy shards.
    :param cache: trajectory-cache spec (``True``, a directory path, or
        a :class:`~repro.sim.cache.TrajectoryCache`).
    """

    factory: object
    seeds: list
    t_span: tuple
    backend: str = "auto"
    noise: NoiseSpec | None = None
    n_points: int = 500
    t_eval: object = None
    method: str = "auto"
    rtol: float = 1e-7
    atol: float = 1e-9
    max_step: float | None = None
    dense: bool = True
    freeze_tol: float | None = None
    serial_backend: str = "codegen"
    min_batch: int = 2
    processes: int | None = None
    shard_min: int = DEFAULT_SHARD_MIN
    cache: object = None

    def validate(self) -> None:
        """Reject malformed plans up front (unknown backend or SDE
        method, non-positive trial counts) instead of silently running
        a different sweep than the one asked for."""
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown execution backend {self.backend!r}; "
                f"registered backends: {', '.join(backend_names())}")
        if self.noise is not None:
            if self.noise.trials < 1:
                raise SimulationError(
                    f"trials must be >= 1, got {self.noise.trials}")
            if self.noise.method not in SDE_METHODS:
                raise SimulationError(
                    f"unknown SDE method {self.noise.method!r}; "
                    f"expected one of {', '.join(SDE_METHODS)}")
        if self.freeze_tol is not None and self.freeze_tol <= 0.0:
            raise ValueError(
                f"freeze_tol must be > 0 (or None), got "
                f"{self.freeze_tol}")

    def run(self):
        """Execute the plan (see :func:`execute_plan`)."""
        return execute_plan(self)


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------


def _compile_target(target) -> OdeSystem:
    if isinstance(target, DynamicalGraph):
        return compile_graph(target)
    if isinstance(target, OdeSystem):
        return target
    raise SimulationError(
        f"ensemble factory must return a DynamicalGraph or OdeSystem, "
        f"got {type(target).__name__}")


def _payload_pickles(payload) -> bool:
    """Pre-flight picklability check. Callers pass one representative
    pool payload plus the full seed list (payloads differ only in
    their seeds, so this answers for all of them at a fraction of
    serializing every duplicated factory/options copy). Checking up
    front (instead of catching the pool's errors) keeps genuine worker
    exceptions — including worker ``TypeError``s — propagating to the
    caller instead of being silently retried in-process."""
    import pickle

    try:
        pickle.dumps(payload)
    except Exception:
        return False
    return True


def _serial_job(payload):
    """Module-level worker so a multiprocessing pool can pickle it. The
    factory itself must also pickle — the driver falls back to
    in-process execution when the parent-side pre-flight check fails
    (e.g. lambdas). Failures only visible in the child (a ``spawn``
    worker that cannot re-import the factory's module) propagate like
    any other worker error rather than silently degrading."""
    factory, seed, t_span, options = payload
    trajectory = simulate(factory(seed), t_span, **options)
    return trajectory.t, trajectory.y


def _run_serial(factory, seeds, indices, systems, t_span, options,
                processes):
    """Serial scipy path for structurally unique instances, optionally
    across a process pool. Returns {index: Trajectory}."""
    results: dict[int, Trajectory] = {}
    pending = list(indices)
    if processes and processes > 1 and len(pending) > 1:
        payloads = [(factory, seeds[i], t_span, options)
                    for i in pending]
        if _payload_pickles((payloads[0],
                             [seeds[i] for i in pending])):
            import multiprocessing

            with multiprocessing.Pool(processes) as pool:
                rows = pool.map(_serial_job, payloads)
            for index, (t, y) in zip(pending, rows):
                results[index] = Trajectory(t=t, y=y,
                                            system=systems[index])
            return results
    for index in pending:
        results[index] = simulate(systems[index], t_span, **options)
    return results


def _whole_group_fuse(n_rows: int, lead: OdeSystem) -> bool:
    """The fuse decision the *unsharded* batch would make. Shard
    workers must inherit it: the emitter's dense-tensor memory guard
    depends on batch size, so a shard deciding for itself could compile
    a fused RHS where the whole group would not, breaking
    shard-vs-whole bit-identity for fixed-step methods."""
    return (n_rows * lead.n_states * lead.n_states
            <= batch_codegen.FUSE_DENSE_LIMIT)


def _batch_shard_job(payload):
    """Pool worker integrating one shard of a batched ODE group:
    rebuild the shard's instances from (factory, seeds) — systems
    themselves rarely pickle — and run the same batched solve the
    parent would."""
    factory, shard_seeds, t_span, options, fuse = payload
    systems = [_compile_target(factory(seed)) for seed in shard_seeds]
    trajectory = solve_batch(compile_batch(systems, fuse=fuse), t_span,
                             **options)
    return trajectory.y


def _solve_batch_sharded(factory, seeds, indices, systems, t_span,
                         options, processes) -> BatchTrajectory | None:
    """Integrate one structural group as per-core sub-batches across a
    process pool. Returns ``None`` when the pool cannot be used (the
    caller then runs the single-process batched solve).

    Each shard is an independent batched solve over a contiguous slice
    of the group, so stacking the shard results reproduces the
    single-process row order exactly; with fixed-step methods the
    result is bit-identical (every instance's arithmetic is row-local),
    while rkf45's shared step sequence may differ at tolerance level
    because error control no longer sees the whole group.
    """
    n_shards = min(int(processes), len(indices))
    if n_shards < 2:
        return None
    fuse = _whole_group_fuse(len(indices), systems[indices[0]])
    shards = [list(part)
              for part in np.array_split(np.asarray(indices), n_shards)]
    payloads = [(factory, [seeds[i] for i in shard], t_span, options,
                 fuse)
                for shard in shards if shard]
    if not _payload_pickles((payloads[0],
                             [seeds[i] for i in indices])):
        return None
    import multiprocessing

    with multiprocessing.Pool(len(payloads)) as pool:
        stacked = pool.map(_batch_shard_job, payloads)
    y = np.concatenate(stacked, axis=0)
    grid = _output_grid(t_span, options.get("n_points", 500),
                        options.get("t_eval"))
    return BatchTrajectory(t=grid, y=y,
                           systems=[systems[i] for i in indices])


def _sde_shard_job(payload):
    """Pool worker integrating one shard of a replicated SDE batch.
    ``rows`` is a list of ``(chip_key, chip_seed, noise_token)`` —
    every chip is rebuilt through the factory exactly once per shard
    and replicated for its trial rows; the Wiener realization of a row
    depends only on its token, never on the batch layout, so the shard
    rows are bit-identical to the unsharded solve."""
    factory, rows, t_span, options, fuse = payload
    compiled: dict = {}
    replicated, tokens = [], []
    for chip_key, chip_seed, token in rows:
        if chip_key not in compiled:
            compiled[chip_key] = _compile_target(factory(chip_seed))
        replicated.append(compiled[chip_key])
        tokens.append(token)
    trajectory = solve_sde(compile_batch(replicated, fuse=fuse), t_span,
                           noise_seeds=tokens, **options)
    return trajectory.y


def sharded_solve_sde(factory, chip_seeds, chip_keys, noise_seeds,
                      replicated, t_span, options,
                      processes) -> BatchTrajectory | None:
    """Integrate a replicated (chip x trial) SDE batch as per-core
    sub-batches. Row ``r`` belongs to chip ``chip_keys[r]`` (an index
    into ``chip_seeds``) and draws the Wiener realization of
    ``noise_seeds[r]``. Returns ``None`` when the pool cannot be used;
    otherwise the result is **bit-identical** to the unsharded
    :func:`~repro.sim.sde_solver.solve_sde` — fixed-step solvers keep
    every instance's arithmetic row-local and streams are keyed per
    token, so splitting rows across processes cannot change them.
    """
    n_rows = len(noise_seeds)
    n_shards = min(int(processes), n_rows)
    if n_shards < 2:
        return None
    fuse = _whole_group_fuse(n_rows, replicated[0])
    rows = [(chip_keys[r], chip_seeds[chip_keys[r]], noise_seeds[r])
            for r in range(n_rows)]
    shards = [part for part in np.array_split(np.arange(n_rows),
                                              n_shards) if len(part)]
    payloads = [(factory, [rows[r] for r in shard], t_span, options,
                 fuse)
                for shard in shards]
    if not _payload_pickles((payloads[0], list(chip_seeds),
                             list(noise_seeds))):
        return None
    import multiprocessing

    with multiprocessing.Pool(len(payloads)) as pool:
        stacked = pool.map(_sde_shard_job, payloads)
    y = np.concatenate(stacked, axis=0)
    grid = _output_grid(t_span, options.get("n_points", 500),
                        options.get("t_eval"))
    return BatchTrajectory(t=grid, y=y, systems=list(replicated))


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


@dataclass
class GroupTask:
    """One structurally compatible group, ready for a backend.

    For ODE groups ``group_systems`` holds one system per chip and
    ``noise_seeds`` is ``None``; for SDE groups ``group_systems`` holds
    the chip-major, trial-minor *replicated* batch, ``chip_keys[r]``
    names the chip (an index into ``chip_indices``) of each row, and
    ``noise_seeds[r]`` its Wiener token. ``options`` are the solver
    keyword arguments of :func:`~repro.sim.batch_solver.solve_batch` /
    :func:`~repro.sim.sde_solver.solve_sde` respectively.
    """

    plan: ExecutionPlan
    indices: list[int]
    group_systems: list[OdeSystem]
    options: dict
    noise_seeds: list[str] | None = None
    chip_keys: list[int] | None = None

    @property
    def chip_seeds(self) -> list:
        seeds = list(self.plan.seeds)
        return [seeds[i] for i in self.indices]


class ExecutionBackend:
    """One strategy for integrating a structurally compatible group.

    Subclasses implement :meth:`solve_ode` and :meth:`solve_sde`, each
    returning ``(BatchTrajectory, storable)`` — ``storable=False``
    vetoes caching a result an uncached rerun could not reproduce
    bit-for-bit. ``batches = False`` marks a backend that forgoes
    vectorized groups entirely (the deterministic executor then sends
    every instance down the per-instance scipy path).
    """

    name = "?"
    #: Whether ODE groups should be batched at all under this backend.
    batches = True

    def solve_ode(self, task: GroupTask):
        raise NotImplementedError

    def solve_sde(self, task: GroupTask):
        raise NotImplementedError


class BatchBackend(ExecutionBackend):
    """Single-process vectorized solve of the whole group."""

    name = "batch"

    def solve_ode(self, task: GroupTask):
        batch = compile_batch(task.group_systems)
        return solve_batch(batch, task.plan.t_span,
                           **task.options), True

    def solve_sde(self, task: GroupTask):
        batch = compile_batch(task.group_systems)
        return solve_sde(batch, task.plan.t_span,
                         noise_seeds=task.noise_seeds,
                         **task.options), True


class SerialBackend(ExecutionBackend):
    """One solve per instance — the legacy/reference shape.

    Deterministic sweeps run scipy ``solve_ivp`` per seed (handled by
    the executor's per-instance path, hence ``batches = False``); noisy
    sweeps run one batch-of-one SDE solve per (chip, trial) row, each
    consuming the identical per-token Wiener stream the batched engines
    use, so responses agree bit for bit with ``batch``/``shard``.
    """

    name = "serial"
    batches = False

    def solve_ode(self, task: GroupTask):  # pragma: no cover - unused
        raise SimulationError(
            "the serial backend integrates ODE instances through the "
            "per-instance scipy path, not through batched groups")

    def solve_sde(self, task: GroupTask):
        singles: dict[int, object] = {}
        rows = []
        for row, system in enumerate(task.group_systems):
            chip = task.chip_keys[row]
            if chip not in singles:
                singles[chip] = compile_batch([system])
            trajectory = solve_sde(singles[chip], task.plan.t_span,
                                   noise_seeds=[task.noise_seeds[row]],
                                   **task.options)
            rows.append(trajectory.y)
        return BatchTrajectory(t=trajectory.t,
                               y=np.concatenate(rows, axis=0),
                               systems=list(task.group_systems)), True


class ShardBackend(ExecutionBackend):
    """Process-pool sharded solve, falling back to ``batch`` when the
    pool cannot be used (unpicklable factory, group too small, or a
    one-wide pool)."""

    name = "shard"

    def _processes(self, plan: ExecutionPlan) -> int:
        if plan.processes is not None:
            return int(plan.processes)
        return os.cpu_count() or 1

    def solve_ode(self, task: GroupTask):
        plan = task.plan
        processes = self._processes(plan)
        sharded = _solve_batch_sharded(
            plan.factory, list(plan.seeds), task.indices,
            {i: s for i, s in zip(task.indices, task.group_systems)},
            plan.t_span, task.options, processes)
        if sharded is None:
            return BACKENDS["batch"].solve_ode(task)
        # Shard-split rkf45 runs per-shard step control, so an uncached
        # whole-group rerun would not reproduce it bit-for-bit — keep
        # it out of the cache. Fixed-step rk4 shards are bit-identical
        # and safe to store.
        return sharded, task.options.get("method") == "rk4"

    def solve_sde(self, task: GroupTask):
        plan = task.plan
        sharded = sharded_solve_sde(
            plan.factory, task.chip_seeds, task.chip_keys,
            task.noise_seeds, task.group_systems, plan.t_span,
            task.options, self._processes(plan))
        if sharded is None:
            return BACKENDS["batch"].solve_sde(task)
        # Both SDE methods are fixed-step: shards are bit-identical to
        # the whole-group solve, so the result is safely cachable.
        return sharded, True


class AutoBackend(ExecutionBackend):
    """Per-group policy: shard large groups when a pool was requested,
    run everything else single-process — the historical behavior of
    ``run_ensemble(processes=N)``."""

    name = "auto"

    def _pick(self, task: GroupTask) -> ExecutionBackend:
        plan = task.plan
        # Size by integrated rows: the group's chips on the ODE path,
        # the full (chip x trial) replication on the SDE path.
        big_enough = len(task.group_systems) >= max(plan.shard_min,
                                                    2 * plan.min_batch)
        if plan.processes and plan.processes > 1 and big_enough:
            return BACKENDS["shard"]
        return BACKENDS["batch"]

    def solve_ode(self, task: GroupTask):
        return self._pick(task).solve_ode(task)

    def solve_sde(self, task: GroupTask):
        return self._pick(task).solve_sde(task)


#: The pluggable backend registry. Keys are plan ``backend`` names.
BACKENDS: dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Register (or replace) an execution backend under its name."""
    BACKENDS[backend.name] = backend
    return backend


def backend_names() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(BACKENDS))


register_backend(BatchBackend())
register_backend(SerialBackend())
register_backend(ShardBackend())
register_backend(AutoBackend())


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------


def execute_plan(plan: ExecutionPlan):
    """Compile every instance, group by structural signature, and
    integrate each group through the plan's backend (with uniform
    trajectory caching). Returns an
    :class:`~repro.sim.ensemble.EnsembleResult` for deterministic plans
    and a :class:`~repro.sim.noisy.NoisyEnsembleResult` for plans
    carrying a :class:`NoiseSpec`."""
    plan.validate()
    seeds = list(plan.seeds)
    # Normalize up front: a generator would be exhausted by the first
    # traversal, and shard tasks re-read plan.seeds.
    plan = replace(plan, seeds=seeds)
    systems = [_compile_target(plan.factory(seed)) for seed in seeds]
    if plan.noise is None:
        return _execute_ode(plan, seeds, systems)
    return _execute_sde(plan, seeds, systems)


def _span_key(t_span) -> tuple[float, float]:
    return (float(t_span[0]), float(t_span[1]))


def _execute_ode(plan: ExecutionPlan, seeds, systems):
    from repro.sim.ensemble import EnsembleResult

    backend = BACKENDS[plan.backend]
    result = EnsembleResult(trajectories=[None] * len(seeds))
    store = resolve_cache(plan.cache)

    batchable = backend.batches and plan.method in BATCH_METHODS
    serial_method = "RK45" if plan.method in BATCH_METHODS \
        else plan.method
    serial_options = dict(n_points=plan.n_points, method=serial_method,
                          rtol=plan.rtol, atol=plan.atol,
                          backend=plan.serial_backend,
                          t_eval=plan.t_eval, max_step=plan.max_step)

    serial_indices: list[int] = []
    if batchable:
        batch_method = "rkf45" if plan.method == "auto" else plan.method
        solver_options = dict(n_points=plan.n_points,
                              method=batch_method, rtol=plan.rtol,
                              atol=plan.atol, t_eval=plan.t_eval,
                              max_step=plan.max_step, dense=plan.dense,
                              freeze_tol=plan.freeze_tol)
        for indices in group_by_signature(systems):
            if len(indices) < plan.min_batch:
                serial_indices.extend(indices)
                continue
            group_systems = [systems[i] for i in indices]
            task = GroupTask(plan=plan, indices=list(indices),
                             group_systems=group_systems,
                             options=solver_options)
            try:
                trajectory = cached_batch_solve(
                    store, group_systems, "batch",
                    {**solver_options, "t_span": _span_key(plan.t_span)},
                    lambda task=task: backend.solve_ode(task))
            except SimulationError:
                # A group the batch path cannot integrate (e.g. a stiff
                # outlier underflowing the rkf45 step floor) is demoted
                # to the serial scipy path rather than failing the
                # whole ensemble — unless the caller forced a batch
                # method explicitly.
                if plan.method != "auto":
                    raise
                serial_indices.extend(indices)
                continue
            _record_group(result, trajectory, indices)
    else:
        serial_indices = list(range(len(seeds)))

    if serial_indices:
        serial = _run_serial(plan.factory, seeds, serial_indices,
                             systems, plan.t_span, serial_options,
                             plan.processes)
        for index, trajectory in serial.items():
            result.trajectories[index] = trajectory
    result.serial_indices = sorted(serial_indices)
    return result


def _group_has_noise(group_systems) -> bool:
    """Whether the group carries diffusion terms that survive
    shared-value folding (a ``noise(0)`` annotation compiles away)."""
    return bool(surviving_diffusion(group_systems))


def _execute_sde(plan: ExecutionPlan, seeds, systems):
    from repro.sim.noisy import NoisyEnsembleResult

    backend = BACKENDS[plan.backend]
    noise = plan.noise
    result = NoisyEnsembleResult(seeds=seeds, trials=noise.trials)
    store = resolve_cache(plan.cache)
    groups = group_by_signature(systems)

    if not any(_group_has_noise([systems[i] for i in indices])
               for indices in groups):
        raise SimulationError(
            "transient-noise trials were requested (trials="
            f"{noise.trials}) but every instance compiles to a "
            "deterministic system — no live noise() terms or ns "
            "annotations survive; drop trials=/noise_seed= or add "
            "noise sources to the design")

    # rtol/atol only steer the freeze-mask criterion on the fixed-step
    # SDE solvers, but they must follow the plan so the same
    # freeze_tol masks identically on both halves of a mixed sweep.
    solver_options = dict(n_points=plan.n_points, method=noise.method,
                          t_eval=plan.t_eval, max_step=plan.max_step,
                          block=noise.block, rtol=plan.rtol,
                          atol=plan.atol, freeze_tol=plan.freeze_tol)
    for indices in groups:
        replicated: list[OdeSystem] = []
        noise_seeds: list[str] = []
        chip_keys: list[int] = []
        for row_base, index in enumerate(indices):
            result._rows[index] = (len(result.batches),
                                   row_base * noise.trials)
            replicated.extend([systems[index]] * noise.trials)
            noise_seeds.extend(noise.tokens(seeds[index]))
            chip_keys.extend([row_base] * noise.trials)
        task = GroupTask(plan=plan, indices=list(indices),
                         group_systems=replicated,
                         options=solver_options,
                         noise_seeds=noise_seeds, chip_keys=chip_keys)
        # `block` is excluded from the key on purpose: the Wiener
        # realization is block-size independent, so it cannot change
        # the result.
        key_options = {k: v for k, v in solver_options.items()
                       if k != "block"}
        batch = cached_batch_solve(
            store, replicated, "sde",
            {**key_options, "noise_seeds": tuple(noise_seeds),
             "t_span": _span_key(plan.t_span)},
            lambda task=task: backend.solve_sde(task))
        result.batches.append(batch)
        result.groups.append(list(indices))

    if noise.reference:
        result.references = [None] * len(seeds)
        # References are the chips' deterministic baselines: freeze
        # masks are intentionally not applied, so reliability metrics
        # always compare against the exact noise-free transient.
        reference_options = dict(n_points=plan.n_points, method="rk4",
                                 rtol=plan.rtol, atol=plan.atol,
                                 t_eval=plan.t_eval,
                                 max_step=plan.max_step,
                                 dense=plan.dense, freeze_tol=None)
        reference_backend = backend if backend.batches \
            else BACKENDS["batch"]
        for indices in groups:
            group_systems = [systems[i] for i in indices]
            task = GroupTask(plan=plan, indices=list(indices),
                             group_systems=group_systems,
                             options=reference_options)
            reference_batch = cached_batch_solve(
                store, group_systems, "batch",
                {**reference_options,
                 "t_span": _span_key(plan.t_span)},
                lambda task=task: reference_backend.solve_ode(task))
            for row, index in enumerate(indices):
                result.references[index] = reference_batch.instance(row)
    return result


def _record_group(result, trajectory: BatchTrajectory, indices) -> None:
    result.batches.append(trajectory)
    result.groups.append(list(indices))
    for row, index in enumerate(indices):
        result.trajectories[index] = trajectory.instance(row)
