"""Vectorized batch integration of compiled ensembles.

Two fixed-grid solvers operate on the whole ``(n_instances, n_states)``
state matrix at once:

* ``rk4``   — classic fixed-step Runge-Kutta 4, substepped to respect
  ``max_step``; cheapest when the dynamics are smooth and the grid is
  dense enough;
* ``rkf45`` — adaptive Runge-Kutta-Fehlberg 4(5) with *per-instance*
  error control: the embedded error estimate is normalized per instance
  and the shared step obeys the worst one, so a single stiff outlier
  cannot silently degrade its siblings' accuracy.

Both land exactly on a shared output grid. ``rk4`` substeps each grid
interval; ``rkf45`` defaults to *dense output* — steps are sized by the
error estimate alone and grid samples are filled by a bootstrapped
quartic interpolant (order-consistent with the propagated solution), so
fine output grids no longer force extra RHS evaluations
(``dense=False`` restores the legacy clip-to-grid stepping). Both
return a :class:`BatchTrajectory` with ``(n_instances, n_states, n_t)``
storage plus the ensemble accessors (mean/std/percentile bands) the
paper's Fig. 4c/4d-style mismatch studies read.

The step loops run on the batch's array backend (see
:mod:`repro.sim.array_api`): state matrices live as backend arrays, the
per-instance freeze masks are applied through value-identical
``xp.where`` selects (no in-place stores, so immutable backends work),
and host transfer happens only where accepted states land in the
preallocated numpy output buffer — the trajectory-assembly boundary.
Step-size control stays host-side python-float math, which also keeps
the float32 dtype policy intact (python scalars are weak under NEP 50
promotion; numpy float64 scalars are not). On the default numpy
backend every arithmetic operation is exactly the pre-abstraction one —
results are bit-identical (test-enforced).
"""

from __future__ import annotations

import math

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.core.odesystem import OdeSystem
from repro.core.simulator import Trajectory, check_sample_times
from repro.errors import SimulationError

from repro.sim.array_api import resolve_array_backend
from repro.sim.batch_codegen import BatchRhs, compile_batch

#: Fehlberg 4(5) tableau — stage nodes, stage weights, and the 5th/4th
#: order solution weights.
_RKF_C = (0.25, 3.0 / 8.0, 12.0 / 13.0, 1.0, 0.5)
_RKF_A = (
    (0.25,),
    (3.0 / 32.0, 9.0 / 32.0),
    (1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0),
    (439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0),
    (-8.0 / 27.0, 2.0, -3544.0 / 2565.0, 1859.0 / 4104.0, -11.0 / 40.0),
)
_RKF_B5 = (16.0 / 135.0, 0.0, 6656.0 / 12825.0, 28561.0 / 56430.0,
           -9.0 / 50.0, 2.0 / 55.0)
_RKF_B4 = (25.0 / 216.0, 0.0, 1408.0 / 2565.0, 2197.0 / 4104.0,
           -1.0 / 5.0, 0.0)


@dataclass
class BatchTrajectory:
    """An ensemble transient: shared times plus per-instance states.

    ``y`` has shape ``(n_instances, n_states, n_t)``. Node accessors
    return ``(n_instances, n_t)`` matrices; the statistics accessors
    reduce over the instance axis, giving the pointwise ensemble
    envelopes of the paper's mismatch figures directly.
    """

    t: np.ndarray
    y: np.ndarray
    systems: list[OdeSystem]
    #: Per-instance step-mask state at the end of the run (``None``
    #: when the solver ran without ``freeze_tol`` or the trajectory was
    #: rebuilt from a cache hit): True marks instances that froze —
    #: converged (or, on the SDE path, diverged) and held constant.
    frozen: np.ndarray | None = None
    #: Number of batched RHS evaluations the solve spent (``None`` on
    #: cache rebuilds) — the step-mask savings metric.
    nfev: int | None = None

    @property
    def n_instances(self) -> int:
        return self.y.shape[0]

    @property
    def n_points(self) -> int:
        return len(self.t)

    def __len__(self) -> int:
        return self.n_instances

    def __getitem__(self, node: str) -> np.ndarray:
        return self.state(node, 0)

    def state(self, node: str, deriv: int = 0) -> np.ndarray:
        """All instances' trajectories of a node: (n_instances, n_t)."""
        return self.y[:, self.systems[0].index_of(node, deriv), :]

    def final(self, node: str, deriv: int = 0) -> np.ndarray:
        """Per-instance final value of a node: (n_instances,)."""
        return self.state(node, deriv)[:, -1].copy()

    def sample(self, node: str, times, deriv: int = 0) -> np.ndarray:
        """Linear interpolation of every instance at given times:
        (n_instances, len(times)). Times outside the trajectory's range
        raise — ``np.interp`` would silently clamp them to the endpoint
        values, turning an out-of-window readout into a confidently
        wrong constant."""
        times = np.asarray(times, dtype=float)
        check_sample_times(times, self.t)
        rows = self.state(node, deriv)
        return np.stack([np.interp(times, self.t, row) for row in rows])

    def instance(self, index: int) -> Trajectory:
        """One instance's run as a plain serial :class:`Trajectory`."""
        return Trajectory(t=self.t, y=self.y[index],
                          system=self.systems[index])

    def trajectories(self) -> list[Trajectory]:
        """All instances as serial trajectories (ensemble-API compat)."""
        return [self.instance(i) for i in range(self.n_instances)]

    # ------------------------------------------------------------------
    # Ensemble statistics
    # ------------------------------------------------------------------

    def mean(self, node: str, deriv: int = 0) -> np.ndarray:
        return self.state(node, deriv).mean(axis=0)

    def std(self, node: str, deriv: int = 0) -> np.ndarray:
        return self.state(node, deriv).std(axis=0)

    def percentile(self, node: str, q, deriv: int = 0) -> np.ndarray:
        """Pointwise percentile(s) across the ensemble."""
        return np.percentile(self.state(node, deriv), q, axis=0)

    def band(self, node: str, lower: float = 5.0, upper: float = 95.0,
             ) -> dict[str, np.ndarray]:
        """The shaded envelope a Fig. 4c/4d-style plot would draw."""
        if not 0.0 <= lower < upper <= 100.0:
            raise ValueError(
                f"percentiles must satisfy 0 <= lower < upper <= 100, "
                f"got ({lower}, {upper})")
        matrix = self.state(node)
        return {
            "median": np.percentile(matrix, 50.0, axis=0),
            "lower": np.percentile(matrix, lower, axis=0),
            "upper": np.percentile(matrix, upper, axis=0),
        }

    def spread(self, node: str, window: tuple[float, float],
               n_samples: int = 100) -> float:
        """Scalar spread score inside an observation window (mean
        pointwise std) — the Fig. 4c/4d comparison number."""
        times = np.linspace(window[0], window[1], n_samples)
        return float(self.sample(node, times).std(axis=0).mean())

    def __repr__(self) -> str:
        return (f"<BatchTrajectory instances={self.n_instances} "
                f"states={self.y.shape[1]} points={self.n_points}>")


def _output_grid(t_span, n_points, t_eval) -> np.ndarray:
    t0, t1 = float(t_span[0]), float(t_span[1])
    if not t1 > t0:
        raise SimulationError(f"empty time span [{t0}, {t1}]")
    if t_eval is None:
        if int(n_points) < 2:
            raise SimulationError(
                f"n_points must be >= 2 to span [{t0}, {t1}], got "
                f"{n_points} (a degenerate grid would skip integration "
                "and return only y0)")
        return np.linspace(t0, t1, int(n_points))
    grid = np.asarray(t_eval, dtype=float)
    if grid.ndim != 1 or len(grid) < 2 or np.any(np.diff(grid) <= 0):
        raise SimulationError("t_eval must be strictly increasing with "
                              "at least two points")
    return grid


def _resolve_max_step(max_step, span: float) -> float:
    """Normalize the solver ``max_step`` option: ``None`` defaults to
    span/64 (matching the serial :func:`~repro.core.simulator.
    simulate` so brief input events cannot be stepped over), ``+inf``
    lifts the cap to the whole span, and anything else must be a
    positive finite number — zero used to die in a substep division
    and negatives were silently swallowed by ``max(1, ...)``."""
    span = float(span)
    if max_step is None:
        return span / 64.0
    max_step = float(max_step)
    if np.isinf(max_step) and max_step > 0:
        return span
    if np.isnan(max_step) or max_step <= 0.0:
        raise SimulationError(
            f"max_step must be > 0, got {max_step}")
    return max_step


def _batch_backend(batch, array_backend):
    """Resolve the array backend a solve runs on. A precompiled
    :class:`BatchRhs` carries its own (its kernels were emitted for
    that namespace), so an explicit *conflicting* request is an error
    rather than a silent mixed-namespace run; system lists and
    duck-typed rhs objects take the requested backend, defaulting to
    numpy."""
    compiled = getattr(batch, "backend", None)
    if array_backend is None:
        return compiled if compiled is not None \
            else resolve_array_backend(None)
    requested = resolve_array_backend(array_backend)
    if compiled is not None and compiled.spec() != requested.spec():
        raise SimulationError(
            f"array_backend {requested.spec()!r} conflicts with the "
            f"precompiled batch's backend {compiled.spec()!r}; "
            "recompile the batch on the requested backend (or drop "
            "the argument to use the batch's own)")
    return requested


def freeze_converged(y, f, remaining: float, rtol: float, atol: float,
                     freeze_tol: float, xp=np):
    """Per-instance convergence test of the step-mask machinery: an
    instance may freeze when extrapolating its current drift over the
    *entire remaining span* moves every state by less than
    ``freeze_tol`` times the solver's tolerance scale — i.e. the
    instance has settled and, left alone, would stay put to within the
    requested accuracy. Returns the boolean ``(n_instances,)`` mask."""
    remaining = float(remaining)
    scale = atol + rtol * xp.abs(y)
    drift = xp.abs(f) * remaining
    return xp.sqrt(xp.mean((drift / scale) ** 2, axis=1)) <= freeze_tol


def _rk4_batch(rhs: BatchRhs, grid: np.ndarray, max_step: float,
               rtol: float, atol: float,
               freeze_tol: float | None, backend=None):
    B = backend if backend is not None else resolve_array_backend(None)
    xp = B.xp
    y = B.asarray(rhs.y0)
    out = np.empty((y.shape[0], y.shape[1], len(grid)),
                   dtype=B.dtype)  # ark: host-boundary
    out[:, :, 0] = B.to_numpy(y)
    frozen = xp.zeros(y.shape[0], dtype=bool)
    nfev = 0
    accepted = 0
    t_end = grid[-1]
    for k in range(len(grid) - 1):
        if bool(frozen.all()):
            # Every instance holds constant: fill the rest of the grid
            # without evaluating the RHS again.
            out[:, :, k + 1:] = B.to_numpy(y)[:, :, None]
            break
        dt = float(grid[k + 1] - grid[k])
        substeps = max(1, math.ceil(dt / max_step))
        h = dt / substeps
        t = float(grid[k])
        hold = y if bool(frozen.any()) else None
        for _ in range(substeps):
            k1 = rhs(t, y)
            k2 = rhs(t + 0.5 * h, y + 0.5 * h * k1)
            k3 = rhs(t + 0.5 * h, y + 0.5 * h * k2)
            k4 = rhs(t + h, y + h * k3)
            nfev += 4
            accepted += 1
            y = y + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
            if hold is not None:
                # Pinned rows: frozen instances hold their value (the
                # batch RHS is row-local, so their columns cannot
                # influence active siblings).
                y = xp.where(frozen[:, None], hold, y)
            t += h
        out[:, :, k + 1] = B.to_numpy(y)
        if freeze_tol is not None and grid[k + 1] < t_end:
            f = rhs(float(grid[k + 1]), y)
            nfev += 1
            frozen = frozen | freeze_converged(
                y, f, t_end - grid[k + 1], rtol, atol, freeze_tol, xp)
    return out, frozen, nfev, accepted, 0


def _error_norms(error, y_old, y_new, rtol: float, atol: float, xp=np):
    """Per-instance RMS error norm (scipy's scaling convention)."""
    scale = atol + rtol * xp.maximum(xp.abs(y_old), xp.abs(y_new))
    return xp.sqrt(xp.mean((error / scale) ** 2, axis=1))


def _rkf45_stages(rhs: BatchRhs, t: float, y: np.ndarray, h: float,
                  k1: np.ndarray):
    """One embedded RKF45 step from an already-evaluated ``k1``:
    returns (y5, y4)."""
    k2 = rhs(t + _RKF_C[0] * h, y + h * (_RKF_A[0][0] * k1))
    k3 = rhs(t + _RKF_C[1] * h,
             y + h * (_RKF_A[1][0] * k1 + _RKF_A[1][1] * k2))
    k4 = rhs(t + _RKF_C[2] * h,
             y + h * (_RKF_A[2][0] * k1 + _RKF_A[2][1] * k2
                      + _RKF_A[2][2] * k3))
    k5 = rhs(t + _RKF_C[3] * h,
             y + h * (_RKF_A[3][0] * k1 + _RKF_A[3][1] * k2
                      + _RKF_A[3][2] * k3 + _RKF_A[3][3] * k4))
    k6 = rhs(t + _RKF_C[4] * h,
             y + h * (_RKF_A[4][0] * k1 + _RKF_A[4][1] * k2
                      + _RKF_A[4][2] * k3 + _RKF_A[4][3] * k4
                      + _RKF_A[4][4] * k5))
    stages = (k1, k2, k3, k4, k5, k6)
    y5 = y + h * sum(b * s for b, s in zip(_RKF_B5, stages))
    y4 = y + h * sum(b * s for b, s in zip(_RKF_B4, stages))
    return y5, y4


def _underflow(t: float, h: float) -> SimulationError:
    return SimulationError(
        f"rkf45 step size underflow at t={t:.3e} "
        f"(h={h:.3e}); the batch may contain a stiff "
        "instance — use the serial path with an implicit "
        "method")


def _step_factor(worst: float) -> float:
    return 5.0 if worst == 0.0 else \
        min(5.0, max(0.2, 0.9 * worst ** -0.2))


def _freeze_offenders(frozen, norms, freeze_tol: float | None, xp=np):
    """Step-size underflow handling with masks enabled: the instances
    whose error refuses to drop below tolerance at the step floor (the
    out-of-tolerance outliers forcing the worst-case step on the whole
    batch) freeze at their last accepted state so their siblings can
    proceed. Returns ``(frozen, changed)`` — the updated mask and
    whether at least one new instance was frozen; ``changed=False``
    means no offender is identifiable (the caller must then raise the
    classic underflow error)."""
    if freeze_tol is None or norms is None:
        return frozen, False
    offenders = ~frozen & ~(xp.asarray(norms) <= 1.0)
    if not bool(offenders.any()):
        return frozen, False
    return frozen | offenders, True


def _rkf45_batch(rhs: BatchRhs, grid: np.ndarray, rtol: float,
                 atol: float, max_step: float,
                 freeze_tol: float | None, backend=None):
    """Grid-clipped RKF45: every step lands exactly on the next output
    point, so a fine grid forces extra (small) steps. Kept as the
    ``dense=False`` reference path."""
    B = backend if backend is not None else resolve_array_backend(None)
    xp = B.xp
    span = float(grid[-1] - grid[0])
    min_step = 1e-14 * span
    y = B.asarray(rhs.y0)
    out = np.empty((y.shape[0], y.shape[1], len(grid)),
                   dtype=B.dtype)  # ark: host-boundary
    out[:, :, 0] = B.to_numpy(y)
    frozen = xp.zeros(y.shape[0], dtype=bool)
    nfev = 0
    accepted = 0
    rejected = 0
    h = min(max_step, span / 100.0)
    t = float(grid[0])
    t_end = grid[-1]
    for k in range(1, len(grid)):
        if bool(frozen.all()):
            out[:, :, k:] = B.to_numpy(y)[:, :, None]
            break
        t_next = float(grid[k])
        last_norms = None
        while t < t_next:
            h = min(h, max_step, t_next - t)
            if h < min_step:
                frozen, changed = _freeze_offenders(
                    frozen, last_norms, freeze_tol, xp)
                if changed:
                    h = min(max_step, span / 100.0)
                    continue
                raise _underflow(t, h)
            k1 = rhs(t, y)
            y5, y4 = _rkf45_stages(rhs, t, y, h, k1)
            nfev += 6
            if bool(frozen.any()):
                # Pinned rows are excluded from error control (their
                # y5 - y4 is forced to 0) and held at their frozen
                # state.
                y5 = xp.where(frozen[:, None], y, y5)
                y4 = xp.where(frozen[:, None], y, y4)
            norms = _error_norms(y5 - y4, y, y5, rtol, atol, xp)
            last_norms = norms
            worst = float(norms.max()) if norms.size else 0.0
            if not math.isfinite(worst):
                rejected += 1
                h *= 0.2
                continue
            if worst <= 1.0:
                accepted += 1
                t += h
                y = y5
                h *= _step_factor(worst)
            else:
                rejected += 1
                h *= max(0.2, 0.9 * worst ** -0.2)
        out[:, :, k] = B.to_numpy(y)
        if freeze_tol is not None and t_next < t_end:
            f = rhs(t_next, y)
            nfev += 1
            frozen = frozen | freeze_converged(
                y, f, t_end - t_next, rtol, atol, freeze_tol, xp)
    return out, frozen, nfev, accepted, rejected


#: Collocation node of the bootstrapped quartic interpolant. theta=1/2
#: makes the Hermite-Birkhoff system singular; 1/3 is well conditioned
#: (determinant 4/27).
_DENSE_NODE = 1.0 / 3.0


def _hermite_point(theta: float, y_old: np.ndarray, y_new: np.ndarray,
                   f_old: np.ndarray, f_new: np.ndarray,
                   h: float) -> np.ndarray:
    """Cubic Hermite predictor at one normalized position (the
    bootstrap's collocation point; O(h^4) accurate)."""
    t2 = theta * theta
    t3 = t2 * theta
    return ((2.0 * t3 - 3.0 * t2 + 1.0) * y_old
            + (t3 - 2.0 * t2 + theta) * (h * f_old)
            + (-2.0 * t3 + 3.0 * t2) * y_new
            + (t3 - t2) * (h * f_new))


def _quartic_coefficients(y_old: np.ndarray, y_new: np.ndarray,
                          f_old: np.ndarray, f_mid: np.ndarray,
                          f_new: np.ndarray, h: float):
    """Coefficients (a, b, c, d) of the bootstrapped quartic
    ``y(theta) = y_old + a th + b th^2 + c th^3 + d th^4`` matching
    value+derivative at both endpoints and the derivative ``f_mid``
    collocated at ``theta = _DENSE_NODE = 1/3``:

        a           = h f_old
        b + c + d   = (y_new - y_old) - a
        2b + 3c + 4d = h f_new - a
        (2/3)b + (1/3)c + (4/27)d = h f_mid - a

    Because ``f_mid`` is evaluated on the O(h^4) cubic predictor, the
    quartic's local error is O(h^5) — the same order as the propagated
    RKF45 solution, so dense output no longer dilutes the tolerance.
    """
    a = h * f_old
    p = (y_new - y_old) - a
    q = h * f_new - a
    r = h * f_mid - a
    b = (27.0 * r - 24.0 * p + 5.0 * q) / 4.0
    c = 4.0 * p - q - 2.0 * b
    d = p - b - c
    return a, b, c, d


def _quartic_eval(theta, y_old, coefficients):
    """Evaluate the quartic at positions ``theta`` (shape (m,));
    result (m, n_instances, n_states)."""
    a, b, c, d = coefficients
    theta = theta[:, None, None]
    return y_old + theta * (a + theta * (b + theta * (c + theta * d)))


def _rkf45_dense_batch(rhs: BatchRhs, grid: np.ndarray, rtol: float,
                       atol: float, max_step: float,
                       freeze_tol: float | None, backend=None):
    """Dense-output RKF45: step control is decoupled from the output
    grid. Steps are sized by the error estimate alone (never clipped to
    grid points); every output sample inside an accepted step is filled
    by a bootstrapped quartic interpolant (endpoint values/derivatives
    plus one collocated derivative on the cubic predictor — local error
    O(h^5), the same order as the propagated solution). The endpoint
    derivative doubles as the next step's ``k1`` (first-same-as-last),
    so dense output costs at most one extra RHS evaluation per
    *output-producing* step — fine grids stop forcing small steps."""
    B = backend if backend is not None else resolve_array_backend(None)
    xp = B.xp
    t_end = float(grid[-1])
    span = t_end - float(grid[0])
    min_step = 1e-14 * span
    y = B.asarray(rhs.y0)
    out = np.empty((y.shape[0], y.shape[1], len(grid)),
                   dtype=B.dtype)  # ark: host-boundary
    out[:, :, 0] = B.to_numpy(y)
    frozen = xp.zeros(y.shape[0], dtype=bool)
    nfev = 1
    accepted = 0
    rejected = 0
    t = float(grid[0])
    h = min(max_step, span / 100.0)
    k1 = rhs(t, y)
    last_norms = None
    next_index = 1
    while next_index < len(grid):
        if bool(frozen.all()):
            out[:, :, next_index:] = B.to_numpy(y)[:, :, None]
            break
        h = min(h, max_step)
        if h < min_step:
            frozen, changed = _freeze_offenders(
                frozen, last_norms, freeze_tol, xp)
            if changed:
                h = min(max_step, span / 100.0)
                continue
            raise _underflow(t, h)
        if t + h >= t_end:
            h = t_end - t
            t_new = t_end
        else:
            t_new = t + h
        y5, y4 = _rkf45_stages(rhs, t, y, h, k1)
        nfev += 5
        if bool(frozen.any()):
            # Pinned rows: held constant and excluded from error
            # control, so a converged stiff instance stops dictating
            # the shared step size.
            y5 = xp.where(frozen[:, None], y, y5)
            y4 = xp.where(frozen[:, None], y, y4)
        norms = _error_norms(y5 - y4, y, y5, rtol, atol, xp)
        last_norms = norms
        worst = float(norms.max()) if norms.size else 0.0
        if not math.isfinite(worst):
            rejected += 1
            h *= 0.2
            continue
        if worst > 1.0:
            rejected += 1
            h *= max(0.2, 0.9 * worst ** -0.2)
            continue
        accepted += 1
        f_new = rhs(t_new, y5)
        nfev += 1
        stop = next_index
        while stop < len(grid) and grid[stop] <= t_new:
            stop += 1
        if stop > next_index:
            y_node = _hermite_point(_DENSE_NODE, y, y5, k1, f_new, h)
            f_node = rhs(t + _DENSE_NODE * h, y_node)
            nfev += 1
            coefficients = _quartic_coefficients(y, y5, k1, f_node,
                                                 f_new, h)
            theta = B.asarray((grid[next_index:stop] - t) / h)
            values = _quartic_eval(theta, y, coefficients)
            if bool(frozen.any()):
                # The interpolant would wiggle frozen rows by their
                # (tolerance-bounded) residual drift; pin them exactly.
                values = xp.where(frozen[None, :, None], y[None, :, :],
                                  values)
            out[:, :, next_index:stop] = B.to_numpy(
                xp.moveaxis(values, 0, 2))
            next_index = stop
        if freeze_tol is not None and t_new < t_end:
            frozen = frozen | freeze_converged(
                y5, f_new, t_end - t_new, rtol, atol, freeze_tol, xp)
        t = t_new
        y = y5
        k1 = f_new
        h *= _step_factor(worst)
    return out, frozen, nfev, accepted, rejected


def solve_batch(batch: BatchRhs | list[OdeSystem],
                t_span: tuple[float, float], n_points: int = 500,
                method: str = "rkf45", rtol: float = 1e-7,
                atol: float = 1e-9, t_eval=None,
                max_step: float | None = None,
                dense: bool = True,
                freeze_tol: float | None = None,
                array_backend=None) -> BatchTrajectory:
    """Integrate a structurally compatible ensemble in one pass.

    :param batch: a compiled :class:`BatchRhs` or a list of systems to
        compile (see :func:`~repro.sim.batch_codegen.compile_batch`).
    :param method: ``rkf45`` (adaptive, default) or ``rk4`` (fixed
        step).
    :param max_step: step cap; defaults to 1/64 of the span, matching
        the serial :func:`~repro.core.simulator.simulate` so brief input
        events cannot be stepped over.
    :param dense: (rkf45 only) fill the output grid by quartic dense
        output so step control is decoupled from the grid — the
        default, matching scipy's ``t_eval`` semantics (accuracy is
        governed by rtol/atol of the free-running solver).
        ``dense=False`` restores the legacy behavior of clipping every
        step to the next grid point, which on fine grids effectively
        integrates tighter than the requested tolerance at
        proportionally higher cost.
    :param freeze_tol: per-instance step masks. When set, an instance
        whose extrapolated drift over the whole remaining span stays
        below ``freeze_tol`` times the tolerance scale *freezes* — its
        row is pinned and excluded from error control, so one
        converged-but-stiff instance no longer forces the worst-case
        step on its siblings; and an instance whose error refuses to
        drop below tolerance at the rkf45 step floor freezes at its
        last accepted state instead of killing the whole batch. When
        every instance is frozen the remaining grid is filled without
        further RHS evaluations. ``None`` (default) disables masking —
        the exact legacy behavior. The returned trajectory carries the
        final ``frozen`` mask and the ``nfev`` evaluation count.
    :param array_backend: array namespace the solve runs on — a spec
        string (``"numpy"``, ``"jax"``, ``"numpy:float32"``), an
        :class:`~repro.sim.array_api.ArrayBackend`, or ``None`` for the
        numpy default. A precompiled ``batch`` carries its own backend;
        passing a *different* one here is an error (the kernels were
        emitted for the other namespace).
    """
    backend = _batch_backend(batch, array_backend)
    if not isinstance(batch, BatchRhs):
        batch = compile_batch(batch, array_backend=backend)
    grid = _output_grid(t_span, n_points, t_eval)
    t0 = float(t_span[0])
    if grid[0] < t0:
        raise SimulationError(
            f"t_eval starts at {grid[0]} before the span start {t0}")
    # y0 is the state at t_span[0]; a later-starting output grid still
    # integrates from t0 (matching scipy's t_eval semantics), the
    # pre-roll column is dropped afterwards.
    preroll = grid[0] > t0
    work_grid = np.concatenate(([t0], grid)) if preroll else grid
    max_step = _resolve_max_step(max_step,
                                 work_grid[-1] - work_grid[0])
    if freeze_tol is not None and freeze_tol <= 0.0:
        raise SimulationError(
            f"freeze_tol must be > 0 (or None), got {freeze_tol}")
    name = method.lower()
    if name == "rk4":
        y_out, frozen, nfev, accepted, rejected = _rk4_batch(
            batch, work_grid, max_step, rtol, atol, freeze_tol,
            backend)
    elif name in ("rkf45", "rk45"):
        solver = _rkf45_dense_batch if dense else _rkf45_batch
        y_out, frozen, nfev, accepted, rejected = solver(
            batch, work_grid, rtol, atol, max_step, freeze_tol,
            backend)
    else:
        raise SimulationError(
            f"unknown batch method {method!r}; expected 'rkf45' or "
            "'rk4' (scipy methods run through the serial path)")
    frozen = backend.to_numpy(frozen)
    if telemetry.enabled():
        telemetry.add("solver.solves")
        telemetry.add(f"solver.array_backend.{backend.name}")
        telemetry.add("solver.nfev", nfev)
        telemetry.add("solver.steps_accepted", accepted)
        telemetry.add("solver.steps_rejected", rejected)
        if freeze_tol is not None:
            telemetry.add("solver.frozen_rows", int(frozen.sum()))
    if preroll:
        y_out = y_out[:, :, 1:]
    if not np.all(np.isfinite(y_out)):
        raise SimulationError(
            f"batched {name} produced non-finite states for "
            f"{batch.systems[0].graph.name}")
    return BatchTrajectory(t=grid, y=y_out, systems=batch.systems,
                           frozen=frozen if freeze_tol is not None
                           else None, nfev=nfev)
