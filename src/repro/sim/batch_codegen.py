"""Batched RHS code generation for Monte-Carlo ensembles.

The serial codegen backend (:meth:`repro.core.odesystem.OdeSystem.
rhs_codegen`) inlines every attribute value as a constant, so N mismatch
seeds need N compiled functions and N solver runs. This module extends
that scheme to a whole *batch* of structurally identical systems: one
flat function evaluates an ``(n_instances, n_states)`` state matrix in a
single NumPy pass, with per-instance attribute values stacked as
``(n_instances,)`` constant arrays.

Lowering rules (vs. the serial codegen):

* ``var(x)``        -> ``y[:, i]`` (a column of the batch state matrix);
* attributes whose value is *shared* by every instance are inlined as
  constants and participate in simplification (zero-weight terms still
  fold away); per-instance numeric attributes become ``(n_instances,)``
  arrays in the namespace;
* builtin math functions are swapped for their NumPy ufuncs; unknown
  functions are probed and wrapped elementwise only if they reject
  arrays;
* ``if/and/or/not`` lower to ``numpy.where``/``logical_*`` because the
  Python forms are ambiguous on arrays.

Broadcasting keeps scalars (e.g. an all-constant source term) valid
wherever an ``(n_instances,)`` array is expected, so a batch of size one
compiles to the same code — :class:`~repro.core.simulator.Trajectory`
reuses it with *time* as the batch axis to vectorize algebraic-node
readout.

Kernels are emitted against an injected array namespace (see
:mod:`repro.sim.array_api`): ``_np`` in the emitted source is the
backend's ``xp`` handle, attribute/coefficient arrays are built on the
host and converted through the backend's dtype policy before ``exec``,
and compiled code objects are cached per backend. Backends whose arrays
are immutable (``mutable_kernels=False``, e.g. jax) receive a
*functional* emission — stacked column expressions and
``_col_add``/``_col_set`` helpers instead of in-place ``dy[:, i] =``
stores — and their host-callable-free kernels are offered to the
backend's ``jit`` hook. The default numpy backend emits the exact
byte-identical source this module always emitted.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro import telemetry
from repro.core import expr as E
from repro.core.odesystem import ChainRhs, OdeSystem, optimize_terms
from repro.core.types import Reduction
from repro.errors import CompileError, SimulationError
from repro.sim.array_api import resolve_array_backend

#: NumPy counterparts of the scalar builtins in
#: :data:`repro.core.expr.BUILTIN_FUNCTIONS`. Only used when the
#: registered function *is* the builtin — a language that shadows a name
#: keeps its own (auto-wrapped) implementation.
VECTOR_FUNCTIONS: dict[str, object] = {
    "sin": np.sin, "cos": np.cos, "tan": np.tan, "exp": np.exp,
    "ln": np.log, "log": np.log, "sqrt": np.sqrt, "abs": np.abs,
    "tanh": np.tanh, "sgn": np.sign, "min": np.minimum,
    "max": np.maximum, "pow": np.power,
}


class _AutoVector:
    """Wrap a scalar function so it also accepts arrays.

    The wrapped function is first called directly — many pure-math
    helpers (e.g. the CNN ``sat``) already broadcast. Functions that
    reject arrays (piecewise definitions raising the ambiguous-truth
    ``ValueError``, ``math``-module calls raising ``TypeError``) are
    transparently rerouted through :func:`numpy.vectorize`.
    """

    def __init__(self, fn):
        self._fn = fn
        self._vectorized = None

    def __call__(self, *args):
        if self._vectorized is None:
            if not any(isinstance(a, np.ndarray) and a.ndim for a in args):
                return self._fn(*args)
            try:
                return self._fn(*args)
            except (TypeError, ValueError):
                self._vectorized = np.vectorize(self._fn, otypes=[float])
        return self._vectorized(*args)


class _PerInstanceFn:
    """A callable attribute whose value differs across the batch: invoke
    each instance's callable with that instance's row of any array
    argument (scalars, e.g. the shared time, pass through)."""

    def __init__(self, fns):
        self._fns = tuple(fns)

    def __call__(self, *args):
        out = np.empty(len(self._fns))
        for index, fn in enumerate(self._fns):
            row = [arg[index] if isinstance(arg, np.ndarray) and arg.ndim
                   else arg for arg in args]
            out[index] = fn(*row)
        return out


def _is_number(value) -> bool:
    return isinstance(value, (int, float, np.floating, np.integer)) \
        and not isinstance(value, bool)


def _shared_lookup(systems: list[OdeSystem]):
    """Attribute lookup resolving only values numerically identical in
    every instance — those are safe to inline and simplify against."""

    def lookup(kind, owner, attr):
        key = (kind, owner, attr)
        first = systems[0].attr_values.get(key)
        if not _is_number(first):
            return None
        for system in systems[1:]:
            value = system.attr_values.get(key)
            if not _is_number(value) or float(value) != float(first):
                return None
        return first

    return lookup


class _BatchCodegen(E.CodegenContext):
    """Codegen context for the batched backend: states to ``y[:, i]``,
    shared attributes inlined, per-instance attributes to namespace
    arrays, control flow to elementwise NumPy."""

    def __init__(self, systems: list[OdeSystem],
                 namespace: dict[str, object],
                 vector_functions: dict[str, object] | None = None):
        self._systems = systems
        self._namespace = namespace
        self._vector_functions = VECTOR_FUNCTIONS \
            if vector_functions is None else vector_functions
        self._alg_names: dict[str, str] = {}
        self._attr_slots: dict[tuple, str] = {}

    def register_algebraic(self, node: str) -> str:
        local = f"_alg_{len(self._alg_names)}"
        self._alg_names[node] = local
        return local

    def var_source(self, node: str) -> str:
        index = self._systems[0].state_index.get((node, 0))
        if index is not None:
            return f"y[:, {index}]"
        if node in self._alg_names:
            return self._alg_names[node]
        raise CompileError(f"batch codegen: var({node}) is neither a "
                           "state nor an algebraic node")

    def attr_source(self, kind: str, owner: str, attr: str) -> str:
        key = (kind, owner, attr)
        if key in self._attr_slots:
            return self._attr_slots[key]
        try:
            values = [system.attr_values[key]
                      for system in self._systems]
        except KeyError:
            raise CompileError(
                f"batch codegen: unresolved attribute {owner}.{attr}"
            ) from None
        first = values[0]
        if all(_is_number(v) for v in values):
            if all(float(v) == float(first) for v in values):
                return repr(float(first))
            name = f"_attr_{len(self._attr_slots)}"
            self._namespace[name] = np.array([float(v) for v in values])
        elif all(callable(v) for v in values):
            name = f"_attr_{len(self._attr_slots)}"
            vector_key = getattr(first, "_ark_vector_key", None)
            if all(v is first for v in values) or (
                    vector_key is not None
                    and all(getattr(v, "_ark_vector_key", None)
                            == vector_key for v in values)):
                # Identical objects, or callables tagged as
                # interchangeable (equal `_ark_vector_key`): one shared
                # callable serves the whole batch.
                self._namespace[name] = _AutoVector(first)
            else:
                self._namespace[name] = _PerInstanceFn(values)
        else:
            raise CompileError(
                f"batch codegen: attribute {owner}.{attr} mixes value "
                "kinds across the batch")
        self._attr_slots[key] = name
        return name

    def function_source(self, name: str) -> str:
        alias = f"_fn_{name}"
        if alias not in self._namespace:
            try:
                fn = self._systems[0].functions[name]
            except KeyError:
                raise CompileError(
                    f"batch codegen: unknown function {name}") from None
            vector = self._vector_functions.get(name)
            if vector is not None and fn is E.BUILTIN_FUNCTIONS.get(name):
                self._namespace[alias] = vector
            else:
                self._namespace[alias] = _AutoVector(fn)
        return alias

    def ifexp_source(self, cond: str, then: str, orelse: str) -> str:
        return f"_np.where({cond}, {then}, {orelse})"

    def boolop_source(self, op: str, left: str, right: str) -> str:
        fn = "logical_and" if op == "and" else "logical_or"
        return f"_np.{fn}({left}, {right})"

    def not_source(self, operand: str) -> str:
        return f"_np.logical_not({operand})"


class _NotConst(Exception):
    """Raised when an expression is not a compile-time per-instance
    constant (it reads states, time, names, or non-numeric attributes)."""


class _AttrEval(E.EvalContext):
    """Evaluate a state/time-independent expression against one
    instance's numeric attribute values; anything else aborts the
    attempt (the term stays on the per-line emission path)."""

    def __init__(self, system: OdeSystem):
        self._system = system

    def attr(self, kind, owner, attr):
        value = self._system.attr_values.get((kind, owner, attr))
        if not _is_number(value):
            raise _NotConst()
        return float(value)

    def time(self):
        raise _NotConst()

    def var(self, node):
        raise _NotConst()

    def name(self, name):
        raise _NotConst()

    def function(self, name):
        raise _NotConst()


def _const_values(expr: E.Expr, systems: list[OdeSystem]):
    """Evaluate a per-instance compile-time constant: a scalar when the
    value is shared, else an ``(n_instances,)`` array. Raises
    :class:`_NotConst` when the expression is not constant (or its
    evaluation fails — such terms keep their runtime semantics)."""
    out = np.empty(len(systems))
    for row, system in enumerate(systems):
        try:
            out[row] = expr.evaluate(_AttrEval(system))
        except _NotConst:
            raise
        except Exception:
            raise _NotConst() from None
    if not np.all(np.isfinite(out)):
        raise _NotConst()
    if np.all(out == out[0]):
        return float(out[0])
    return out


#: Affine-decomposition piece tags (see :func:`_term_pieces`).
_LIN, _CONST, _RES = 0, 1, 2


def _scale_pieces(pieces: list, factor):
    """Multiply every decomposition piece by a constant factor (a float
    or an ``(n_instances,)`` array)."""
    scaled = []
    for piece in pieces:
        if piece[0] == _LIN:
            scaled.append((_LIN, piece[1], piece[2] * factor))
        elif piece[0] == _CONST:
            scaled.append((_CONST, piece[1] * factor))
        else:
            scale = factor if piece[2] is None else piece[2] * factor
            scaled.append((_RES, piece[1], scale))
    return scaled


def _term_pieces(expr: E.Expr, systems: list[OdeSystem],
                 state_index: dict) -> list:
    """Decompose one SUM-reduction term into affine pieces.

    Returns a list of:

    * ``(_LIN, state, coeff)`` — ``coeff * y[:, state]`` with a
      compile-time per-instance coefficient;
    * ``(_CONST, value)`` — a state/time-independent constant
      contribution;
    * ``(_RES, expr, scale)`` — a residual subexpression that must stay
      on the per-line emission path, optionally pre-multiplied by a
      constant ``scale`` hoisted from an enclosing product.

    Sums are recursed into and products/quotients distribute constant
    factors over the decomposition, so e.g. ``(g/C) * (in(t) - var(x))``
    yields one fused linear piece and one residual source term.
    """
    if isinstance(expr, E.VarOf):
        index = state_index.get((expr.node, 0))
        if index is not None:
            return [(_LIN, index, 1.0)]
        return [(_RES, expr, None)]
    if isinstance(expr, E.UnOp):
        return _scale_pieces(
            _term_pieces(expr.operand, systems, state_index), -1.0)
    if isinstance(expr, E.BinOp):
        if expr.op == "+":
            return (_term_pieces(expr.left, systems, state_index)
                    + _term_pieces(expr.right, systems, state_index))
        if expr.op == "-":
            return (_term_pieces(expr.left, systems, state_index)
                    + _scale_pieces(
                        _term_pieces(expr.right, systems, state_index),
                        -1.0))
        if expr.op == "*":
            for const_side, other in ((expr.left, expr.right),
                                      (expr.right, expr.left)):
                try:
                    factor = _const_values(const_side, systems)
                except _NotConst:
                    continue
                return _scale_pieces(
                    _term_pieces(other, systems, state_index), factor)
        if expr.op == "/":
            try:
                factor = _const_values(expr.right, systems)
                reciprocal = 1.0 / factor
                if not np.all(np.isfinite(np.atleast_1d(reciprocal))):
                    raise _NotConst()
            except (_NotConst, ZeroDivisionError):
                pass
            else:
                return _scale_pieces(
                    _term_pieces(expr.left, systems, state_index),
                    reciprocal)
    try:
        return [(_CONST, _const_values(expr, systems))]
    except _NotConst:
        return [(_RES, expr, None)]


#: Largest dense ``(n_instances, n_states, n_states)`` coefficient
#: tensor the fused emitter will allocate (in doubles). Bigger systems
#: (e.g. 64x64 CNN grids) keep the per-line emission, whose cost scales
#: with the term count instead of n_states**2.
FUSE_DENSE_LIMIT = 1 << 22


def surviving_diffusion(systems: list[OdeSystem]):
    """The lead system's diffusion terms that survive shared-value
    simplification, paired with their optimized amplitude expressions.

    An amplitude that folds to the constant 0 for every instance (e.g.
    a noise annotation with the shared sigma attribute set to 0) drops
    out of the emitted diffusion function entirely — zero-noise batches
    compile to plain deterministic systems."""
    lookup = _shared_lookup(systems)
    survivors = []
    for term in systems[0].diffusion:
        optimized = optimize_terms((term.amplitude,), Reduction.SUM,
                                   lookup)
        if optimized:
            survivors.append((term, optimized[0]))
    return survivors


def _fused_rhs_lines(systems: list[OdeSystem], namespace: dict,
                     codegen: "_BatchCodegen", lookup,
                     mutable: bool = True) -> list[str] | None:
    """Body of the fused ``_rhs``: every affine contribution of every
    SUM-reduction (and chain) line stacked into one per-instance
    coefficient tensor driven by a single batched matmul, with only the
    non-fusible residue emitted per line.

    Returns ``None`` when fusion is not worthwhile — fewer than two
    per-line statements would be eliminated, or the dense tensor would
    exceed :data:`FUSE_DENSE_LIMIT` — in which case the caller keeps the
    classic per-line emission.

    ``mutable=False`` switches the emission to the functional form
    immutable-array backends require: the matmul result binds a local
    ``dy`` and residual/product rows update it through the namespace's
    ``_col_add``/``_col_set`` helpers instead of in-place stores.
    """
    lead = systems[0]
    n, s = len(systems), len(lead.rhs_specs)
    if n * s * s > FUSE_DENSE_LIMIT:
        return None
    matrix = np.zeros((n, s, s))
    constant = np.zeros((n, s))
    use_constant = False
    residual_rows: list[tuple[int, list]] = []
    product_rows: list[tuple[int, list]] = []
    eliminated = 0
    for index, spec in enumerate(lead.rhs_specs):
        if isinstance(spec, ChainRhs):
            matrix[:, index, spec.next_index] = 1.0
            eliminated += 1
            continue
        terms = optimize_terms(spec.terms, spec.reduction, lookup)
        if spec.reduction is not Reduction.SUM:
            product_rows.append((index, terms))
            continue
        residuals: list = []
        for term in terms:
            for piece in _term_pieces(term, systems, lead.state_index):
                if piece[0] == _LIN:
                    matrix[:, index, piece[1]] += piece[2]
                elif piece[0] == _CONST:
                    constant[:, index] += piece[1]
                    use_constant = True
                else:
                    residuals.append(piece)
        if residuals:
            residual_rows.append((index, residuals))
        else:
            eliminated += 1
    if eliminated < 2:
        return None
    namespace["_lin_A"] = matrix
    fused = "(_lin_A @ y[:, :, None])[:, :, 0]"
    if use_constant:
        namespace["_lin_c"] = constant
        fused += " + _lin_c"
    lines = [f"    dy[:, :] = {fused}" if mutable else f"    dy = {fused}"]
    scale_slots = 0
    for index, residuals in residual_rows:
        fragments = []
        for _tag, expr, scale in residuals:
            source = E.to_python(expr, codegen)
            if isinstance(scale, np.ndarray):
                name = f"_res_scale_{scale_slots}"
                scale_slots += 1
                namespace[name] = scale
                source = f"{name} * {source}"
            elif scale is not None:
                source = f"{repr(float(scale))} * {source}"
            fragments.append(source)
        joined = " + ".join(fragments)
        if mutable:
            lines.append(f"    dy[:, {index}] += {joined}")
        else:
            lines.append(f"    dy = _col_add(dy, {index}, {joined})")
    for index, terms in product_rows:
        body = " * ".join(E.to_python(term, codegen)
                          for term in terms) or \
            repr(Reduction.MUL.identity)
        if mutable:
            lines.append(f"    dy[:, {index}] = {body}")
        else:
            lines.append(f"    dy = _col_set(dy, {index}, {body})")
    return lines


#: Kernel cache: compiled code objects keyed by their emitted source.
#: Re-batching the same structural group (reference solves, cache-miss
#: reruns, and above all the persistent pool workers, which rebuild a
#: BatchRhs per shard task) re-emits a byte-identical source; caching
#: the ``compile()`` step means each batched RHS source is compiled at
#: most once per process. Only the code object is shared — ``exec``
#: still runs per batch, because the namespace carries the per-instance
#: attribute arrays.
_CODE_CACHE: "OrderedDict[tuple, object]" = OrderedDict()
_CODE_CACHE_MAX = 128


def _compile_source(source: str, filename: str, backend_name: str = "numpy"):
    # The backend name keys the cache alongside the source: two backends
    # can emit byte-identical functional sources whose compiled kernels
    # must still stay distinct entries (they close over different
    # namespaces, and per-backend hit/miss telemetry stays meaningful).
    key = (source, filename, backend_name)
    code = _CODE_CACHE.get(key)
    if code is None:
        telemetry.add("codegen.kernel_cache_misses")
        code = compile(source, filename, "exec")
        _CODE_CACHE[key] = code
        while len(_CODE_CACHE) > _CODE_CACHE_MAX:
            _CODE_CACHE.popitem(last=False)
    else:
        telemetry.add("codegen.kernel_cache_hits")
        _CODE_CACHE.move_to_end(key)
    return code


def generate_batch_source(systems: list[OdeSystem],
                          namespace: dict[str, object],
                          survivors=None, fuse: bool = True,
                          mutable: bool = True,
                          vector_functions=None) -> str:
    """Emit the source of the batched RHS (``_rhs``), the batched
    algebraic-readout function (``_alg``), and — for stochastic systems
    — the batched diffusion-amplitude function (``_dif``) for a
    structurally compatible batch. All take ``y`` of shape
    ``(n_instances, n_states)``; ``_dif`` fills ``out`` of shape
    ``(n_instances, n_diffusion_terms)``.

    With ``fuse`` (the default) the SUM-reduction and chain lines whose
    terms are affine in the states — with compile-time per-instance
    coefficients — collapse into one batched matmul against a stacked
    ``(n_instances, n_states, n_states)`` coefficient tensor, cutting
    the per-step NumPy dispatch from one-per-term to one-per-residual;
    non-fusible terms (nonlinear, time-dependent, callable-attribute)
    keep the per-line emission. ``fuse=False`` restores the pure
    per-line emitter.

    ``survivors`` is a precomputed :func:`surviving_diffusion` result;
    pass it when the caller also needs the diffusion layout (as
    :class:`BatchRhs` does) so the shared-value pass runs once.

    ``mutable=False`` emits the functional variant immutable-array
    backends (jax) require: ``_rhs(t, y)`` / ``_dif(t, y)`` *return*
    freshly built matrices — per-line columns broadcast through the
    namespace's ``_col`` helper and stacked, fused-path updates through
    ``_col_add``/``_col_set`` — instead of filling ``dy``/``out``
    buffers in place. ``vector_functions`` overrides the namespace's
    ufunc map (defaults to the numpy :data:`VECTOR_FUNCTIONS`)."""
    lead = systems[0]
    codegen = _BatchCodegen(systems, namespace, vector_functions)
    lookup = _shared_lookup(systems)

    algebraic_lines: list[str] = []
    for spec in lead.algebraic:
        local = codegen.register_algebraic(spec.name)
        joiner = " + " if spec.reduction is Reduction.SUM else " * "
        terms = optimize_terms(spec.terms, spec.reduction, lookup)
        body = joiner.join(E.to_python(term, codegen)
                           for term in terms) or \
            repr(spec.reduction.identity)
        algebraic_lines.append(f"    {local} = {body}")

    fused_lines = _fused_rhs_lines(systems, namespace, codegen, lookup,
                                   mutable=mutable) if fuse else None
    lines = ["def _rhs(t, y, dy):" if mutable else "def _rhs(t, y):"]
    lines.extend(algebraic_lines)
    if fused_lines is not None:
        lines.extend(fused_lines)
    else:
        columns: list[str] = []
        for index, spec in enumerate(lead.rhs_specs):
            if isinstance(spec, ChainRhs):
                body = f"y[:, {spec.next_index}]"
            else:
                joiner = " + " if spec.reduction is Reduction.SUM \
                    else " * "
                terms = optimize_terms(spec.terms, spec.reduction,
                                       lookup)
                body = joiner.join(E.to_python(term, codegen)
                                   for term in terms) or \
                    repr(spec.reduction.identity)
            if mutable:
                lines.append(f"    dy[:, {index}] = {body}")
            else:
                lines.append(f"    _c{index} = _col({body}, y)")
                columns.append(f"_c{index}")
        if not mutable:
            lines.append(
                f"    dy = _np.stack([{', '.join(columns)}], axis=1)")
    lines.append("    return dy")

    lines.append("")
    lines.append("def _alg(t, y):")
    lines.extend(algebraic_lines)
    mapping = ", ".join(
        f"{spec.name!r}: {codegen._alg_names[spec.name]}"
        for spec in lead.algebraic)
    lines.append("    return {%s}" % mapping)

    if survivors is None:
        survivors = surviving_diffusion(systems)
    if survivors:
        lines.append("")
        lines.append("def _dif(t, y, out):" if mutable
                     else "def _dif(t, y):")
        lines.extend(algebraic_lines)
        columns = []
        for column, (_term, amplitude) in enumerate(survivors):
            body = E.to_python(amplitude, codegen)
            if mutable:
                lines.append(f"    out[:, {column}] = {body}")
            else:
                lines.append(f"    _d{column} = _col({body}, y)")
                columns.append(f"_d{column}")
        if mutable:
            lines.append("    return out")
        else:
            lines.append(
                f"    return _np.stack([{', '.join(columns)}], axis=1)")
    return "\n".join(lines)


class BatchRhs:
    """A compiled batched right-hand side: one function, N instances.

    Use :func:`compile_batch` to construct one; it raises
    :class:`~repro.errors.SimulationError` when the systems are not
    structurally compatible (see
    :meth:`~repro.core.odesystem.OdeSystem.structural_signature`).
    """

    def __init__(self, systems: list[OdeSystem], fuse: bool = True,
                 array_backend=None):
        if not systems:
            raise SimulationError("cannot batch an empty system list")
        signature = systems[0].structural_signature()
        for system in systems[1:]:
            if system.structural_signature() != signature:
                raise SimulationError(
                    f"systems {systems[0].graph.name} and "
                    f"{system.graph.name} are not structurally "
                    "compatible; use the serial path or group by "
                    "structural_signature()")
        self.systems = list(systems)
        #: The array backend the kernels are emitted against (see
        #: :mod:`repro.sim.array_api`); solvers run on its arrays.
        self.backend = resolve_array_backend(array_backend)
        backend = self.backend
        self._mutable = backend.mutable_kernels
        namespace: dict[str, object] = {"_np": backend.xp}
        if not self._mutable:
            namespace["_col"] = backend.column
            namespace["_col_add"] = backend.column_add
            namespace["_col_set"] = backend.column_set
        survivors = surviving_diffusion(self.systems)
        self.source = generate_batch_source(
            self.systems, namespace, survivors=survivors, fuse=fuse,
            mutable=self._mutable,
            vector_functions=backend.vector_functions())
        #: True when the emitted RHS drives a fused coefficient matmul.
        self.fused = "_lin_A" in namespace
        telemetry.add("codegen.batch_compiles")
        telemetry.add(f"codegen.backend.{backend.name}")
        telemetry.add("codegen.fused_rhs" if self.fused
                      else "codegen.unfused_rhs")
        # Residual ``dy[:, i] +=`` stores are what the fuser could not
        # fold into the matmul — their count is the per-step dispatch
        # cost the fused path still pays. (The functional emission's
        # counterparts are its `_col*` helper calls and column temps.)
        if self._mutable:
            telemetry.add("codegen.residual_lines",
                          self.source.count("dy[:, ") - 1
                          if self.fused else self.source.count("dy[:, "))
        else:
            telemetry.add("codegen.residual_lines",
                          self.source.count(" = _col(")
                          + self.source.count("_col_add(")
                          + self.source.count("_col_set("))
        # Host-built constant tensors (per-instance attributes, fused
        # coefficients, residual scales) cross onto the backend at the
        # policy dtype here; on numpy/float64 the conversion is the
        # identity, so the namespace — like the source — is exactly the
        # pre-abstraction one.
        for slot, value in list(namespace.items()):
            if isinstance(value, np.ndarray):
                namespace[slot] = backend.asarray(value)
        exec(_compile_source(self.source,
                             f"<ark-batch:{systems[0].graph.name}>",
                             backend.name),
             namespace)
        self._rhs_inner = namespace["_rhs"]
        self._alg_inner = namespace["_alg"]
        self._dif_inner = namespace.get("_dif")
        #: Kernels carrying host callables (auto-vectorized scalar
        #: functions, per-instance callables) cannot enter a compiler
        #: trace; everything else is offered to the backend's ``jit``
        #: hook (identity on eager backends).
        self.can_jit = not any(
            isinstance(value, (_AutoVector, _PerInstanceFn))
            for value in namespace.values())
        if self.can_jit:
            self._rhs_inner = backend.jit(self._rhs_inner)
            if self._dif_inner is not None:
                self._dif_inner = backend.jit(self._dif_inner)
        #: Diffusion terms that survived shared-value folding (see
        #: :func:`surviving_diffusion`); column order of ``diffusion``.
        self.diffusion_terms = [term for term, _amp in survivors]
        # Survivor amplitudes kept for the lazily compiled Milstein
        # derivative kernel (most solves never ask for it).
        self._survivor_amplitudes = [amp for _term, amp in survivors]
        self._dif_prime_inner = None
        self._dif_prime_done = False
        self._milstein_trivial = True
        #: Distinct Wiener-process identities, first-appearance order.
        self.wiener_paths: list[tuple[str, str]] = []
        path_index: dict[tuple[str, str], int] = {}
        for term in self.diffusion_terms:
            key = term.stream_key()
            if key not in path_index:
                path_index[key] = len(self.wiener_paths)
                self.wiener_paths.append(key)
        #: Per diffusion column: index of its Wiener path / target state.
        self.term_path_index = np.array(
            [path_index[term.stream_key()]
             for term in self.diffusion_terms], dtype=int)
        self.term_state_index = np.array(
            [term.state_index for term in self.diffusion_terms],
            dtype=int)

    @property
    def n_instances(self) -> int:
        return len(self.systems)

    @property
    def n_states(self) -> int:
        return self.systems[0].n_states

    @property
    def has_noise(self) -> bool:
        """True when the compiled batch carries live diffusion terms."""
        return self._dif_inner is not None

    def diffusion(self, t: float, y: np.ndarray,
                  out: np.ndarray | None = None) -> np.ndarray:
        """Evaluate every diffusion amplitude for the whole batch:
        result shape ``(n_instances, len(diffusion_terms))``."""
        if self._dif_inner is None:
            raise SimulationError(
                f"batch {self.systems[0].graph.name} has no diffusion "
                "terms; integrate it with a deterministic solver")
        if self._mutable:
            if out is None:
                out = self.backend.xp.empty(
                    (y.shape[0], len(self.diffusion_terms)),
                    dtype=self.backend.dtype)
            return self._dif_inner(t, y, out)
        amplitudes = self._dif_inner(t, y)
        if out is not None:
            out[...] = amplitudes
            return out
        return amplitudes

    def _ensure_dif_prime(self):
        """Lazily differentiate and compile the diagonal diffusion
        derivative ``∂b_k/∂y_{target(k)}`` (one column per surviving
        term). A separate source/namespace from the main kernels, so
        the bytes of every pre-existing emission stay untouched; only
        the Milstein method pays the extra compile."""
        if self._dif_prime_done:
            return
        self._dif_prime_done = True
        lead = self.systems[0]
        lookup = _shared_lookup(self.systems)
        node_of_index = {index: name
                         for (name, deriv), index in
                         lead.state_index.items() if deriv == 0}
        derivatives: list = []
        for term, amplitude in zip(self.diffusion_terms,
                                   self._survivor_amplitudes):
            for name in E.referenced_vars(amplitude):
                if (name, 0) not in lead.state_index:
                    raise CompileError(
                        f"milstein: diffusion amplitude {amplitude} "
                        f"reads algebraic node {name}; its state "
                        "dependence is not differentiable at compile "
                        "time — use an em/heun SDE method")
            target = node_of_index.get(term.state_index)
            derivative = (E.differentiate(amplitude, target)
                          if target is not None else E.Const(0.0))
            optimized = optimize_terms((derivative,), Reduction.SUM,
                                       lookup)
            derivatives.append(optimized[0] if optimized else None)
        if all(derivative is None for derivative in derivatives):
            # Additive noise everywhere: the correction is identically
            # zero and ``milstein`` degenerates to ``em`` exactly.
            return
        self._milstein_trivial = False
        backend = self.backend
        namespace: dict[str, object] = {"_np": backend.xp}
        if not self._mutable:
            namespace["_col"] = backend.column
        codegen = _BatchCodegen(self.systems, namespace,
                                backend.vector_functions())
        lines = ["def _dif_prime(t, y, out):" if self._mutable
                 else "def _dif_prime(t, y):"]
        columns = []
        for column, derivative in enumerate(derivatives):
            body = ("0.0" if derivative is None
                    else E.to_python(derivative, codegen))
            if self._mutable:
                lines.append(f"    out[:, {column}] = {body}")
            else:
                lines.append(f"    _p{column} = _col({body}, y)")
                columns.append(f"_p{column}")
        if self._mutable:
            lines.append("    return out")
        else:
            lines.append(
                f"    return _np.stack([{', '.join(columns)}], axis=1)")
        source = "\n".join(lines)
        telemetry.add("codegen.dif_prime_compiles")
        for slot, value in list(namespace.items()):
            if isinstance(value, np.ndarray):
                namespace[slot] = backend.asarray(value)
        exec(_compile_source(
            source, f"<ark-batch-dprime:{lead.graph.name}>",
            backend.name), namespace)
        inner = namespace["_dif_prime"]
        if not any(isinstance(value, (_AutoVector, _PerInstanceFn))
                   for value in namespace.values()):
            inner = backend.jit(inner)
        self._dif_prime_inner = inner

    @property
    def milstein_trivial(self) -> bool:
        """True when every surviving diffusion amplitude is
        state-independent (additive noise): the Milstein correction is
        identically zero and ``milstein`` reproduces ``em`` bit for
        bit. Raises :class:`~repro.errors.CompileError` when an
        amplitude is state-dependent in a non-differentiable way."""
        self._ensure_dif_prime()
        return self._milstein_trivial

    def diffusion_derivative(self, t: float, y: np.ndarray,
                             out: np.ndarray | None = None
                             ) -> np.ndarray:
        """Evaluate ``∂b_k/∂y_{target(k)}`` for every surviving
        diffusion term: shape ``(n_instances, len(diffusion_terms))``.
        Zero columns (additive terms) are emitted as constants; a batch
        whose correction is identically zero (see
        :attr:`milstein_trivial`) returns zeros without compiling a
        kernel."""
        if self._dif_inner is None:
            raise SimulationError(
                f"batch {self.systems[0].graph.name} has no diffusion "
                "terms; there is nothing to differentiate")
        self._ensure_dif_prime()
        if self._dif_prime_inner is None:
            zeros = self.backend.xp.zeros(
                (y.shape[0], len(self.diffusion_terms)),
                dtype=self.backend.dtype)
            return zeros
        if self._mutable:
            if out is None:
                out = self.backend.xp.empty(
                    (y.shape[0], len(self.diffusion_terms)),
                    dtype=self.backend.dtype)
            return self._dif_prime_inner(t, y, out)
        derivative = self._dif_prime_inner(t, y)
        if out is not None:
            out[...] = derivative
            return out
        return derivative

    @property
    def y0(self) -> np.ndarray:
        """Stacked initial states, shape (n_instances, n_states), as a
        backend array at the policy dtype."""
        return self.backend.asarray(
            np.stack([system.y0 for system in self.systems]))

    def __call__(self, t: float, y: np.ndarray,
                 out: np.ndarray | None = None) -> np.ndarray:
        """Evaluate the batched RHS; ``y`` and the result have shape
        ``(n_instances, n_states)``."""
        if self._mutable:
            if out is None:
                out = self.backend.empty_like(y)
            return self._rhs_inner(t, y, out)
        dy = self._rhs_inner(t, y)
        if out is not None:
            out[...] = dy
            return out
        return dy

    def algebraic_values(self, t, y: np.ndarray) -> dict[str, np.ndarray]:
        """Order-0 node values for the whole batch, each broadcast to
        ``(n_instances,)`` (or to ``len(y)`` when another axis — e.g.
        time — plays the batch role). Always host numpy float64 —
        algebraic readout is an assembly boundary."""
        values = self._alg_inner(t, y)
        n = y.shape[0]
        return {name: np.broadcast_to(
                    np.asarray(self.backend.to_numpy(value), dtype=float),
                    (n,)).copy()
                for name, value in values.items()}

    def __repr__(self) -> str:
        return (f"<BatchRhs {self.systems[0].graph.name} "
                f"instances={self.n_instances} states={self.n_states}>")


def compile_batch(systems: list[OdeSystem], fuse: bool = True,
                  array_backend=None) -> BatchRhs:
    """Compile a structurally compatible batch of systems into one
    vectorized RHS. ``fuse`` enables the fused affine emitter (see
    :func:`generate_batch_source`); ``array_backend`` selects the array
    namespace the kernels are emitted against — a spec string
    (``"numpy"``, ``"jax"``, ``"numpy:float32"``), an
    :class:`~repro.sim.array_api.ArrayBackend`, or ``None`` for the
    numpy default."""
    return BatchRhs(list(systems), fuse=fuse, array_backend=array_backend)


def group_by_signature(systems: list[OdeSystem]) -> list[list[int]]:
    """Partition system indices into structurally compatible groups,
    preserving first-seen order."""
    groups: dict[tuple, list[int]] = {}
    for index, system in enumerate(systems):
        groups.setdefault(system.structural_signature(), []).append(index)
    return list(groups.values())
