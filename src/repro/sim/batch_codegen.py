"""Batched RHS code generation for Monte-Carlo ensembles.

The serial codegen backend (:meth:`repro.core.odesystem.OdeSystem.
rhs_codegen`) inlines every attribute value as a constant, so N mismatch
seeds need N compiled functions and N solver runs. This module extends
that scheme to a whole *batch* of structurally identical systems: one
flat function evaluates an ``(n_instances, n_states)`` state matrix in a
single NumPy pass, with per-instance attribute values stacked as
``(n_instances,)`` constant arrays.

Lowering rules (vs. the serial codegen):

* ``var(x)``        -> ``y[:, i]`` (a column of the batch state matrix);
* attributes whose value is *shared* by every instance are inlined as
  constants and participate in simplification (zero-weight terms still
  fold away); per-instance numeric attributes become ``(n_instances,)``
  arrays in the namespace;
* builtin math functions are swapped for their NumPy ufuncs; unknown
  functions are probed and wrapped elementwise only if they reject
  arrays;
* ``if/and/or/not`` lower to ``numpy.where``/``logical_*`` because the
  Python forms are ambiguous on arrays.

Broadcasting keeps scalars (e.g. an all-constant source term) valid
wherever an ``(n_instances,)`` array is expected, so a batch of size one
compiles to the same code — :class:`~repro.core.simulator.Trajectory`
reuses it with *time* as the batch axis to vectorize algebraic-node
readout.
"""

from __future__ import annotations

import numpy as np

from repro.core import expr as E
from repro.core.odesystem import ChainRhs, OdeSystem, optimize_terms
from repro.core.types import Reduction
from repro.errors import CompileError, SimulationError

#: NumPy counterparts of the scalar builtins in
#: :data:`repro.core.expr.BUILTIN_FUNCTIONS`. Only used when the
#: registered function *is* the builtin — a language that shadows a name
#: keeps its own (auto-wrapped) implementation.
VECTOR_FUNCTIONS: dict[str, object] = {
    "sin": np.sin, "cos": np.cos, "tan": np.tan, "exp": np.exp,
    "ln": np.log, "log": np.log, "sqrt": np.sqrt, "abs": np.abs,
    "tanh": np.tanh, "sgn": np.sign, "min": np.minimum,
    "max": np.maximum, "pow": np.power,
}


class _AutoVector:
    """Wrap a scalar function so it also accepts arrays.

    The wrapped function is first called directly — many pure-math
    helpers (e.g. the CNN ``sat``) already broadcast. Functions that
    reject arrays (piecewise definitions raising the ambiguous-truth
    ``ValueError``, ``math``-module calls raising ``TypeError``) are
    transparently rerouted through :func:`numpy.vectorize`.
    """

    def __init__(self, fn):
        self._fn = fn
        self._vectorized = None

    def __call__(self, *args):
        if self._vectorized is None:
            if not any(isinstance(a, np.ndarray) and a.ndim for a in args):
                return self._fn(*args)
            try:
                return self._fn(*args)
            except (TypeError, ValueError):
                self._vectorized = np.vectorize(self._fn, otypes=[float])
        return self._vectorized(*args)


class _PerInstanceFn:
    """A callable attribute whose value differs across the batch: invoke
    each instance's callable with that instance's row of any array
    argument (scalars, e.g. the shared time, pass through)."""

    def __init__(self, fns):
        self._fns = tuple(fns)

    def __call__(self, *args):
        out = np.empty(len(self._fns))
        for index, fn in enumerate(self._fns):
            row = [arg[index] if isinstance(arg, np.ndarray) and arg.ndim
                   else arg for arg in args]
            out[index] = fn(*row)
        return out


def _is_number(value) -> bool:
    return isinstance(value, (int, float, np.floating, np.integer)) \
        and not isinstance(value, bool)


def _shared_lookup(systems: list[OdeSystem]):
    """Attribute lookup resolving only values numerically identical in
    every instance — those are safe to inline and simplify against."""

    def lookup(kind, owner, attr):
        key = (kind, owner, attr)
        first = systems[0].attr_values.get(key)
        if not _is_number(first):
            return None
        for system in systems[1:]:
            value = system.attr_values.get(key)
            if not _is_number(value) or float(value) != float(first):
                return None
        return first

    return lookup


class _BatchCodegen(E.CodegenContext):
    """Codegen context for the batched backend: states to ``y[:, i]``,
    shared attributes inlined, per-instance attributes to namespace
    arrays, control flow to elementwise NumPy."""

    def __init__(self, systems: list[OdeSystem],
                 namespace: dict[str, object]):
        self._systems = systems
        self._namespace = namespace
        self._alg_names: dict[str, str] = {}
        self._attr_slots: dict[tuple, str] = {}

    def register_algebraic(self, node: str) -> str:
        local = f"_alg_{len(self._alg_names)}"
        self._alg_names[node] = local
        return local

    def var_source(self, node: str) -> str:
        index = self._systems[0].state_index.get((node, 0))
        if index is not None:
            return f"y[:, {index}]"
        if node in self._alg_names:
            return self._alg_names[node]
        raise CompileError(f"batch codegen: var({node}) is neither a "
                           "state nor an algebraic node")

    def attr_source(self, kind: str, owner: str, attr: str) -> str:
        key = (kind, owner, attr)
        if key in self._attr_slots:
            return self._attr_slots[key]
        try:
            values = [system.attr_values[key]
                      for system in self._systems]
        except KeyError:
            raise CompileError(
                f"batch codegen: unresolved attribute {owner}.{attr}"
            ) from None
        first = values[0]
        if all(_is_number(v) for v in values):
            if all(float(v) == float(first) for v in values):
                return repr(float(first))
            name = f"_attr_{len(self._attr_slots)}"
            self._namespace[name] = np.array([float(v) for v in values])
        elif all(callable(v) for v in values):
            name = f"_attr_{len(self._attr_slots)}"
            vector_key = getattr(first, "_ark_vector_key", None)
            if all(v is first for v in values) or (
                    vector_key is not None
                    and all(getattr(v, "_ark_vector_key", None)
                            == vector_key for v in values)):
                # Identical objects, or callables tagged as
                # interchangeable (equal `_ark_vector_key`): one shared
                # callable serves the whole batch.
                self._namespace[name] = _AutoVector(first)
            else:
                self._namespace[name] = _PerInstanceFn(values)
        else:
            raise CompileError(
                f"batch codegen: attribute {owner}.{attr} mixes value "
                "kinds across the batch")
        self._attr_slots[key] = name
        return name

    def function_source(self, name: str) -> str:
        alias = f"_fn_{name}"
        if alias not in self._namespace:
            try:
                fn = self._systems[0].functions[name]
            except KeyError:
                raise CompileError(
                    f"batch codegen: unknown function {name}") from None
            vector = VECTOR_FUNCTIONS.get(name)
            if vector is not None and fn is E.BUILTIN_FUNCTIONS.get(name):
                self._namespace[alias] = vector
            else:
                self._namespace[alias] = _AutoVector(fn)
        return alias

    def ifexp_source(self, cond: str, then: str, orelse: str) -> str:
        return f"_np.where({cond}, {then}, {orelse})"

    def boolop_source(self, op: str, left: str, right: str) -> str:
        fn = "logical_and" if op == "and" else "logical_or"
        return f"_np.{fn}({left}, {right})"

    def not_source(self, operand: str) -> str:
        return f"_np.logical_not({operand})"


def surviving_diffusion(systems: list[OdeSystem]):
    """The lead system's diffusion terms that survive shared-value
    simplification, paired with their optimized amplitude expressions.

    An amplitude that folds to the constant 0 for every instance (e.g.
    a noise annotation with the shared sigma attribute set to 0) drops
    out of the emitted diffusion function entirely — zero-noise batches
    compile to plain deterministic systems."""
    lookup = _shared_lookup(systems)
    survivors = []
    for term in systems[0].diffusion:
        optimized = optimize_terms((term.amplitude,), Reduction.SUM,
                                   lookup)
        if optimized:
            survivors.append((term, optimized[0]))
    return survivors


def generate_batch_source(systems: list[OdeSystem],
                          namespace: dict[str, object],
                          survivors=None) -> str:
    """Emit the source of the batched RHS (``_rhs``), the batched
    algebraic-readout function (``_alg``), and — for stochastic systems
    — the batched diffusion-amplitude function (``_dif``) for a
    structurally compatible batch. All take ``y`` of shape
    ``(n_instances, n_states)``; ``_dif`` fills ``out`` of shape
    ``(n_instances, n_diffusion_terms)``.

    ``survivors`` is a precomputed :func:`surviving_diffusion` result;
    pass it when the caller also needs the diffusion layout (as
    :class:`BatchRhs` does) so the shared-value pass runs once."""
    lead = systems[0]
    codegen = _BatchCodegen(systems, namespace)
    lookup = _shared_lookup(systems)

    algebraic_lines: list[str] = []
    for spec in lead.algebraic:
        local = codegen.register_algebraic(spec.name)
        joiner = " + " if spec.reduction is Reduction.SUM else " * "
        terms = optimize_terms(spec.terms, spec.reduction, lookup)
        body = joiner.join(E.to_python(term, codegen)
                           for term in terms) or \
            repr(spec.reduction.identity)
        algebraic_lines.append(f"    {local} = {body}")

    lines = ["def _rhs(t, y, dy):"] + list(algebraic_lines)
    for index, spec in enumerate(lead.rhs_specs):
        if isinstance(spec, ChainRhs):
            lines.append(f"    dy[:, {index}] = y[:, {spec.next_index}]")
        else:
            joiner = " + " if spec.reduction is Reduction.SUM else " * "
            terms = optimize_terms(spec.terms, spec.reduction, lookup)
            body = joiner.join(E.to_python(term, codegen)
                               for term in terms) or \
                repr(spec.reduction.identity)
            lines.append(f"    dy[:, {index}] = {body}")
    lines.append("    return dy")

    lines.append("")
    lines.append("def _alg(t, y):")
    lines.extend(algebraic_lines)
    mapping = ", ".join(
        f"{spec.name!r}: {codegen._alg_names[spec.name]}"
        for spec in lead.algebraic)
    lines.append("    return {%s}" % mapping)

    if survivors is None:
        survivors = surviving_diffusion(systems)
    if survivors:
        lines.append("")
        lines.append("def _dif(t, y, out):")
        lines.extend(algebraic_lines)
        for column, (_term, amplitude) in enumerate(survivors):
            body = E.to_python(amplitude, codegen)
            lines.append(f"    out[:, {column}] = {body}")
        lines.append("    return out")
    return "\n".join(lines)


class BatchRhs:
    """A compiled batched right-hand side: one function, N instances.

    Use :func:`compile_batch` to construct one; it raises
    :class:`~repro.errors.SimulationError` when the systems are not
    structurally compatible (see
    :meth:`~repro.core.odesystem.OdeSystem.structural_signature`).
    """

    def __init__(self, systems: list[OdeSystem]):
        if not systems:
            raise SimulationError("cannot batch an empty system list")
        signature = systems[0].structural_signature()
        for system in systems[1:]:
            if system.structural_signature() != signature:
                raise SimulationError(
                    f"systems {systems[0].graph.name} and "
                    f"{system.graph.name} are not structurally "
                    "compatible; use the serial path or group by "
                    "structural_signature()")
        self.systems = list(systems)
        namespace: dict[str, object] = {"_np": np}
        survivors = surviving_diffusion(self.systems)
        self.source = generate_batch_source(self.systems, namespace,
                                            survivors=survivors)
        exec(compile(self.source,
                     f"<ark-batch:{systems[0].graph.name}>", "exec"),
             namespace)
        self._rhs_inner = namespace["_rhs"]
        self._alg_inner = namespace["_alg"]
        self._dif_inner = namespace.get("_dif")
        #: Diffusion terms that survived shared-value folding (see
        #: :func:`surviving_diffusion`); column order of ``diffusion``.
        self.diffusion_terms = [term for term, _amp in survivors]
        #: Distinct Wiener-process identities, first-appearance order.
        self.wiener_paths: list[tuple[str, str]] = []
        path_index: dict[tuple[str, str], int] = {}
        for term in self.diffusion_terms:
            key = term.stream_key()
            if key not in path_index:
                path_index[key] = len(self.wiener_paths)
                self.wiener_paths.append(key)
        #: Per diffusion column: index of its Wiener path / target state.
        self.term_path_index = np.array(
            [path_index[term.stream_key()]
             for term in self.diffusion_terms], dtype=int)
        self.term_state_index = np.array(
            [term.state_index for term in self.diffusion_terms],
            dtype=int)

    @property
    def n_instances(self) -> int:
        return len(self.systems)

    @property
    def n_states(self) -> int:
        return self.systems[0].n_states

    @property
    def has_noise(self) -> bool:
        """True when the compiled batch carries live diffusion terms."""
        return self._dif_inner is not None

    def diffusion(self, t: float, y: np.ndarray,
                  out: np.ndarray | None = None) -> np.ndarray:
        """Evaluate every diffusion amplitude for the whole batch:
        result shape ``(n_instances, len(diffusion_terms))``."""
        if self._dif_inner is None:
            raise SimulationError(
                f"batch {self.systems[0].graph.name} has no diffusion "
                "terms; integrate it with a deterministic solver")
        if out is None:
            out = np.empty((y.shape[0], len(self.diffusion_terms)))
        return self._dif_inner(t, y, out)

    @property
    def y0(self) -> np.ndarray:
        """Stacked initial states, shape (n_instances, n_states)."""
        return np.stack([system.y0 for system in self.systems])

    def __call__(self, t: float, y: np.ndarray,
                 out: np.ndarray | None = None) -> np.ndarray:
        """Evaluate the batched RHS; ``y`` and the result have shape
        ``(n_instances, n_states)``."""
        if out is None:
            out = np.empty_like(y)
        return self._rhs_inner(t, y, out)

    def algebraic_values(self, t, y: np.ndarray) -> dict[str, np.ndarray]:
        """Order-0 node values for the whole batch, each broadcast to
        ``(n_instances,)`` (or to ``len(y)`` when another axis — e.g.
        time — plays the batch role)."""
        values = self._alg_inner(t, y)
        n = y.shape[0]
        return {name: np.broadcast_to(np.asarray(value, dtype=float),
                                      (n,)).copy()
                for name, value in values.items()}

    def __repr__(self) -> str:
        return (f"<BatchRhs {self.systems[0].graph.name} "
                f"instances={self.n_instances} states={self.n_states}>")


def compile_batch(systems: list[OdeSystem]) -> BatchRhs:
    """Compile a structurally compatible batch of systems into one
    vectorized RHS."""
    return BatchRhs(list(systems))


def group_by_signature(systems: list[OdeSystem]) -> list[list[int]]:
    """Partition system indices into structurally compatible groups,
    preserving first-seen order."""
    groups: dict[tuple, list[int]] = {}
    for index, system in enumerate(systems):
        groups.setdefault(system.structural_signature(), []).append(index)
    return list(groups.values())
