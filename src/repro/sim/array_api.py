"""Pluggable array-namespace backends for the batched engines.

Every hot path in the simulation stack — the emitted batched kernels
(:mod:`repro.sim.batch_codegen`), the ODE solvers
(:mod:`repro.sim.batch_solver`), and the SDE solvers
(:mod:`repro.sim.sde_solver`) — runs against a *narrow* array-namespace
interface instead of importing numpy directly. An
:class:`ArrayBackend` bundles:

* ``xp`` — the array namespace handle (``numpy``, ``jax.numpy``,
  ``cupy``) every kernel and solver op dispatches through;
* ``asarray`` / ``to_numpy`` — the device boundary: host constants in,
  host trajectories out (transfer happens only at trajectory assembly);
* a **dtype policy** (``float64`` default, ``float32`` opt-in) applied
  to every array that enters the namespace;
* a ``jit`` hook — identity on eager backends, ``jax.jit`` on jax —
  applied to emitted kernels that carry no host callables;
* a **Wiener-stream adapter** — the deterministic per-``(seed,
  element, path)`` PCG64 draws of :mod:`repro.core.noise` are always
  generated on the host (so realizations are backend-independent) and
  converted at the policy dtype; on ``numpy``/``float64`` the draws
  pass through untouched, keeping noise bit-identical to the
  pre-abstraction engine;
* ``mutable_kernels`` — whether emitted kernels may fill preallocated
  buffers in place (numpy, cupy) or must be emitted in functional form
  (jax, whose arrays are immutable).

The ``numpy`` backend is always present and is the default everywhere;
``jax`` and ``cupy`` are registered lazily behind optional imports, so
the engine works unchanged on hosts without either. Numpy/float64
results are **bit-identical** to the pre-abstraction engine
(test-enforced — the same gate every prior refactor shipped under);
accelerator backends are gated by numpy-vs-``xp`` equivalence tests at
tolerance.

Backend resolution accepts a *spec string* — ``"numpy"``, ``"jax"``,
``"numpy:float32"`` — an :class:`ArrayBackend` instance, or ``None``
(the numpy default). Spec strings are what travels through
:class:`~repro.sim.plan.ExecutionPlan` options, worker payloads, and
trajectory-cache keys: they are picklable and their canonical form
(:meth:`ArrayBackend.spec`) names both the backend and the dtype, so a
float32/jax run can never collide with a float64/numpy cache entry.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "array_backend_names",
    "canonical_spec",
    "register_array_backend",
    "resolve_array_backend",
]

#: Dtype policies a backend accepts (the canonical spelling is the key).
_DTYPES = {"float64": np.float64, "float32": np.float32}


def _canonical_dtype(dtype) -> str:
    """Normalize a dtype spec (name, numpy dtype, or type) onto the
    canonical policy name, rejecting anything outside the policy set —
    the solvers' error control and the cache's key hashing are only
    specified for real floating point."""
    if dtype is None:
        return "float64"
    name = np.dtype(dtype).name
    if name not in _DTYPES:
        raise SimulationError(
            f"unsupported array dtype {name!r}; the dtype policy "
            f"accepts {', '.join(sorted(_DTYPES))}")
    return name


class ArrayBackend:
    """One array namespace the batched engines can run on.

    Subclasses provide :attr:`name` and the ``xp`` property; the base
    class implements the dtype policy, the host boundary, and the
    functional-kernel helpers in terms of ``xp``. All hooks default to
    eager/host semantics so a minimal backend only overrides what its
    namespace actually does differently.
    """

    #: Registry name (also the cache-key/telemetry tag).
    name = "?"
    #: Whether emitted kernels may fill preallocated buffers in place.
    #: ``False`` switches codegen to the functional emission (column
    #: stacking instead of ``dy[:, i] = ...`` stores) that immutable
    #: array libraries (jax) require.
    mutable_kernels = True

    def __init__(self, dtype=None):
        self.dtype_name = _canonical_dtype(dtype)

    # -- namespace ----------------------------------------------------

    @property
    def xp(self):
        """The array namespace handle (a module-like object)."""
        raise NotImplementedError

    @property
    def dtype(self):
        """The policy dtype as a numpy dtype (shared vocabulary across
        backends — jax and cupy both speak numpy dtypes)."""
        return np.dtype(self.dtype_name)

    # -- host boundary ------------------------------------------------

    def asarray(self, value):
        """A backend array of the policy dtype (host constants in)."""
        return self.xp.asarray(value, dtype=self.dtype)

    def to_numpy(self, value) -> np.ndarray:
        """Host transfer (trajectory assembly out). Identity-cheap on
        numpy: ``np.asarray`` of a float64 array is the array itself."""
        return np.asarray(value)

    def empty_like(self, value):
        """Uninitialized work buffer matching an array (mutable
        kernels fill it; functional backends never ask for one)."""
        return self.xp.empty_like(value)

    # -- kernel hooks -------------------------------------------------

    def jit(self, fn):
        """Compile an emitted kernel, or return it unchanged (the
        eager default). Only kernels free of host callables are
        offered for jitting."""
        return fn

    def vector_functions(self) -> dict:
        """The namespace's counterparts of the scalar builtins (see
        :data:`repro.sim.batch_codegen.VECTOR_FUNCTIONS` for the numpy
        instance this generalizes)."""
        xp = self.xp
        return {
            "sin": xp.sin, "cos": xp.cos, "tan": xp.tan, "exp": xp.exp,
            "ln": xp.log, "log": xp.log, "sqrt": xp.sqrt,
            "abs": xp.abs, "tanh": xp.tanh, "sgn": xp.sign,
            "min": xp.minimum, "max": xp.maximum, "pow": xp.power,
        }

    def index_add(self, target, index, values):
        """Scatter-add ``values`` onto ``target`` rows selected by
        ``index`` (duplicates accumulate). May mutate ``target``;
        callers must use the return value."""
        np.add.at(target, index, values)
        return target

    def column(self, value, y):
        """Broadcast one emitted column expression to ``(len(y),)`` at
        the policy dtype — the functional emission's counterpart of
        numpy's assignment broadcasting (``out[:, i] = scalar``)."""
        xp = self.xp
        return xp.broadcast_to(xp.asarray(value, dtype=self.dtype),
                               y.shape[:1])

    def column_add(self, matrix, index, values):
        """Functional ``matrix[:, index] += values``: returns a new
        matrix, leaving the input untouched."""
        out = matrix.copy()
        out[:, index] = out[:, index] + values
        return out

    def column_set(self, matrix, index, values):
        """Functional ``matrix[:, index] = values``."""
        out = matrix.copy()
        out[:, index] = values
        return out

    # -- Wiener adapter -----------------------------------------------

    def wiener_source(self, noise_seeds, paths, block: int = 256):
        """The batch's Wiener-increment source. Draws always come from
        the host-side deterministic PCG64 streams of
        :mod:`repro.core.noise` — realizations are backend-independent
        — and are converted to backend arrays at the policy dtype. On
        numpy/float64 the draws pass through bit-identically."""
        from repro.sim.sde_solver import WienerSource

        source = WienerSource(noise_seeds, paths, block=block)
        if type(self) is NumpyBackend and self.dtype_name == "float64":
            return source
        return _ConvertingWiener(source, self)

    # -- identity -----------------------------------------------------

    def spec(self) -> str:
        """Canonical, picklable spec string: ``"<name>:<dtype>"``.
        Resolves back to an equivalent backend, and is what plan
        options, worker payloads, and cache keys carry."""
        return f"{self.name}:{self.dtype_name}"

    def __repr__(self) -> str:
        return f"<array-backend {self.spec()}>"


class _ConvertingWiener:
    """Wiener adapter of non-default backends: host draws in, backend
    arrays of the policy dtype out (see
    :meth:`ArrayBackend.wiener_source`)."""

    def __init__(self, source, backend: ArrayBackend):
        self._source = source
        self._backend = backend

    @property
    def paths(self):
        return self._source.paths

    def normals(self, step: int):
        return self._backend.asarray(self._source.normals(step))


class NumpyBackend(ArrayBackend):
    """The always-present default: plain numpy, eager, mutable.

    With the default float64 policy every operation the solvers and
    kernels perform is the exact operation the pre-abstraction engine
    performed — results are bit-identical (test-enforced).

    ``mutable_kernels=False`` is supported as the *reference
    implementation of the functional emission contract*: it runs the
    same column-stacking kernels an immutable backend (jax) receives,
    on plain numpy — which is how the functional emitter is tested on
    hosts without jax.
    """

    name = "numpy"

    def __init__(self, dtype=None, mutable_kernels: bool = True):
        super().__init__(dtype)
        self.mutable_kernels = bool(mutable_kernels)

    @property
    def xp(self):
        return np

    def vector_functions(self) -> dict:
        from repro.sim.batch_codegen import VECTOR_FUNCTIONS

        return VECTOR_FUNCTIONS


class JaxBackend(ArrayBackend):
    """jax.numpy backend (optional; registered lazily).

    Kernels are emitted functionally (jax arrays are immutable) and
    jitted through :func:`jax.jit` when they carry no host callables.
    The float64 policy enables jax's x64 mode process-wide — jax
    defaults to float32 otherwise, which would silently violate the
    dtype policy. Agreement with numpy is tolerance-gated (the
    numpy-vs-xp equivalence suite), never assumed bit-exact.
    """

    name = "jax"
    mutable_kernels = False

    def __init__(self, dtype=None):
        super().__init__(dtype)
        try:
            import jax
            import jax.numpy as jnp
        except ImportError as error:
            raise SimulationError(
                "array backend 'jax' requires jax, which is not "
                "installed (pip install jax); the 'numpy' backend is "
                "always available") from error
        if self.dtype_name == "float64":
            jax.config.update("jax_enable_x64", True)
        self._jax = jax
        self._jnp = jnp

    @property
    def xp(self):
        return self._jnp

    def jit(self, fn):
        return self._jax.jit(fn)

    def index_add(self, target, index, values):
        return target.at[index].add(values)

    def column_add(self, matrix, index, values):
        return matrix.at[:, index].add(values)

    def column_set(self, matrix, index, values):
        return matrix.at[:, index].set(values)


class CupyBackend(ArrayBackend):
    """CUDA backend through cupy (optional; registered lazily).

    cupy arrays are mutable, so the numpy-shaped kernels run unchanged
    on device; only the host boundary (``asarray``/``to_numpy``)
    differs. Tolerance-gated like jax.
    """

    name = "cupy"

    def __init__(self, dtype=None):
        super().__init__(dtype)
        try:
            import cupy
        except ImportError as error:
            raise SimulationError(
                "array backend 'cupy' requires cupy, which is not "
                "installed; the 'numpy' backend is always available"
            ) from error
        self._cupy = cupy

    @property
    def xp(self):
        return self._cupy

    def to_numpy(self, value) -> np.ndarray:
        if isinstance(value, self._cupy.ndarray):
            return self._cupy.asnumpy(value)
        return np.asarray(value)

    def index_add(self, target, index, values):
        self._cupy.add.at(target, index, values)
        return target


#: Registered backend factories: ``name -> callable(dtype) ->
#: ArrayBackend``. The optional backends' factories raise a clear
#: :class:`~repro.errors.SimulationError` when their import is absent —
#: registration itself never imports them.
ARRAY_BACKENDS: dict = {
    "numpy": NumpyBackend,
    "jax": JaxBackend,
    "cupy": CupyBackend,
}


def register_array_backend(name: str, factory) -> None:
    """Register (or replace) an array-backend factory under a name.
    ``factory(dtype)`` must return an :class:`ArrayBackend`."""
    ARRAY_BACKENDS[name] = factory


def array_backend_names() -> tuple[str, ...]:
    """The registered array-backend names, sorted. Listing a name does
    not imply its import is installed — resolution reports that."""
    return tuple(sorted(ARRAY_BACKENDS))


def parse_backend_spec(spec: str) -> tuple[str, str | None]:
    """Split a ``"name[:dtype]"`` spec string; the name is *not*
    validated here (callers decide between raising and listing)."""
    name, _, dtype = spec.partition(":")
    return name.strip(), (dtype.strip() or None)


def canonical_spec(spec=None) -> str:
    """The canonical ``"name:dtype"`` form of an array-backend argument
    — ``None`` means the default ``"numpy:float64"`` — computed
    *without* constructing the backend, so cache keys and name-based
    validation never trigger an optional import. The name is not
    checked against the registry here (resolution does that)."""
    if spec is None:
        return "numpy:float64"
    if isinstance(spec, ArrayBackend):
        return spec.spec()
    name, dtype = parse_backend_spec(str(spec))
    return f"{name}:{_canonical_dtype(dtype)}"


#: Resolution cache: the default backend (and repeated spec strings)
#: resolve to one shared instance, so kernel caches keyed per backend
#: stay warm across solves.
_RESOLVED: dict = {}


def resolve_array_backend(spec=None) -> ArrayBackend:
    """Normalize an array-backend argument: ``None`` (the numpy
    default), a spec string (``"numpy"``, ``"jax"``,
    ``"numpy:float32"``), or an :class:`ArrayBackend` instance (passed
    through). Unknown names raise with the registered list."""
    if spec is None:
        spec = "numpy"
    if isinstance(spec, ArrayBackend):
        return spec
    if not isinstance(spec, str):
        raise SimulationError(
            f"array_backend must be a spec string or an ArrayBackend, "
            f"got {type(spec).__name__}")
    name, dtype = parse_backend_spec(spec)
    if name not in ARRAY_BACKENDS:
        raise SimulationError(
            f"unknown array backend {name!r}; registered array "
            f"backends: {', '.join(array_backend_names())}")
    key = (name, _canonical_dtype(dtype))
    backend = _RESOLVED.get(key)
    if backend is None:
        backend = ARRAY_BACKENDS[name](dtype)
        _RESOLVED[key] = backend
    return backend
