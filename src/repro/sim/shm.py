"""Shared-memory result transport for the persistent worker pool.

The ``shard`` backend returns every per-shard trajectory tensor through
the multiprocessing pipe: the worker pickles an
``(n_rows, n_states, n_points)`` float array, the parent unpickles and
then concatenates it — two full copies plus serialization per shard, on
the sweep sizes of the paper's Fig. 4 / Table 1 studies easily hundreds
of megabytes per run. This module removes that round trip: the parent
allocates one :class:`ShmBlock` per batched group, workers attach by a
lightweight picklable *header* (name, shape, dtype — a few dozen
bytes) and integrate **directly into their row slice** of the shared
tensor, and the parent materializes the finished block with a single
memcpy. Trajectory data never passes through ``pickle``.

Lifetime contract: the parent (creator) owns the segment — it unlinks
exactly once, in a ``finally`` path, so success, worker crashes, and
``KeyboardInterrupt`` all leave ``/dev/shm`` clean (test-enforced via
:func:`active_blocks`). Workers only ever attach + close; their
attachment is explicitly *untracked* so Python's resource tracker in a
long-lived worker never unlinks (or warns about) a segment it does not
own.
"""

from __future__ import annotations

import uuid
import warnings
from multiprocessing import shared_memory

import numpy as np

from repro import telemetry
from repro.errors import SimulationError

#: Parent-created segments that have not been unlinked yet, mapped to
#: their size in bytes. Tests assert this drains back to empty — a
#: leaked ``/dev/shm`` block outlives the sweep and, accumulated over a
#: long session, fills the shared-memory filesystem.
_ACTIVE: dict[str, int] = {}


def active_blocks() -> list[str]:
    """Parent-owned segments still awaiting unlink (leak detector)."""
    return sorted(_ACTIVE)


def active_block_sizes() -> dict[str, int]:
    """Like :func:`active_blocks`, with each segment's byte size."""
    return dict(sorted(_ACTIVE.items()))


def warn_leaked_blocks(context: str) -> list[str]:
    """Emit a :class:`ResourceWarning` naming (and sizing) any segments
    still alive — the pool-shutdown leak check. Returns the leaked
    names so callers/tests can assert on them."""
    leaked = active_block_sizes()
    if leaked:
        detail = ", ".join(f"{name} ({nbytes} bytes)"
                           for name, nbytes in leaked.items())
        warnings.warn(
            f"{context}: {len(leaked)} shared-memory block(s) still "
            f"active after shutdown: {detail}. The owner should have "
            f"unlinked them; /dev/shm will fill up if this repeats.",
            ResourceWarning, stacklevel=2)
    return sorted(leaked)


def _untrack(segment) -> None:
    """Unregister a worker-side attachment from the resource tracker.

    Before Python 3.13 (``track=False``), *attaching* to a segment also
    registers it with the process's resource tracker, which then unlinks
    it when the process exits — wrong for our persistent workers, which
    attach to parent-owned segments: the parent is the sole owner of the
    unlink. Private API, hence the defensive except."""
    try:  # pragma: no cover - depends on stdlib internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


class ShmBlock:
    """One shared-memory tensor: a float block workers fill in place.

    Create with :meth:`create` in the parent, ship :attr:`header` to
    workers, attach there with :meth:`attach`. All numpy views are
    created and dropped *inside* the accessor methods so ``close()``
    never trips over exported buffers.
    """

    def __init__(self, segment, shape, dtype, owner: bool):
        self._segment = segment
        self.shape = tuple(int(n) for n in shape)
        self.dtype = np.dtype(dtype)
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, shape, dtype=np.float64) -> "ShmBlock":
        """Allocate a parent-owned block sized for ``shape`` doubles."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes <= 0:
            raise SimulationError(
                f"cannot allocate an empty shared-memory block "
                f"(shape {tuple(shape)})")
        name = f"arkshm_{uuid.uuid4().hex[:16]}"
        segment = shared_memory.SharedMemory(name=name, create=True,
                                             size=nbytes)
        _ACTIVE[segment.name] = nbytes
        telemetry.add("shm.blocks")
        telemetry.add("shm.bytes_allocated", nbytes)
        telemetry.gauge_max("mem.shm_bytes_high_water",
                            sum(_ACTIVE.values()))
        return cls(segment, shape, dtype, owner=True)

    @property
    def header(self) -> tuple:
        """The picklable descriptor workers attach by: a few dozen
        bytes instead of the tensor itself."""
        return (self._segment.name, self.shape, self.dtype.str)

    @classmethod
    def attach(cls, header) -> "ShmBlock":
        """Attach to an existing block from its header (worker side)."""
        name, shape, dtype = header
        segment = shared_memory.SharedMemory(name=name)
        _untrack(segment)
        return cls(segment, shape, dtype, owner=False)

    # ------------------------------------------------------------------
    # Data access (views never escape, so close() is always legal)
    # ------------------------------------------------------------------

    def write_rows(self, offset: int, rows: np.ndarray) -> None:
        """Store ``rows`` at ``[offset:offset+len(rows)]`` along the
        leading axis — the worker's single in-place store."""
        view = np.ndarray(self.shape, dtype=self.dtype,
                          buffer=self._segment.buf)
        view[offset:offset + rows.shape[0]] = rows

    def read_copy(self) -> np.ndarray:
        """The whole tensor as a regular array (the parent's single
        memcpy out of the segment)."""
        view = np.ndarray(self.shape, dtype=self.dtype,
                          buffer=self._segment.buf)
        return view.copy()

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (both sides; idempotent)."""
        if not self._closed:
            self._closed = True
            self._segment.close()

    def unlink(self) -> None:
        """Remove the segment from the system (owner only; idempotent).
        Safe while workers still hold mappings — POSIX keeps the memory
        alive until the last mapping closes."""
        if not self.owner:
            return
        if self._segment.name in _ACTIVE:
            del _ACTIVE[self._segment.name]
            self._segment.unlink()

    def discard(self) -> None:
        """close + unlink in one call — the parent's cleanup path."""
        self.close()
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ShmBlock {self._segment.name} shape={self.shape} "
                f"owner={self.owner}>")
