"""Vectorized batch integration of stochastic (SDE) ensembles.

The drift side reuses the batched codegen of :mod:`repro.sim.
batch_codegen`; this module adds the diffusion side: deterministic
Wiener-increment streams (one per ``(noise seed, element, path)`` triple,
hashed exactly like §4.3 mismatch streams — see :mod:`repro.core.noise`)
and the batched solvers operating on the whole ``(n_instances,
n_states)`` state matrix at once:

* ``em``   — Euler–Maruyama: strong order 0.5, cheapest per step;
* ``heun`` — stochastic Heun (drift-and-diffusion predictor/corrector):
  deterministic order 2, so its zero-noise limit tracks the RK solvers
  closely; converges to the Stratonovich solution for state-dependent
  noise. This is the default — the shipped paradigm dynamics
  (transmission lines, Kuramoto networks) have oscillatory Jacobians
  that marginally destabilize plain Euler–Maruyama.
* ``milstein`` — Euler–Maruyama plus the diagonal Milstein correction
  ``0.5 * b * (∂b/∂y) * (ΔW² − h)``: strong order 1.0 in the Itô sense
  for state-dependent (``rel``) diffusion, where plain EM degrades to
  order 0.5. The amplitude derivative is differentiated symbolically
  and batch-compiled (see
  :meth:`~repro.sim.batch_codegen.BatchRhs.diffusion_derivative`);
  additive-noise systems have a zero correction and reproduce ``em``
  bit for bit.
* ``heun-adaptive`` / ``em-adaptive`` — the same predictor/corrector
  pair run as an *embedded pair*: the gap between the EM predictor and
  the Heun corrector estimates the local (drift-dominated) error, and
  a per-instance controller halves or doubles the step along the
  dyadic lattice of each output-grid interval, so stiff transients
  stop forcing the worst-case ``max_step`` onto the whole horizon.
  Steps always land exactly on the output grid (no stochastic dense
  interpolation), and the Wiener increments come from the hierarchical
  :class:`BridgeWienerSource`, so the realized path is invariant to
  the accept/reject sequence.

All methods substep each output-grid interval and land exactly on the
grid, and all return the same
:class:`~repro.sim.batch_solver.BatchTrajectory` the deterministic batch
solvers produce — ensemble statistics, percentile bands, and the spread
helpers all work unchanged on noisy ensembles.

Reproducibility contract: a *fixed-step* Wiener stream is fully
determined by ``(noise_seed, element, path)`` and the step sequence;
with an unchanged output grid and ``max_step``, rerunning a trial
replays the identical noise realization, and the pre-existing
fixed-step methods stay bit-identical to their historical results. The
*adaptive* methods strengthen the contract: increments come from
Brownian-bridge refinement streams keyed by ``(seed, element, path,
level, index)`` (see :func:`repro.core.noise.bridge_seed`), so the
realized Wiener path depends only on the keys — never on which steps
the controller accepted or rejected — and halving any step yields the
conditionally-correct finer increments of the *same* path. Varying the
noise seed — *not* the mismatch seed — models independent thermal-noise
trials of one fabricated chip.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import ndtri

from repro import telemetry
from repro.core.compiler import compile_graph
from repro.core.graph import DynamicalGraph
from repro.core.noise import bridge_bits as _bridge_bits
from repro.core.noise import stream as _wiener_stream
from repro.core.odesystem import OdeSystem
from repro.core.simulator import Trajectory
from repro.errors import SimulationError

from repro.sim.array_api import resolve_array_backend
from repro.sim.batch_codegen import BatchRhs, compile_batch
from repro.sim.batch_solver import (BatchTrajectory, _batch_backend,
                                    _error_norms, _output_grid,
                                    _resolve_max_step, freeze_converged)

#: Fixed-step methods: the step sequence is fully determined by the
#: grid and ``max_step``, so results are partition- and
#: tolerance-independent (and bit-identical under sharding).
FIXED_SDE_METHODS = ("heun", "em", "milstein")

#: Adaptive methods: embedded-pair (EM-inside-Heun) error control over
#: the dyadic step lattice; ``rtol``/``atol`` steer the controller.
ADAPTIVE_SDE_METHODS = ("heun-adaptive", "em-adaptive")

#: Methods handled by :func:`solve_sde`.
SDE_METHODS = FIXED_SDE_METHODS + ADAPTIVE_SDE_METHODS


class WienerSource:
    """Deterministic batched Wiener increments.

    One PCG64 stream per ``(noise_seed, element, path)`` triple (the
    :mod:`repro.core.noise` hashing scheme); increments are drawn in
    blocks of ``block`` solver steps so memory stays bounded at
    ``n_instances * n_paths * block`` doubles regardless of how long the
    transient runs.

    :param noise_seeds: one seed token per batch instance (ints or
        strings; the noisy-ensemble driver passes ``"chip:trial"``).
    :param paths: the batch's Wiener identities, ``(element, path)``.
    """

    def __init__(self, noise_seeds, paths, block: int = 256):
        if block < 1:
            raise SimulationError(f"block must be >= 1, got {block}")
        self.noise_seeds = list(noise_seeds)
        self.paths = list(paths)
        self.block = int(block)
        self._generators: list[list[np.random.Generator]] | None = None
        self._buffer: np.ndarray | None = None
        #: First step index held by the buffer / first step not yet
        #: drawn from the generators. Each stream yields sample k at
        #: position k, so the realization is block-size independent.
        self._buffer_start = 0
        self._drawn = 0

    def _ensure_generators(self):
        if self._generators is None:
            self._generators = [
                [_wiener_stream(seed, element, path)
                 for element, path in self.paths]
                for seed in self.noise_seeds]

    def normals(self, step: int) -> np.ndarray:
        """Standard-normal draws for solver step ``step``: shape
        ``(n_instances, n_paths)``. Steps must be visited in
        non-decreasing order (the fixed-step solvers do; rewinding past
        the current block would desynchronize the streams)."""
        if not self.paths:
            return np.zeros((len(self.noise_seeds), 0))
        if step >= self._drawn:
            self._advance_to(step)
        if step < self._buffer_start:
            raise SimulationError(
                "WienerSource steps must be consumed in order (asked "
                f"for {step}, buffer starts at {self._buffer_start})")
        # Copy: the buffer is reused across blocks, so a returned view
        # would silently mutate when the next block is drawn.
        return self._buffer[:, :, step - self._buffer_start].copy()

    def _advance_to(self, step: int):
        self._ensure_generators()
        if self._buffer is None:
            self._buffer = np.empty(
                (len(self.noise_seeds), len(self.paths), self.block))
        while self._drawn <= step:
            for row, generators in enumerate(self._generators):
                for col, generator in enumerate(generators):
                    self._buffer[row, col, :] = \
                        generator.standard_normal(self.block)
            self._buffer_start = self._drawn
            self._drawn += self.block


#: Hard refinement floor of the adaptive controller: one output-grid
#: interval may be halved at most this many times (2**20 ≈ 1M substeps
#: per interval) before the step is accepted — or, with ``freeze_tol``,
#: the offending rows are frozen — regardless of the error estimate.
MAX_BRIDGE_LEVEL = 20

#: Error norm below which an aligned accepted step doubles (the
#: order-2 embedded estimate predicts a step-doubling factor ``>= 2``
#: at ``worst <= (0.9 / 2)**2 ≈ 0.2``).
_GROW_THRESHOLD = 0.2


class BridgeWienerSource:
    """Hierarchical Wiener increments: Brownian-bridge dyadic refinement.

    Where :class:`WienerSource` draws one normal per *solver step* — so
    the realization depends on the step sequence — this source defines
    the Wiener path on the dyadic lattice of each output-grid interval:
    level 0 is the interval's total increment, and level ``L`` splits
    it into ``2**L`` conditionally-correct substeps via the midpoint
    (Brownian-bridge) recursion

    ``left = ΔW/2 + (sqrt(d)/2)·Z``, ``right = ΔW − left``

    where ``d`` is the parent substep width and ``Z`` the refinement
    normal keyed by ``(seed, element, path, level, index)``. Each
    ``(seed, element, path, level)`` owns one PCG64 *bit* stream
    (:func:`repro.core.noise.bridge_bits`); index ``i`` is word ``i``
    of that stream, inverse-CDF transformed to a normal — one 64-bit
    word per normal, so ``PCG64.advance`` gives O(1) random access and
    an adaptive solver may halve (or re-coarsen) any step in any order
    and always see the same realized path. Memory stays O(levels): no
    draw buffers, only generators and a per-interval memo of computed
    increments.

    :param noise_seeds: one seed token per batch instance.
    :param paths: the batch's Wiener identities, ``(element, path)``.
    :param grid: the output grid the dyadic hierarchy hangs off.
    """

    def __init__(self, noise_seeds, paths, grid):
        self.noise_seeds = list(noise_seeds)
        self.paths = list(paths)
        self.grid = [float(value) for value in grid]
        if len(self.grid) < 2:
            raise SimulationError(
                "BridgeWienerSource needs a grid of >= 2 points")
        #: level -> per-(instance, path) PCG64 bit generators.
        self._streams: dict[int, list] = {}
        #: level -> absolute word index the generators sit at.
        self._positions: dict[int, int] = {}
        self._interval = -1
        self._memo: dict[tuple[int, int], np.ndarray] = {}
        #: Deepest refinement level drawn so far (telemetry:
        #: ``sde.bridge_levels``).
        self.max_level = 0

    def _normals(self, level: int, index: int) -> np.ndarray:
        """The ``(n_instances, n_paths)`` refinement normals at
        ``(level, index)`` — identical whenever requested, whatever was
        drawn before or after."""
        streams = self._streams.get(level)
        if streams is None:
            streams = [[_bridge_bits(seed, element, path, level)
                        for element, path in self.paths]
                       for seed in self.noise_seeds]
            self._streams[level] = streams
            self._positions[level] = 0
            self.max_level = max(self.max_level, level)
        delta = index - self._positions[level]
        raws = np.empty((len(self.noise_seeds), len(self.paths)),
                        dtype=np.uint64)
        for row, bits_row in enumerate(streams):
            for col, bits in enumerate(bits_row):
                if delta:
                    bits.advance(delta)
                raws[row, col] = bits.random_raw()
        self._positions[level] = index + 1
        # 53 mantissa bits, centered on the half-step so u is strictly
        # inside (0, 1) — ndtri stays finite for every word.
        uniforms = ((raws >> np.uint64(11)).astype(np.float64) + 0.5) \
            * 2.0 ** -53
        return ndtri(uniforms)

    def increment(self, interval: int, level: int,
                  index: int) -> np.ndarray:
        """ΔW over dyadic substep ``index`` (of ``2**level``) of grid
        interval ``interval``: shape ``(n_instances, n_paths)``.
        Requests at different levels are mutually consistent — a parent
        increment equals the sum of its two children by construction —
        so a solver may mix levels freely while stepping an interval.
        Intervals must be visited in non-decreasing order (the
        per-interval memo is dropped on advance)."""
        if not self.paths:
            return np.zeros((len(self.noise_seeds), 0))
        if not 0 <= interval < len(self.grid) - 1:
            raise SimulationError(
                f"interval {interval} outside the {len(self.grid) - 1} "
                "grid intervals")
        if interval != self._interval:
            self._interval = interval
            self._memo = {}
        return self._increment(interval, level, index)

    def _increment(self, interval: int, level: int,
                   index: int) -> np.ndarray:
        memo = self._memo
        value = memo.get((level, index))
        if value is not None:
            return value
        dt = self.grid[interval + 1] - self.grid[interval]
        if level == 0:
            value = math.sqrt(dt) * self._normals(0, interval)
            memo[(0, index)] = value
            return value
        parent_index = index >> 1
        parent = self._increment(interval, level - 1, parent_index)
        width = dt / (1 << (level - 1))
        z = self._normals(
            level, (interval << (level - 1)) + parent_index)
        left = 0.5 * parent + (0.5 * math.sqrt(width)) * z
        right = parent - left
        memo[(level, 2 * parent_index)] = left
        memo[(level, 2 * parent_index + 1)] = right
        return left if index == 2 * parent_index else right


def _substep_plan(grid: np.ndarray, max_step: float):
    """Per-interval (h, n_sub) so steps respect ``max_step`` and land on
    the grid; also the running global step offset for Wiener indexing."""
    plan = []
    offset = 0
    for k in range(len(grid) - 1):
        dt = float(grid[k + 1] - grid[k])
        n_sub = max(1, math.ceil(dt / max_step))
        plan.append((float(grid[k]), dt / n_sub, n_sub, offset))
        offset += n_sub
    return plan, offset


def _scatter(contrib, state_index: np.ndarray, n_states: int,
             backend=None):
    """Accumulate per-term contributions ``(n_instances, n_terms)`` onto
    their target states: returns ``(n_instances, n_states)``. Multiple
    terms may share a state (the backend's scatter-add handles the
    duplicates)."""
    B = backend if backend is not None else resolve_array_backend(None)
    acc = B.xp.zeros((n_states, contrib.shape[0]), dtype=B.dtype)
    return B.index_add(acc, state_index, contrib.T).T


class _ScatterAccumulator:
    """:func:`_scatter` with a reusable workspace.

    On mutable-kernel backends (numpy, cupy) the ``(n_states,
    n_instances)`` accumulator is allocated once and re-zeroed per call
    instead of freshly allocated every substep — zero-fill plus
    in-place ``index_add`` produces bitwise the same array as scattering
    into fresh zeros. Two buffers rotate because the Heun corrector
    needs the predictor's scatter alive while the corrector's is formed
    (and Milstein needs the increment scatter alive under the
    correction scatter); callers therefore must not hold more than two
    results at once. Functional backends (immutable arrays) keep the
    zeros-per-call path. ``allocs`` counts real allocations — the
    fixed-step sweep used to pay one per scatter call, now at most two
    per solve (reported as ``sde.scatter_allocs``).
    """

    def __init__(self, state_index, n_states: int, n_instances: int,
                 backend):
        self._B = backend
        self._state_index = state_index
        self._shape = (n_states, n_instances)
        self._buffers = [None, None]
        self._turn = 0
        self.allocs = 0

    def __call__(self, contrib):
        B = self._B
        if B.mutable_kernels:
            acc = self._buffers[self._turn]
            if acc is None:
                acc = B.xp.zeros(self._shape, dtype=B.dtype)
                self._buffers[self._turn] = acc
                self.allocs += 1
            else:
                acc[...] = 0.0
            self._turn = 1 - self._turn
        else:
            acc = B.xp.zeros(self._shape, dtype=B.dtype)
            self.allocs += 1
        return B.index_add(acc, self._state_index, contrib.T).T


def _noise_settle(batch: BatchRhs, scatter, y, t_next: float,
                  remaining: float, rtol: float, atol: float,
                  freeze_tol: float, noisy: bool, xp):
    """Rows whose drift *and* noise can no longer move them beyond
    tolerance over the remaining span (the caller accounts one drift
    evaluation for the probe)."""
    f = batch(t_next, y)
    settle = freeze_converged(y, f, remaining, rtol, atol,
                              freeze_tol, xp)
    if noisy and bool(settle.any()):
        # The drift has settled — but freeze only where the noise
        # cannot move the instance beyond tolerance either: |g| scaled
        # by the remaining span's Wiener deviation must stay below the
        # same bound.
        amplitude = xp.abs(batch.diffusion(t_next, y))
        g_state = scatter(amplitude)
        scale = atol + rtol * xp.abs(y)
        wiggle = g_state * math.sqrt(remaining)
        settle = settle & (
            xp.sqrt(xp.mean((wiggle / scale) ** 2, axis=1))
            <= freeze_tol)
    return settle


def _sde_loop(batch: BatchRhs, work_grid: np.ndarray, plan, wiener,
              method: str, noisy: bool, freeze_tol: float | None,
              rtol: float, atol: float, scatter, backend):
    """The fixed-step Euler–Maruyama / Milstein / stochastic-Heun sweep
    over one substep plan: backend arrays throughout, value-identical
    ``xp.where`` row pinning for the freeze masks, host transfer only
    where accepted grid states land in the output buffer."""
    B = backend
    xp = B.xp
    n_states = batch.n_states
    path_index = batch.term_path_index
    heun = method == "heun"
    # Additive noise has a zero derivative term: Milstein folds to EM
    # exactly (bit-identical), so skip the correction kernel entirely.
    milstein = noisy and method == "milstein" \
        and not batch.milstein_trivial
    y = B.asarray(batch.y0)
    out = np.empty((y.shape[0], n_states, len(work_grid)),
                   dtype=B.dtype)  # ark: host-boundary
    out[:, :, 0] = B.to_numpy(y)
    frozen = xp.zeros(y.shape[0], dtype=bool)
    nfev = 0
    t_end = work_grid[-1]
    for k, (t_start, h, n_sub, offset) in enumerate(plan):
        if bool(frozen.all()):
            # Every instance holds constant: fill the remaining grid
            # without stepping (frozen rows would be pinned anyway).
            out[:, :, k + 1:] = B.to_numpy(y)[:, :, None]
            break
        t = t_start
        sqrt_h = math.sqrt(h)
        hold = y if bool(frozen.any()) else None
        for sub in range(n_sub):
            if noisy:
                xi = wiener.normals(offset + sub)
                dw = sqrt_h * xi[:, path_index]
                g0 = scatter(batch.diffusion(t, y) * dw)
            else:
                g0 = 0.0
            f0 = batch(t, y)
            nfev += 1
            if heun:
                y_pred = y + h * f0 + g0
                f1 = batch(t + h, y_pred)
                nfev += 1
                if noisy:
                    g1 = scatter(batch.diffusion(t + h, y_pred) * dw)
                else:
                    g1 = 0.0
                y = y + 0.5 * h * (f0 + f1) + 0.5 * (g0 + g1)
            elif milstein:
                # Diagonal Itô correction 0.5·b·(∂b/∂y)·(ΔW²−h),
                # scattered per term onto its target state.
                corr = scatter(
                    0.5 * batch.diffusion(t, y)
                    * batch.diffusion_derivative(t, y)
                    * (dw * dw - h))
                y = y + h * f0 + g0 + corr
            else:
                y = y + h * f0 + g0
            if hold is not None:
                # Pinned rows: frozen instances hold their value (all
                # batch arithmetic is row-local, so their columns
                # cannot perturb active siblings).
                y = xp.where(frozen[:, None], hold, y)
            t += h
        if freeze_tol is not None:
            # Diverged rows (a stiff outlier going non-finite) freeze
            # at their last grid value instead of failing the batch.
            bad = ~frozen & ~xp.all(xp.isfinite(y), axis=1)
            if bool(bad.any()):
                y = xp.where(bad[:, None], B.asarray(out[:, :, k]), y)
                frozen = frozen | bad
        out[:, :, k + 1] = B.to_numpy(y)
        t_next = float(work_grid[k + 1])
        if freeze_tol is not None and t_next < t_end and \
                not bool(frozen.all()):
            remaining = float(t_end - t_next)
            settle = _noise_settle(batch, scatter, y, t_next, remaining,
                                   rtol, atol, freeze_tol, noisy, xp)
            nfev += 1
            frozen = frozen | (~frozen & settle)
    return out, frozen, nfev


def _sde_adaptive_loop(batch: BatchRhs, work_grid: np.ndarray, wiener,
                       heun: bool, noisy: bool,
                       freeze_tol: float | None, rtol: float,
                       atol: float, max_step: float, scatter, backend):
    """The embedded-pair adaptive sweep: EM predictor inside the
    stochastic-Heun corrector, their gap as the local error estimate.

    Each output-grid interval is walked along its dyadic lattice —
    substep ``j`` of ``2**level`` — so accepted steps always land
    exactly on the grid (dense output by construction, no stochastic
    interpolation) and every Wiener increment is a
    :class:`BridgeWienerSource` node: the realized path never depends
    on the accept/reject sequence. A rejection halves the step
    (``level+1``, ``j<<1``) and reuses the cached drift/amplitude at
    the unchanged ``(t, y)``, so only the corrector evaluation is
    repaid; an accepted step with error below :data:`_GROW_THRESHOLD`
    re-coarsens (``level-1``, ``j>>1``) when aligned. ``max_step``
    bounds the coarsest substep; :data:`MAX_BRIDGE_LEVEL` bounds
    refinement — at the floor, offending rows freeze when
    ``freeze_tol`` is set, else the step is accepted as-is (a
    non-finite result still fails the solve afterwards).
    """
    B = backend
    xp = B.xp
    n_states = batch.n_states
    path_index = batch.term_path_index
    y = B.asarray(batch.y0)
    out = np.empty((y.shape[0], n_states, len(work_grid)),
                   dtype=B.dtype)  # ark: host-boundary
    out[:, :, 0] = B.to_numpy(y)
    frozen = xp.zeros(y.shape[0], dtype=bool)
    nfev = accepted = rejected = 0
    t_end = work_grid[-1]
    level = 0
    for k in range(len(work_grid) - 1):
        if bool(frozen.all()):
            out[:, :, k + 1:] = B.to_numpy(y)[:, :, None]
            break
        t_start = float(work_grid[k])
        dt = float(work_grid[k + 1]) - t_start
        level_min = _min_level(dt, max_step)
        # Carry the step size across intervals: stiffness rarely
        # resets at a grid point.
        level = min(max(level, level_min), MAX_BRIDGE_LEVEL)
        j = 0
        f0 = amp0 = None
        while j < (1 << level):
            h = dt / (1 << level)
            t = t_start + j * h
            if f0 is None:
                f0 = batch(t, y)
                nfev += 1
                if noisy:
                    amp0 = batch.diffusion(t, y)
            if noisy:
                dw_paths = B.asarray(wiener.increment(k, level, j))
                dw = dw_paths[:, path_index]
                g0 = scatter(amp0 * dw)
            else:
                g0 = 0.0
            y_em = y + h * f0 + g0
            f1 = batch(t + h, y_em)
            nfev += 1
            if noisy:
                g1 = scatter(batch.diffusion(t + h, y_em) * dw)
            else:
                g1 = 0.0
            y_heun = y + 0.5 * h * (f0 + f1) + 0.5 * (g0 + g1)
            norms = _error_norms(y_heun - y_em, y, y_heun, rtol, atol,
                                 xp)
            norms = xp.where(frozen, 0.0, norms)
            finite = xp.isfinite(norms)
            worst = float(xp.max(xp.where(finite, norms,
                                          float("inf")))) \
                if norms.shape[0] else 0.0
            if worst > 1.0 and level < MAX_BRIDGE_LEVEL:
                # Halve: same (t, y), so f0/amp0 stay valid — only the
                # corrector evaluation is repaid next attempt.
                rejected += 1
                level += 1
                j <<= 1
                continue
            if worst > 1.0 and freeze_tol is not None:
                # Refinement floor: freeze the offenders at their
                # current state instead of dragging the whole batch.
                offenders = ~frozen & ((norms > 1.0) | ~finite)
                frozen = frozen | offenders
            accepted += 1
            y_new = y_heun if heun else y_em
            if bool(frozen.any()):
                y_new = xp.where(frozen[:, None], y, y_new)
            y = y_new
            f0 = amp0 = None
            j += 1
            if worst < _GROW_THRESHOLD and level > level_min \
                    and j % 2 == 0:
                level -= 1
                j >>= 1
        if freeze_tol is not None:
            bad = ~frozen & ~xp.all(xp.isfinite(y), axis=1)
            if bool(bad.any()):
                y = xp.where(bad[:, None], B.asarray(out[:, :, k]), y)
                frozen = frozen | bad
        out[:, :, k + 1] = B.to_numpy(y)
        t_next = float(work_grid[k + 1])
        if freeze_tol is not None and t_next < t_end and \
                not bool(frozen.all()):
            remaining = float(t_end - t_next)
            settle = _noise_settle(batch, scatter, y, t_next, remaining,
                                   rtol, atol, freeze_tol, noisy, xp)
            nfev += 1
            frozen = frozen | (~frozen & settle)
    return out, frozen, nfev, accepted, rejected


def _min_level(dt: float, max_step: float) -> int:
    """Coarsest dyadic level whose substep respects ``max_step`` (with
    an epsilon so an exact power-of-two ratio is not over-refined)."""
    if dt <= max_step:
        return 0
    return min(MAX_BRIDGE_LEVEL,
               math.ceil(math.log2(dt / max_step) - 1e-12))


def solve_sde(batch: BatchRhs | list[OdeSystem],
              t_span: tuple[float, float], *, noise_seeds=None,
              n_points: int = 500, method: str = "heun",
              t_eval=None, max_step: float | None = None,
              block: int = 256, freeze_tol: float | None = None,
              rtol: float = 1e-7, atol: float = 1e-9,
              array_backend=None) -> BatchTrajectory:
    """Integrate a structurally compatible stochastic ensemble.

    :param batch: a compiled :class:`BatchRhs` or a list of systems.
    :param noise_seeds: one noise-seed token per instance (defaults to
        ``0..n-1``). Instances with equal tokens see identical noise.
    :param method: ``heun`` (default), ``em``, ``milstein``,
        ``heun-adaptive``, or ``em-adaptive`` — see the module
        docstring for the trade-offs.
    :param max_step: substep cap; defaults to 1/64 of the span like the
        deterministic solvers. For the fixed-step methods accuracy is
        step-limited, so dense output grids double as accuracy
        control; for the adaptive methods this only bounds the
        *coarsest* step the controller may take.
    :param block: Wiener pre-draw block length of the fixed-step
        sequential streams (memory/speed knob; the realization is
        block-size independent). Ignored by the adaptive methods,
        whose bridge streams are random-access.
    :param freeze_tol: per-instance step masks. An instance freezes —
        its row is pinned at the current state — when both its drift
        extrapolated over the remaining span *and* its diffusion
        amplitude scaled by the remaining span's Wiener deviation stay
        below ``freeze_tol`` times the tolerance scale
        (``atol + rtol * |y|``), i.e. neither the deterministic flow
        nor the noise can move it beyond tolerance anymore; and an
        instance whose state goes non-finite mid-sweep (a diverged
        stiff outlier) freezes at its last grid value instead of
        failing the whole batch. Once every instance is frozen the
        remaining grid fills without further evaluations. Freezing is
        decided per row from row-local data only, so masked runs stay
        bit-identical under sharding. ``None`` (default) disables
        masking — exact legacy behavior.
    :param rtol:/:param atol: per-instance error control of the
        adaptive methods (the embedded EM/Heun gap, scipy's scaling
        convention), and the tolerance scale of the freeze criterion.
        On the fixed-step methods only ``freeze_tol`` consumes them.
    :param array_backend: array namespace the solve runs on (spec
        string, :class:`~repro.sim.array_api.ArrayBackend`, or ``None``
        for numpy). Wiener draws always come from the host-side
        deterministic streams, so the *realization* is backend-
        independent; a precompiled ``batch`` carries its own backend
        and a conflicting request raises.
    """
    if method not in SDE_METHODS:
        # Validate before compiling anything: an unknown method should
        # fail fast and name the alternatives (PR 4 engine hardening).
        raise SimulationError(
            f"unknown SDE method {method!r}; expected one of "
            f"{', '.join(SDE_METHODS)}")
    backend = _batch_backend(batch, array_backend)
    if not isinstance(batch, BatchRhs):
        batch = compile_batch(batch, array_backend=backend)
    if noise_seeds is None:
        noise_seeds = range(batch.n_instances)
    noise_seeds = list(noise_seeds)
    if len(noise_seeds) != batch.n_instances:
        raise SimulationError(
            f"{len(noise_seeds)} noise seeds for "
            f"{batch.n_instances} instances")
    grid = _output_grid(t_span, n_points, t_eval)
    t0 = float(t_span[0])
    if grid[0] < t0:
        raise SimulationError(
            f"t_eval starts at {grid[0]} before the span start {t0}")
    preroll = grid[0] > t0
    work_grid = np.concatenate(([t0], grid)) if preroll else grid
    max_step = _resolve_max_step(max_step,
                                 work_grid[-1] - work_grid[0])

    noisy = batch.has_noise
    if freeze_tol is not None and freeze_tol <= 0.0:
        raise SimulationError(
            f"freeze_tol must be > 0 (or None), got {freeze_tol}")

    scatter = _ScatterAccumulator(batch.term_state_index,
                                  batch.n_states, batch.n_instances,
                                  backend)
    adaptive = method in ADAPTIVE_SDE_METHODS
    if adaptive:
        wiener = BridgeWienerSource(
            noise_seeds, batch.wiener_paths if noisy else [], work_grid)
        out, frozen, nfev, n_acc, n_rej = _sde_adaptive_loop(
            batch, work_grid, wiener, method == "heun-adaptive", noisy,
            freeze_tol, rtol, atol, max_step, scatter, backend)
    else:
        wiener = backend.wiener_source(
            noise_seeds, batch.wiener_paths if noisy else [],
            block=block)
        plan, _total = _substep_plan(work_grid, max_step)
        out, frozen, nfev = _sde_loop(batch, work_grid, plan, wiener,
                                      method, noisy, freeze_tol,
                                      rtol, atol, scatter, backend)
    frozen = backend.to_numpy(frozen)
    if telemetry.enabled():
        telemetry.add("solver.sde_solves")
        telemetry.add(f"solver.array_backend.{backend.name}")
        telemetry.add("solver.nfev", nfev)
        telemetry.add("sde.scatter_allocs", scatter.allocs)
        if adaptive:
            telemetry.add("solver.steps_accepted", n_acc)
            telemetry.add("solver.steps_rejected", n_rej)
            telemetry.gauge_max("sde.bridge_levels", wiener.max_level)
        if freeze_tol is not None:
            telemetry.add("solver.frozen_rows", int(frozen.sum()))
    if preroll:
        out = out[:, :, 1:]
    if not np.all(np.isfinite(out)):
        raise SimulationError(
            f"sde {method} produced non-finite states for "
            f"{batch.systems[0].graph.name}; reduce max_step (explicit "
            "fixed-step stability), tighten rtol/atol (adaptive), or "
            "reduce the noise amplitude")
    return BatchTrajectory(t=grid, y=out, systems=batch.systems,
                           frozen=frozen if freeze_tol is not None
                           else None, nfev=nfev)


def simulate_sde(target: OdeSystem | DynamicalGraph,
                 t_span: tuple[float, float], *, noise_seed=0,
                 n_points: int = 500, method: str = "heun",
                 t_eval=None, max_step: float | None = None,
                 rtol: float = 1e-7, atol: float = 1e-9) -> Trajectory:
    """One noisy transient of a single system — the serial counterpart
    of :func:`solve_sde` (and the baseline the batched path is
    benchmarked against). ``noise_seed`` selects the realization;
    ``rtol``/``atol`` steer the adaptive methods."""
    system = (compile_graph(target)
              if isinstance(target, DynamicalGraph) else target)
    batch = solve_sde(compile_batch([system]), t_span,
                      noise_seeds=[noise_seed], n_points=n_points,
                      method=method, t_eval=t_eval, max_step=max_step,
                      rtol=rtol, atol=atol)
    return batch.instance(0)
