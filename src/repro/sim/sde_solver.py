"""Vectorized batch integration of stochastic (SDE) ensembles.

The drift side reuses the batched codegen of :mod:`repro.sim.
batch_codegen`; this module adds the diffusion side: deterministic
Wiener-increment streams (one per ``(noise seed, element, path)`` triple,
hashed exactly like §4.3 mismatch streams — see :mod:`repro.core.noise`)
and two fixed-step solvers operating on the whole ``(n_instances,
n_states)`` state matrix at once:

* ``em``   — Euler–Maruyama: strong order 0.5, cheapest per step;
* ``heun`` — stochastic Heun (drift-and-diffusion predictor/corrector):
  deterministic order 2, so its zero-noise limit tracks the RK solvers
  closely; converges to the Stratonovich solution for state-dependent
  noise. This is the default — the shipped paradigm dynamics
  (transmission lines, Kuramoto networks) have oscillatory Jacobians
  that marginally destabilize plain Euler–Maruyama.

Both substep each output-grid interval to respect ``max_step`` and land
exactly on the grid, and both return the same
:class:`~repro.sim.batch_solver.BatchTrajectory` the deterministic batch
solvers produce — ensemble statistics, percentile bands, and the spread
helpers all work unchanged on noisy ensembles.

Reproducibility contract: a Wiener stream is fully determined by
``(noise_seed, element, path)`` and the step sequence; with an unchanged
output grid and ``max_step``, rerunning a trial replays the identical
noise realization. Varying the noise seed — *not* the mismatch seed —
models independent thermal-noise trials of one fabricated chip.
"""

from __future__ import annotations

import math

import numpy as np

from repro import telemetry
from repro.core.compiler import compile_graph
from repro.core.graph import DynamicalGraph
from repro.core.noise import stream as _wiener_stream
from repro.core.odesystem import OdeSystem
from repro.core.simulator import Trajectory
from repro.errors import SimulationError

from repro.sim.array_api import resolve_array_backend
from repro.sim.batch_codegen import BatchRhs, compile_batch
from repro.sim.batch_solver import (BatchTrajectory, _batch_backend,
                                    _output_grid, _resolve_max_step,
                                    freeze_converged)

#: Methods handled by :func:`solve_sde`.
SDE_METHODS = ("heun", "em")


class WienerSource:
    """Deterministic batched Wiener increments.

    One PCG64 stream per ``(noise_seed, element, path)`` triple (the
    :mod:`repro.core.noise` hashing scheme); increments are drawn in
    blocks of ``block`` solver steps so memory stays bounded at
    ``n_instances * n_paths * block`` doubles regardless of how long the
    transient runs.

    :param noise_seeds: one seed token per batch instance (ints or
        strings; the noisy-ensemble driver passes ``"chip:trial"``).
    :param paths: the batch's Wiener identities, ``(element, path)``.
    """

    def __init__(self, noise_seeds, paths, block: int = 256):
        if block < 1:
            raise SimulationError(f"block must be >= 1, got {block}")
        self.noise_seeds = list(noise_seeds)
        self.paths = list(paths)
        self.block = int(block)
        self._generators: list[list[np.random.Generator]] | None = None
        self._buffer: np.ndarray | None = None
        #: First step index held by the buffer / first step not yet
        #: drawn from the generators. Each stream yields sample k at
        #: position k, so the realization is block-size independent.
        self._buffer_start = 0
        self._drawn = 0

    def _ensure_generators(self):
        if self._generators is None:
            self._generators = [
                [_wiener_stream(seed, element, path)
                 for element, path in self.paths]
                for seed in self.noise_seeds]

    def normals(self, step: int) -> np.ndarray:
        """Standard-normal draws for solver step ``step``: shape
        ``(n_instances, n_paths)``. Steps must be visited in
        non-decreasing order (the fixed-step solvers do; rewinding past
        the current block would desynchronize the streams)."""
        if not self.paths:
            return np.zeros((len(self.noise_seeds), 0))
        if step >= self._drawn:
            self._advance_to(step)
        if step < self._buffer_start:
            raise SimulationError(
                "WienerSource steps must be consumed in order (asked "
                f"for {step}, buffer starts at {self._buffer_start})")
        # Copy: the buffer is reused across blocks, so a returned view
        # would silently mutate when the next block is drawn.
        return self._buffer[:, :, step - self._buffer_start].copy()

    def _advance_to(self, step: int):
        self._ensure_generators()
        if self._buffer is None:
            self._buffer = np.empty(
                (len(self.noise_seeds), len(self.paths), self.block))
        while self._drawn <= step:
            for row, generators in enumerate(self._generators):
                for col, generator in enumerate(generators):
                    self._buffer[row, col, :] = \
                        generator.standard_normal(self.block)
            self._buffer_start = self._drawn
            self._drawn += self.block


def _substep_plan(grid: np.ndarray, max_step: float):
    """Per-interval (h, n_sub) so steps respect ``max_step`` and land on
    the grid; also the running global step offset for Wiener indexing."""
    plan = []
    offset = 0
    for k in range(len(grid) - 1):
        dt = float(grid[k + 1] - grid[k])
        n_sub = max(1, math.ceil(dt / max_step))
        plan.append((float(grid[k]), dt / n_sub, n_sub, offset))
        offset += n_sub
    return plan, offset


def _scatter(contrib, state_index: np.ndarray, n_states: int,
             backend=None):
    """Accumulate per-term contributions ``(n_instances, n_terms)`` onto
    their target states: returns ``(n_instances, n_states)``. Multiple
    terms may share a state (the backend's scatter-add handles the
    duplicates)."""
    B = backend if backend is not None else resolve_array_backend(None)
    acc = B.xp.zeros((n_states, contrib.shape[0]), dtype=B.dtype)
    return B.index_add(acc, state_index, contrib.T).T


def _sde_loop(batch: BatchRhs, work_grid: np.ndarray, plan, wiener,
              heun: bool, noisy: bool, freeze_tol: float | None,
              rtol: float, atol: float, backend):
    """The fixed-step Euler–Maruyama / stochastic-Heun sweep over one
    substep plan: backend arrays throughout, value-identical
    ``xp.where`` row pinning for the freeze masks, host transfer only
    where accepted grid states land in the output buffer."""
    B = backend
    xp = B.xp
    n_states = batch.n_states
    state_index = batch.term_state_index
    path_index = batch.term_path_index
    y = B.asarray(batch.y0)
    out = np.empty((y.shape[0], n_states, len(work_grid)),
                   dtype=B.dtype)  # ark: host-boundary
    out[:, :, 0] = B.to_numpy(y)
    frozen = xp.zeros(y.shape[0], dtype=bool)
    nfev = 0
    t_end = work_grid[-1]
    for k, (t_start, h, n_sub, offset) in enumerate(plan):
        if bool(frozen.all()):
            # Every instance holds constant: fill the remaining grid
            # without stepping (frozen rows would be pinned anyway).
            out[:, :, k + 1:] = B.to_numpy(y)[:, :, None]
            break
        t = t_start
        sqrt_h = math.sqrt(h)
        hold = y if bool(frozen.any()) else None
        for sub in range(n_sub):
            if noisy:
                xi = wiener.normals(offset + sub)
                dw = sqrt_h * xi[:, path_index]
                g0 = _scatter(batch.diffusion(t, y) * dw, state_index,
                              n_states, B)
            else:
                g0 = 0.0
            f0 = batch(t, y)
            nfev += 1
            if heun:
                y_pred = y + h * f0 + g0
                f1 = batch(t + h, y_pred)
                nfev += 1
                if noisy:
                    g1 = _scatter(batch.diffusion(t + h, y_pred) * dw,
                                  state_index, n_states, B)
                else:
                    g1 = 0.0
                y = y + 0.5 * h * (f0 + f1) + 0.5 * (g0 + g1)
            else:
                y = y + h * f0 + g0
            if hold is not None:
                # Pinned rows: frozen instances hold their value (all
                # batch arithmetic is row-local, so their columns
                # cannot perturb active siblings).
                y = xp.where(frozen[:, None], hold, y)
            t += h
        if freeze_tol is not None:
            # Diverged rows (a stiff outlier going non-finite) freeze
            # at their last grid value instead of failing the batch.
            bad = ~frozen & ~xp.all(xp.isfinite(y), axis=1)
            if bool(bad.any()):
                y = xp.where(bad[:, None], B.asarray(out[:, :, k]), y)
                frozen = frozen | bad
        out[:, :, k + 1] = B.to_numpy(y)
        t_next = float(work_grid[k + 1])
        if freeze_tol is not None and t_next < t_end and \
                not bool(frozen.all()):
            remaining = float(t_end - t_next)
            f = batch(t_next, y)
            nfev += 1
            settle = freeze_converged(y, f, remaining, rtol, atol,
                                      freeze_tol, xp)
            if noisy and bool(settle.any()):
                # The drift has settled — but freeze only where the
                # noise cannot move the instance beyond tolerance
                # either: |g| scaled by the remaining span's Wiener
                # deviation must stay below the same bound.
                amplitude = xp.abs(batch.diffusion(t_next, y))
                g_state = _scatter(amplitude, state_index, n_states, B)
                scale = atol + rtol * xp.abs(y)
                wiggle = g_state * math.sqrt(remaining)
                settle = settle & (
                    xp.sqrt(xp.mean((wiggle / scale) ** 2, axis=1))
                    <= freeze_tol)
            frozen = frozen | (~frozen & settle)
    return out, frozen, nfev


def solve_sde(batch: BatchRhs | list[OdeSystem],
              t_span: tuple[float, float], *, noise_seeds=None,
              n_points: int = 500, method: str = "heun",
              t_eval=None, max_step: float | None = None,
              block: int = 256, freeze_tol: float | None = None,
              rtol: float = 1e-7, atol: float = 1e-9,
              array_backend=None) -> BatchTrajectory:
    """Integrate a structurally compatible stochastic ensemble.

    :param batch: a compiled :class:`BatchRhs` or a list of systems.
    :param noise_seeds: one noise-seed token per instance (defaults to
        ``0..n-1``). Instances with equal tokens see identical noise.
    :param method: ``heun`` (default) or ``em``.
    :param max_step: substep cap; defaults to 1/64 of the span like the
        deterministic solvers. SDE accuracy is step-limited (no
        adaptivity), so dense output grids double as accuracy control.
    :param block: Wiener pre-draw block length (memory/speed knob; the
        realization is block-size independent).
    :param freeze_tol: per-instance step masks. An instance freezes —
        its row is pinned at the current state — when both its drift
        extrapolated over the remaining span *and* its diffusion
        amplitude scaled by the remaining span's Wiener deviation stay
        below ``freeze_tol`` times the tolerance scale
        (``atol + rtol * |y|``), i.e. neither the deterministic flow
        nor the noise can move it beyond tolerance anymore; and an
        instance whose state goes non-finite mid-sweep (a diverged
        stiff outlier) freezes at its last grid value instead of
        failing the whole batch. Once every instance is frozen the
        remaining grid fills without further evaluations. Freezing is
        decided per row from row-local data only, so masked runs stay
        bit-identical under sharding. ``None`` (default) disables
        masking — exact legacy behavior.
    :param rtol:/:param atol: tolerance scale of the freeze criterion
        (the fixed-step solvers have no adaptive error control; these
        only steer ``freeze_tol``).
    :param array_backend: array namespace the solve runs on (spec
        string, :class:`~repro.sim.array_api.ArrayBackend`, or ``None``
        for numpy). Wiener draws always come from the host-side
        deterministic streams, so the *realization* is backend-
        independent; a precompiled ``batch`` carries its own backend
        and a conflicting request raises.
    """
    backend = _batch_backend(batch, array_backend)
    if not isinstance(batch, BatchRhs):
        batch = compile_batch(batch, array_backend=backend)
    if method not in SDE_METHODS:
        raise SimulationError(
            f"unknown SDE method {method!r}; expected one of "
            f"{', '.join(SDE_METHODS)}")
    if noise_seeds is None:
        noise_seeds = range(batch.n_instances)
    noise_seeds = list(noise_seeds)
    if len(noise_seeds) != batch.n_instances:
        raise SimulationError(
            f"{len(noise_seeds)} noise seeds for "
            f"{batch.n_instances} instances")
    grid = _output_grid(t_span, n_points, t_eval)
    t0 = float(t_span[0])
    if grid[0] < t0:
        raise SimulationError(
            f"t_eval starts at {grid[0]} before the span start {t0}")
    preroll = grid[0] > t0
    work_grid = np.concatenate(([t0], grid)) if preroll else grid
    max_step = _resolve_max_step(max_step,
                                 work_grid[-1] - work_grid[0])

    noisy = batch.has_noise
    wiener = backend.wiener_source(noise_seeds,
                                   batch.wiener_paths if noisy else [],
                                   block=block)
    plan, _total = _substep_plan(work_grid, max_step)

    if freeze_tol is not None and freeze_tol <= 0.0:
        raise SimulationError(
            f"freeze_tol must be > 0 (or None), got {freeze_tol}")

    out, frozen, nfev = _sde_loop(batch, work_grid, plan, wiener,
                                  method == "heun", noisy, freeze_tol,
                                  rtol, atol, backend)
    frozen = backend.to_numpy(frozen)
    if telemetry.enabled():
        telemetry.add("solver.sde_solves")
        telemetry.add(f"solver.array_backend.{backend.name}")
        telemetry.add("solver.nfev", nfev)
        if freeze_tol is not None:
            telemetry.add("solver.frozen_rows", int(frozen.sum()))
    if preroll:
        out = out[:, :, 1:]
    if not np.all(np.isfinite(out)):
        raise SimulationError(
            f"sde {method} produced non-finite states for "
            f"{batch.systems[0].graph.name}; reduce max_step (explicit "
            "fixed-step stability) or the noise amplitude")
    return BatchTrajectory(t=grid, y=out, systems=batch.systems,
                           frozen=frozen if freeze_tol is not None
                           else None, nfev=nfev)


def simulate_sde(target: OdeSystem | DynamicalGraph,
                 t_span: tuple[float, float], *, noise_seed=0,
                 n_points: int = 500, method: str = "heun",
                 t_eval=None, max_step: float | None = None,
                 ) -> Trajectory:
    """One noisy transient of a single system — the serial counterpart
    of :func:`solve_sde` (and the baseline the batched path is
    benchmarked against). ``noise_seed`` selects the realization."""
    system = (compile_graph(target)
              if isinstance(target, DynamicalGraph) else target)
    batch = solve_sde(compile_batch([system]), t_span,
                      noise_seeds=[noise_seed], n_points=n_points,
                      method=method, t_eval=t_eval, max_step=max_step)
    return batch.instance(0)
