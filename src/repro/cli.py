"""Command-line interface: run Ark programs from ``.ark`` files.

Implements the §4.6 user workflow without writing Python::

    python -m repro info program.ark
    python -m repro validate program.ark --func br-func --arg br=1
    python -m repro equations program.ark --func br-func --arg br=0
    python -m repro simulate program.ark --func br-func --arg br=1 \
        --t-end 8e-8 --node OUT_V --csv out.csv
    python -m repro ensemble program.ark --func br-func --arg br=1 \
        --t-end 8e-8 --seeds 64 --node OUT_V --csv spread.csv
    python -m repro ensemble program.ark --func noisy-cell \
        --t-end 5.0 --seeds 4 --trials 16 --node x --csv noise.csv
    python -m repro ensemble program.ark --func br-func --arg br=1 \
        --t-end 8e-8 --seeds 256 --engine pool --processes 8 --stream
    python -m repro dot program.ark --func br-func --arg br=1

(``repro noise`` remains as a deprecated alias of ``repro ensemble
--trials`` and forwards through the same unified driver.)

Paradigm languages ship with the package, so an ``.ark`` file may use
``tln``/``gmc-tln``/``sw-tln``/``ns-tln``/``cnn``/``hw-cnn``/``obc``/
``ofs-obc``/``intercon-obc``/``color-obc``/``ns-obc``/``gpac``/
``hw-gpac``/``fhn``/``hw-fhn`` without redefining them (pass
``--no-prelude`` to disable).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

import numpy as np

from repro.core.compiler import compile_graph
from repro.core.export import to_dot
from repro.core.function import ArkFunction
from repro.core.simulator import simulate
from repro.core.validator import validate
from repro.errors import ArkError
from repro.lang import parse_program
from repro.lang.unparse import unparse_function, unparse_language


def _prelude_languages():
    """The shipped paradigm DSLs, importable from .ark files."""
    from repro.paradigms.cnn import cnn_language, hw_cnn_language
    from repro.paradigms.fhn import fhn_language, hw_fhn_language
    from repro.paradigms.gpac import gpac_language, hw_gpac_language
    from repro.paradigms.obc import (color_obc_language,
                                     intercon_obc_language,
                                     obc_language, ofs_obc_language)
    from repro.paradigms.obc.noisy import ns_obc_language
    from repro.paradigms.tln import (gmc_tln_language, ns_tln_language,
                                     sw_tln_language, tln_language)
    return {
        "tln": tln_language(),
        "gmc-tln": gmc_tln_language(),
        "cnn": cnn_language(),
        "hw-cnn": hw_cnn_language(),
        "obc": obc_language(),
        "ofs-obc": ofs_obc_language(),
        "intercon-obc": intercon_obc_language(),
        "color-obc": color_obc_language(),
        "gpac": gpac_language(),
        "hw-gpac": hw_gpac_language(),
        "sw-tln": sw_tln_language(),
        "ns-tln": ns_tln_language(),
        "ns-obc": ns_obc_language(),
        "fhn": fhn_language(),
        "hw-fhn": hw_fhn_language(),
    }


def _prelude_functions():
    from repro.paradigms.cnn import sat, sat_ni
    from repro.paradigms.tln import pulse
    return {"pulse": pulse, "sat": sat, "sat_ni": sat_ni}


def _parse_value(text: str):
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"argument value {text!r} is not a number") from None


def _load(args) -> tuple[dict, dict]:
    source = pathlib.Path(args.file).read_text()
    languages = _prelude_languages() if args.prelude else {}
    program = parse_program(source, languages=languages,
                            functions=_prelude_functions())
    return program.languages, program.functions


def _pick_function(functions: dict, name: str | None) -> ArkFunction:
    if name is None:
        if len(functions) != 1:
            raise ArkError(
                f"program defines {len(functions)} functions; pick one "
                f"with --func ({', '.join(functions) or 'none'})")
        return next(iter(functions.values()))
    try:
        return functions[name]
    except KeyError:
        raise ArkError(f"unknown function {name!r}; available: "
                       f"{', '.join(functions) or 'none'}") from None


def _invoke(args) -> "DynamicalGraph":  # noqa: F821 (doc only)
    _, functions = _load(args)
    function = _pick_function(functions, args.func)
    arguments = {}
    for pair in args.arg or []:
        if "=" not in pair:
            raise ArkError(f"--arg expects name=value, got {pair!r}")
        key, value = pair.split("=", 1)
        arguments[key] = _parse_value(value)
    return function.invoke(arguments, seed=args.seed)


def cmd_info(args) -> int:
    languages, functions = _load(args)
    for language in languages.values():
        print(unparse_language(language))
        print()
    for function in functions.values():
        print(unparse_function(function))
        print()
    return 0


def cmd_validate(args) -> int:
    graph = _invoke(args)
    report = validate(graph, backend=args.backend)
    print(f"graph {graph.name}: "
          f"{'VALID' if report.valid else 'INVALID'}")
    for violation in report.violations:
        print(f"  - {violation}")
    return 0 if report.valid else 1


def cmd_equations(args) -> int:
    graph = _invoke(args)
    system = compile_graph(graph)
    for equation in system.equations():
        print(equation)
    return 0


def cmd_simulate(args) -> int:
    graph = _invoke(args)
    report = validate(graph, backend=args.backend)
    report.raise_if_invalid()
    trajectory = simulate(graph, (0.0, args.t_end),
                          n_points=args.points, method=args.method)
    nodes = args.node or [
        node.name for node in graph.nodes if node.type.order >= 1]
    header = ["t"] + nodes
    columns = [trajectory.t] + [trajectory[node] for node in nodes]
    matrix = np.column_stack(columns)
    if args.csv:
        np.savetxt(args.csv, matrix, delimiter=",",
                   header=",".join(header), comments="")
        print(f"wrote {matrix.shape[0]} samples x "
              f"{matrix.shape[1]} columns to {args.csv}")
    else:
        print(",".join(header))
        step = max(1, len(trajectory.t) // args.print_rows)
        for row in matrix[::step]:
            print(",".join(f"{value:.6g}" for value in row))
    return 0


class _CliFactory:
    """The ensemble command's ``factory(seed)`` as a module-level class
    so it pickles — the persistent ``pool`` backend (and ``shard``/
    ``--processes``) rebuild instances inside worker processes. The
    parent reuses the already-validated (and, on the noisy path,
    compiled) first instance; that cached object is dropped from the
    pickled state — workers rebuild every seed through ``invoke`` —
    because compiled systems rarely pickle. Falls back gracefully: if
    the parsed function itself does not pickle, the plan layer's
    pre-flight probe keeps everything in-process."""

    def __init__(self, function, arguments, seed_base, first_target):
        self.function = function
        self.arguments = arguments
        self.seed_base = seed_base
        self.first_target = first_target

    def __call__(self, seed):
        if seed == self.seed_base and self.first_target is not None:
            return self.first_target
        return self.function.invoke(self.arguments, seed=seed)

    def __getstate__(self):
        state = dict(self.__dict__)
        state["first_target"] = None
        return state


def _stats_columns(nodes, grid, matrix_for):
    """The per-node ensemble statistics block both sweep flavors emit:
    mean/std/p05/p95 columns over ``matrix_for(node)`` (an
    ``(n_runs, n_t)`` matrix), prefixed by the time column. Returns
    ``(header, matrix)`` ready for CSV/stdout."""
    header = ["t"]
    columns = [grid]
    for node in nodes:
        matrix = matrix_for(node)
        header += [f"{node}_mean", f"{node}_std", f"{node}_p05",
                   f"{node}_p95"]
        columns += [matrix.mean(axis=0), matrix.std(axis=0),
                    np.percentile(matrix, 5.0, axis=0),
                    np.percentile(matrix, 95.0, axis=0)]
    return header, np.column_stack(columns)


def cmd_ensemble(args) -> int:
    """Monte-Carlo sweep through the unified execution-plan driver:
    deterministic mismatch ensembles by default, (chips x trials)
    transient-noise sweeps with ``--trials``."""
    import time

    from repro.sim import BATCH_METHODS, SDE_METHODS, run_ensemble

    if args.seeds < 1:
        raise ArkError(f"--seeds must be >= 1, got {args.seeds}")
    noisy = args.trials is not None
    if noisy:
        if args.trials < 1:
            raise ArkError(f"--trials must be >= 1, got {args.trials}")
        if args.sde_method not in SDE_METHODS:
            raise ArkError(
                f"unknown SDE method {args.sde_method!r}; expected "
                f"one of {', '.join(SDE_METHODS)}")
    elif args.noise_seed is not None:
        raise ArkError(
            "--noise-seed was given without --trials; pass --trials N "
            "to request a transient-noise sweep")
    scipy_methods = ("RK23", "RK45", "DOP853", "Radau", "BDF", "LSODA")
    if args.method not in BATCH_METHODS + scipy_methods:
        raise ArkError(
            f"unknown method {args.method!r}; expected one of "
            f"{', '.join(BATCH_METHODS + scipy_methods)}")
    _, functions = _load(args)
    function = _pick_function(functions, args.func)
    arguments = {}
    for pair in args.arg or []:
        if "=" not in pair:
            raise ArkError(f"--arg expects name=value, got {pair!r}")
        key, value = pair.split("=", 1)
        arguments[key] = _parse_value(value)
    seeds = range(args.seed_base, args.seed_base + args.seeds)

    first = function.invoke(arguments, seed=args.seed_base)
    validate(first, backend=args.backend).raise_if_invalid()
    first_target = first

    if noisy:
        from repro.core.compiler import compile_graph
        from repro.sim import compile_batch

        # Judge on the *folded* batch: a noise() term whose amplitude
        # is 0 for this invocation compiles away entirely. The compiled
        # system is reused by the ensemble (the factory hands it back),
        # so chip 0 is compiled exactly once.
        first_system = compile_graph(first)
        if not compile_batch([first_system]).has_noise:
            raise ArkError(
                f"function {function.name} compiles to a deterministic "
                "system (no live noise() terms or ns annotations); "
                "drop --trials to run the mismatch sweep")
        first_target = first_system

    # The validated first instance is reused, not rebuilt (workers
    # rebuild it — see _CliFactory.__getstate__).
    factory = _CliFactory(function, arguments, args.seed_base,
                          first_target)

    cache = args.cache_dir if args.cache_dir else None
    metrics_out = getattr(args, "metrics_out", None)
    trace = getattr(args, "trace", False)
    trace_out = getattr(args, "trace_out", None)
    progress = None
    if getattr(args, "progress", False):
        from repro.telemetry import auto_progress

        progress = auto_progress()
    report = None
    import contextlib
    if metrics_out or trace or trace_out:
        # One collection window covers the full run *and* the stream
        # drain, so pool waits and chunk arrivals land in the report.
        from repro.telemetry import RunReport, collect_metrics

        report = RunReport()
        window = collect_metrics(
            into=report,
            meta={"driver": "cli.ensemble", "file": str(args.file),
                  "engine": args.engine, "seeds": args.seeds,
                  **({"array_backend": args.array_backend}
                     if args.array_backend else {}),
                  **({"trials": args.trials} if noisy else {})})
    else:
        window = contextlib.nullcontext()
    start = time.perf_counter()
    with window:
        result = run_ensemble(factory, seeds, (0.0, args.t_end),
                              n_points=args.points, method=args.method,
                              engine=args.engine, dense=args.dense,
                              processes=args.processes, cache=cache,
                              shard_min=args.shard_min,
                              max_step=args.max_step,
                              freeze_tol=args.freeze_tol,
                              trials=args.trials,
                              noise_seed=(args.noise_seed or 0) if noisy
                              else None,
                              sde_method=args.sde_method,
                              **{key: value for key, value in
                                 (("rtol", getattr(args, "sde_rtol",
                                                   None)),
                                  ("atol", getattr(args, "sde_atol",
                                                   None)))
                                 if noisy and value is not None},
                              array_backend=getattr(
                                  args, "array_backend", None),
                              schedule=args.schedule,
                              overshard=args.overshard,
                              pin_workers=args.pin_workers,
                              stream=args.stream, progress=progress)
        if args.stream:
            # Drain the chunk stream, narrating each finished group,
            # then reassemble — the emitted statistics/CSV are
            # bit-identical to the barriered run (test-enforced).
            from repro.sim import assemble_chunks

            chunks = []
            for chunk in result:
                chunks.append(chunk)
                rows = chunk.batches[0].n_instances if chunk.batches \
                    else len(chunk.indices)
                flavor = "serial" if not chunk.batches else (
                    "SDE" if noisy else "batched")
                print(f"[stream] group {chunk.order}: {rows} {flavor} "
                      f"row(s) covering {len(chunk.indices)} seed(s) "
                      f"at {time.perf_counter() - start:.2f}s")
            result = assemble_chunks(chunks, list(seeds),
                                     trials=args.trials)
    elapsed = time.perf_counter() - start

    nodes = args.node or [
        node.name for node in first.nodes if node.type.order >= 1]
    if noisy:
        grid = result.batches[0].t
        stacked = {node: np.concatenate([batch.state(node)
                                         for batch in result.batches])
                   for node in nodes}
        header, matrix = _stats_columns(nodes, grid, stacked.__getitem__)
        total = args.seeds * args.trials
        print(f"{args.seeds} chip(s) x {args.trials} trial(s) = "
              f"{total} noisy runs in {elapsed:.2f}s "
              f"({len(result.batches)} SDE batch(es), method "
              f"{args.sde_method})")
    else:
        from repro.analysis import ensemble_matrix

        grid = result.trajectories[0].t
        # The fully batched common case already holds stacked storage;
        # mixed serial/batched ensembles are sampled onto the shared
        # grid.
        fully_batched = len(result.batches) == 1 and \
            not result.serial_indices
        header, matrix = _stats_columns(
            nodes, grid,
            lambda node: result.batches[0].state(node) if fully_batched
            else ensemble_matrix(result.trajectories, node, grid))
        print(f"{len(result)} instances in {elapsed:.2f}s "
              f"({result.batched_fraction * 100:.0f}% batched: "
              f"{len(result.batches)} batch(es), "
              f"{len(result.serial_indices)} serial)")
    if args.csv:
        np.savetxt(args.csv, matrix, delimiter=",",
                   header=",".join(header), comments="")
        print(f"wrote {matrix.shape[0]} samples x "
              f"{matrix.shape[1]} columns to {args.csv}")
    else:
        print(",".join(header))
        step = max(1, len(grid) // args.print_rows)
        for row in matrix[::step]:
            print(",".join(f"{value:.6g}" for value in row))
    if report is not None:
        if trace:
            from repro.telemetry import render_report

            print()
            print(render_report(report))
        if metrics_out:
            report.save(metrics_out)
            print(f"wrote run metrics (schema v{report.schema}) "
                  f"to {metrics_out}")
        if trace_out:
            from repro.telemetry import export_trace
            from repro.telemetry.trace import worker_lanes

            export_trace(report, trace_out)
            lanes = worker_lanes(report)
            lane_note = (f", {len(lanes)} worker lane(s)" if lanes
                         else "")
            print(f"wrote Chrome trace to {trace_out}{lane_note} — "
                  f"open in Perfetto (ui.perfetto.dev) or "
                  f"chrome://tracing")
    return 0


def cmd_report(args) -> int:
    """Render, diff, validate, or trace-export saved
    :class:`~repro.telemetry.RunReport` JSONs (as written by ``repro
    ensemble --metrics-out``)."""
    import json

    from repro.telemetry import (RunReport, diff_data, diff_reports,
                                 render_report, validate_report)

    if len(args.files) > 2:
        raise ArkError(
            f"report takes one file (render) or two (diff), got "
            f"{len(args.files)}")
    loaded = []
    for path in args.files:
        try:
            data = json.loads(pathlib.Path(path).read_text())
        except (OSError, ValueError) as error:
            raise ArkError(f"cannot read {path}: {error}") from None
        problems = validate_report(data)
        if problems:
            detail = "; ".join(problems)
            if args.validate:
                print(f"{path}: INVALID ({detail})")
                return 1
            raise ArkError(f"{path} is not a valid RunReport: {detail}")
        loaded.append(RunReport.from_dict(data))
    if args.validate:
        for path, rep in zip(args.files, loaded):
            print(f"{path}: OK (schema v{rep.schema})")
        return 0
    if args.export_trace:
        if len(loaded) != 1:
            raise ArkError("--export-trace takes exactly one report")
        from repro.telemetry import export_trace

        export_trace(loaded[0], args.export_trace)
        print(f"wrote Chrome trace to {args.export_trace} — open in "
              f"Perfetto (ui.perfetto.dev) or chrome://tracing")
        return 0
    if len(loaded) == 1:
        if args.json:
            print(json.dumps(loaded[0].to_dict(), indent=2))
        else:
            print(render_report(loaded[0]))
    elif args.json:
        print(json.dumps(diff_data(loaded[0], loaded[1],
                                   label_a=args.files[0],
                                   label_b=args.files[1]), indent=2))
    else:
        print(diff_reports(loaded[0], loaded[1],
                           label_a=args.files[0], label_b=args.files[1]))
    return 0


class _BenchTlineFactory:
    """Picklable factory behind the built-in bench workloads (pool
    workers rebuild instances from it, so it must live at module
    level)."""

    def __call__(self, seed):
        from repro.paradigms.tln import mismatched_tline

        return mismatched_tline("gm", seed=seed)


def _bench_workloads(smoke: bool) -> dict:
    """The named workloads ``repro bench run`` knows how to execute.

    Sizes are baked into the names (``tline_ode[8x60]``) so smoke and
    full runs accumulate *separate* histories — comparing a smoke wall
    time against a full baseline would always look like a 10x speedup.
    """
    seeds = 8 if smoke else 48
    points = 60 if smoke else 200
    sde_seeds = 3 if smoke else 8
    trials = 2 if smoke else 6
    obc_trials = 4 if smoke else 12
    obc_points = 40 if smoke else 60
    return {
        f"tline_ode[{seeds}x{points}]": dict(
            kind="ode", seeds=seeds, n_points=points,
            t_span=(0.0, 8e-8)),
        f"tline_sde[{sde_seeds}x{trials}x{points}]": dict(
            kind="sde", seeds=sde_seeds, trials=trials,
            n_points=points, t_span=(0.0, 4e-8)),
        f"puf_ripple[{sde_seeds}x{trials}]": dict(
            kind="puf_ripple", seeds=sde_seeds, trials=trials,
            n_points=points),
        f"obc_sde_adaptive[{obc_trials}x{obc_points}]": dict(
            kind="obc_sde_adaptive", seeds=obc_trials,
            n_points=obc_points, t_span=(0.0, 100e-9),
            noise_sigma=10.0, rtol=3e-2, atol=3e-4),
    }


def _bench_once(spec: dict, workload: str):
    """One instrumented run of a bench workload; returns its
    RunReport. A fresh trajectory cache per run keeps every repeat
    paying the full integration (warm hits would poison the median)."""
    from repro.sim import run_ensemble
    from repro.sim.cache import TrajectoryCache
    from repro.telemetry import RunReport, collect_metrics

    report = RunReport()
    if spec["kind"] == "puf_ripple":
        # Correlated supply ripple: every diffusion term of each chip
        # is aliased onto one shared "supply" Wiener path, end to end
        # through the reliability driver.
        from repro.paradigms.tln import TLineSpec
        from repro.puf import PufDesign, puf_reliability

        design = PufDesign(spec=TLineSpec(n_segments=10),
                           branch_positions=(3, 6),
                           branch_lengths=(4, 6),
                           noise=1e-8, shared_supply=True)
        with collect_metrics(into=report,
                             meta={"driver": "repro.bench",
                                   "workload": workload}):
            puf_reliability(design, 2, seeds=range(spec["seeds"]),
                            trials=spec["trials"], n_bits=8,
                            n_points=spec["n_points"])
        return report
    if spec["kind"] == "obc_sde_adaptive":
        # The adaptive SDE controller on the stiff noisy OBC max-cut
        # ensemble (SHIL binarization Jacobian ~5e9 rad/s): each seed
        # is one trial with its own initial phases and Wiener path.
        from repro.paradigms.obc.noisy import MaxcutTrialFactory

        initials = tuple(
            tuple(row) for row in np.random.default_rng(1).uniform(
                0.0, 2.0 * np.pi, (spec["seeds"], 4)))
        factory = MaxcutTrialFactory(
            edges=((0, 1), (1, 2), (2, 3), (3, 0)), n_vertices=4,
            initials=initials, noise_sigma=spec["noise_sigma"])
        with collect_metrics(into=report,
                             meta={"driver": "repro.bench",
                                   "workload": workload}):
            run_ensemble(factory, range(spec["seeds"]), spec["t_span"],
                         n_points=spec["n_points"], trials=1,
                         sde_method="heun-adaptive",
                         rtol=spec["rtol"], atol=spec["atol"],
                         reference=False, cache=TrajectoryCache())
        return report
    if spec["kind"] == "ode":
        factory = _BenchTlineFactory()
        kwargs = {}
    else:
        from repro.paradigms.tln import TLineSpec
        from repro.paradigms.tln.noisy import NoisyTlineFactory

        factory = NoisyTlineFactory(TLineSpec(n_segments=3),
                                    noise=1e-9)
        kwargs = {"trials": spec["trials"]}
    with collect_metrics(into=report,
                         meta={"driver": "repro.bench",
                               "workload": workload}):
        run_ensemble(factory, range(spec["seeds"]), spec["t_span"],
                     n_points=spec["n_points"],
                     cache=TrajectoryCache(), **kwargs)
    return report


def _bench_select(names, requested) -> list[str]:
    """Resolve requested workload names against the known set: exact
    match, or prefix match up to the size bracket."""
    if not requested:
        return list(names)
    chosen = []
    for want in requested:
        hits = [name for name in names
                if name == want or name.split("[")[0] == want]
        if not hits:
            raise ArkError(
                f"unknown bench workload {want!r}; available: "
                f"{', '.join(names)}")
        chosen.extend(hits)
    return chosen


def cmd_bench(args) -> int:
    """Benchmark history + regression sentinel: ``run`` appends a
    median-of-N wall time per workload to the JSONL history, ``check``
    judges the newest entry against its own recent past (noise-aware:
    median baseline + MAD slack), ``compare`` diffs two workloads'
    latest entries, ``list`` shows what the history holds."""
    import json
    import statistics

    from repro.telemetry import history

    path = args.history
    specs = _bench_workloads(getattr(args, "smoke", False))

    if args.bench_command == "list":
        known = history.workloads(path)
        print(f"history: {path} "
              f"({len(history.load_history(path))} entries)")
        for name in known:
            entries = history.load_history(path, name)
            walls = [entry["wall_seconds"] for entry in entries]
            print(f"  {name}: {len(entries)} point(s), median "
                  f"{statistics.median(walls):.3f}s, latest "
                  f"{walls[-1]:.3f}s")
        if not known:
            print("  (empty — `repro bench run` appends entries)")
        return 0

    if args.bench_command == "run":
        for workload in _bench_select(list(specs), args.workloads):
            spec = specs[workload]
            reports = [_bench_once(spec, workload)
                       for _ in range(args.repeats)]
            reports.sort(key=lambda report: report.wall_seconds)
            median_report = reports[len(reports) // 2]
            entry = history.summarize(median_report, workload)
            history.append_entry(path, entry)
            walls = ", ".join(f"{report.wall_seconds:.3f}"
                              for report in reports)
            print(f"[bench] {workload}: median "
                  f"{median_report.wall_seconds:.3f}s of "
                  f"{args.repeats} run(s) [{walls}] -> {path} "
                  f"(sha {entry['sha']})")
        return 0

    if args.bench_command == "compare":
        entry_a = history.latest(path, args.a)
        entry_b = history.latest(path, args.b)
        missing = [name for name, entry in
                   ((args.a, entry_a), (args.b, entry_b))
                   if entry is None]
        if missing:
            raise ArkError(
                f"no history for workload(s) {', '.join(missing)} "
                f"in {path}")
        from repro.telemetry import diff_data, diff_reports

        report_a = history.entry_report(entry_a)
        report_b = history.entry_report(entry_b)
        if args.json:
            print(json.dumps(diff_data(report_a, report_b,
                                       label_a=args.a, label_b=args.b),
                             indent=2))
        else:
            print(diff_reports(report_a, report_b,
                               label_a=args.a, label_b=args.b))
        return 0

    # check: judge each workload's newest entry against its past.
    names = _bench_select(history.workloads(path) or list(specs),
                          args.workloads)
    failed = False
    verdicts = []
    for workload in names:
        newest = history.latest(path, workload)
        if newest is None:
            verdicts.append({"workload": workload,
                             "status": "insufficient-history",
                             "points": 0})
            continue
        measured = float(newest["wall_seconds"]) * args.scale
        verdict = history.check(
            path, workload, measured,
            rel_threshold=args.rel_threshold,
            noise_factor=args.noise_factor,
            min_history=args.min_history, exclude_latest=True)
        verdicts.append(verdict)
        if verdict["status"] == "regression":
            failed = True
    if args.json:
        print(json.dumps(verdicts, indent=2))
    else:
        for verdict in verdicts:
            status = verdict["status"]
            if status == "insufficient-history":
                print(f"[bench] {verdict['workload']}: "
                      f"{verdict['points']} baseline point(s) < "
                      f"{args.min_history} — soft pass (warn only)")
            else:
                print(f"[bench] {verdict['workload']}: {status} — "
                      f"measured {verdict['measured']:.3f}s vs "
                      f"allowed {verdict['allowed']:.3f}s "
                      f"(baseline {verdict['baseline']:.3f}s "
                      f"+ {args.rel_threshold * 100:.0f}% "
                      f"+ {args.noise_factor:g} x MAD "
                      f"{verdict['mad']:.3f}s, "
                      f"{verdict['points']} point(s))")
    return 1 if failed else 0


def cmd_noise(args) -> int:
    """Deprecated alias: ``repro noise`` forwards to ``repro ensemble
    --trials/--noise-seed/--sde-method`` through the unified
    execution-plan driver (outputs are bit-identical)."""
    print("warning: `repro noise` is deprecated; use `repro ensemble "
          "--trials N [--noise-seed B] [--sde-method heun|em]` "
          "(forwarding)", file=sys.stderr)
    args.sde_method = args.method
    args.method = "auto"
    # Options the trimmed-down alias parser does not expose.
    args.engine = getattr(args, "engine", "batch")
    args.dense = getattr(args, "dense", True)
    args.noise_seed = getattr(args, "noise_seed", 0)
    args.processes = getattr(args, "processes", None)
    args.freeze_tol = getattr(args, "freeze_tol", None)
    args.stream = getattr(args, "stream", False)
    args.schedule = getattr(args, "schedule", "even")
    args.overshard = getattr(args, "overshard", 1)
    args.pin_workers = getattr(args, "pin_workers", False)
    if not hasattr(args, "shard_min"):
        from repro.sim import ensemble as _ensemble

        args.shard_min = _ensemble.DEFAULT_SHARD_MIN
    return cmd_ensemble(args)


def cmd_dot(args) -> int:
    graph = _invoke(args)
    print(to_dot(graph, include_attrs=args.attrs))
    return 0


def cmd_languages(args) -> int:
    """Summarize the preloaded paradigm DSLs (no .ark file needed)."""
    languages = _prelude_languages()
    if args.name:
        try:
            chosen = languages[args.name]
        except KeyError:
            raise ArkError(
                f"unknown language {args.name!r}; available: "
                f"{', '.join(sorted(languages))}") from None
        print(unparse_language(chosen))
        return 0
    print(f"{'language':>14s} {'parent':>12s} {'node types':>30s} "
          f"{'rules':>6s} {'cstr':>5s}")
    for name in sorted(languages):
        language = languages[name]
        parent = language.parent.name if language.parent else "-"
        own_nodes = ",".join(sorted(language._node_types)) or "-"
        print(f"{name:>14s} {parent:>12s} {own_nodes:>30s} "
              f"{len(language.productions()):>6d} "
              f"{len(language.constraints()):>5d}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, needs_func=True):
        p.add_argument("file", help="path to the .ark program")
        p.add_argument("--no-prelude", dest="prelude",
                       action="store_false",
                       help="do not preload the paradigm DSLs")
        if needs_func:
            p.add_argument("--func", help="function to invoke "
                           "(defaults to the only one)")
            p.add_argument("--arg", action="append", metavar="k=v",
                           help="function argument (repeatable)")
            p.add_argument("--seed", type=int, default=None,
                           help="mismatch seed (fabricated instance)")

    p_info = sub.add_parser("info", help="pretty-print the program")
    common(p_info, needs_func=False)
    p_info.set_defaults(handler=cmd_info)

    p_validate = sub.add_parser("validate",
                                help="invoke and validate a function")
    common(p_validate)
    p_validate.add_argument("--backend", default="milp",
                            choices=("milp", "flow"))
    p_validate.set_defaults(handler=cmd_validate)

    p_eq = sub.add_parser("equations",
                          help="print the compiled ODE system")
    common(p_eq)
    p_eq.set_defaults(handler=cmd_equations)

    p_sim = sub.add_parser("simulate",
                           help="validate, compile, and simulate")
    common(p_sim)
    p_sim.add_argument("--t-end", type=float, required=True)
    p_sim.add_argument("--points", type=int, default=200)
    p_sim.add_argument("--method", default="RK45")
    p_sim.add_argument("--backend", default="milp",
                       choices=("milp", "flow"))
    p_sim.add_argument("--node", action="append",
                       help="node to output (repeatable; default: all "
                       "dynamic nodes)")
    p_sim.add_argument("--csv", help="write samples to a CSV file")
    p_sim.add_argument("--print-rows", type=int, default=20,
                       help="rows to print when not writing CSV")
    p_sim.set_defaults(handler=cmd_simulate)

    p_ens = sub.add_parser(
        "ensemble",
        help="Monte-Carlo sweep (unified plan driver): mismatch "
        "ensembles, or chips x trials transient noise with --trials")
    common(p_ens)
    p_ens.add_argument("--t-end", type=float, required=True)
    p_ens.add_argument("--seeds", type=int, default=16,
                       help="number of fabricated instances")
    p_ens.add_argument("--seed-base", type=int, default=0,
                       help="first mismatch seed (default 0)")
    p_ens.add_argument("--points", type=int, default=200)
    p_ens.add_argument("--method", default="auto",
                       help="auto (default), rkf45, rk4, or a scipy "
                       "method name (forces the serial path)")
    p_ens.add_argument("--trials", type=int, default=None,
                       help="noise realizations per chip: switches to "
                       "the transient-noise (SDE) sweep")
    p_ens.add_argument("--noise-seed", type=int, default=None,
                       help="first trial index of the noisy sweep "
                       "(shift for fresh realizations; default 0; "
                       "requires --trials)")
    p_ens.add_argument("--sde-method", default="heun",
                       help="SDE method with --trials: heun (default), "
                       "em, milstein, heun-adaptive, or em-adaptive")
    p_ens.add_argument("--sde-rtol", type=float, default=None,
                       help="relative tolerance of the adaptive SDE "
                       "controller (heun-adaptive/em-adaptive; "
                       "default 1e-7)")
    p_ens.add_argument("--sde-atol", type=float, default=None,
                       help="absolute tolerance of the adaptive SDE "
                       "controller (default 1e-9)")
    p_ens.add_argument("--max-step", type=float, default=None,
                       help="solver step cap (default span/64)")
    p_ens.add_argument("--freeze-tol", type=float, default=None,
                       help="per-instance step masks: converged "
                       "instances freeze instead of forcing the "
                       "worst-case step on the whole batch")
    p_ens.add_argument("--engine", default="batch",
                       choices=("batch", "serial", "shard", "pool",
                                "auto"))
    p_ens.add_argument("--array-backend", default=None,
                       metavar="NAME[:DTYPE]",
                       help="array namespace for the batched kernels "
                       "and solver loops: numpy (default, "
                       "bit-identical), numpy:float32, jax, or cupy "
                       "(the latter two require their packages); "
                       "non-numpy backends run in-process only "
                       "(--engine pool/shard refuse)")
    p_ens.add_argument("--backend", default="milp",
                       choices=("milp", "flow"))
    p_ens.add_argument("--processes", type=int, default=None,
                       help="process-pool width: batched groups of >= "
                       "--shard-min instances run on the persistent "
                       "zero-copy worker pool as per-core sub-batches "
                       "and serial fallbacks fan out one-per-worker")
    p_ens.add_argument("--schedule", default="even",
                       choices=("even", "cost"),
                       help="pool/shard row-split policy: even "
                       "(default, near-equal row counts) or cost "
                       "(shards cut at predicted-cost quantiles from "
                       "the persisted cost profile, stiffest group "
                       "submitted first); bit-identical to even for "
                       "every method")
    p_ens.add_argument("--overshard", type=int, default=1,
                       metavar="K",
                       help="shards per process for fixed-step "
                       "groups: K x --processes shards drain from "
                       "the pool's pull queue so fast workers steal "
                       "the tail of a skewed group (default 1)")
    p_ens.add_argument("--pin-workers", action="store_true",
                       help="pin pool workers round-robin to CPUs "
                       "(Linux sched_setaffinity; no-op elsewhere)")
    p_ens.add_argument("--stream", action="store_true",
                       help="stream per-group results as they finish "
                       "(prints one progress line per completed "
                       "group; final statistics/CSV are identical to "
                       "the barriered run)")
    from repro.sim.ensemble import DEFAULT_SHARD_MIN
    p_ens.add_argument("--shard-min", type=int,
                       default=DEFAULT_SHARD_MIN,
                       help="smallest batched group worth sharding "
                       f"across the pool (default {DEFAULT_SHARD_MIN})")
    p_ens.add_argument("--cache-dir", default=None,
                       help="directory for the on-disk trajectory "
                       "cache; reruns with identical structure, "
                       "attributes, grid, and options reuse stored "
                       "integrations bit-for-bit")
    p_ens.add_argument("--no-dense", dest="dense",
                       action="store_false",
                       help="disable rkf45 dense output (clip every "
                       "step to the output grid, the legacy behavior)")
    p_ens.add_argument("--node", action="append",
                       help="node to aggregate (repeatable; default: "
                       "all dynamic nodes)")
    p_ens.add_argument("--csv", help="write ensemble statistics "
                       "(mean/std/p05/p95 per node) to a CSV file")
    p_ens.add_argument("--print-rows", type=int, default=20,
                       help="rows to print when not writing CSV")
    p_ens.add_argument("--metrics-out", default=None, metavar="JSON",
                       help="collect run telemetry (solver/cache/pool/"
                       "shm counters, span tree) and write the "
                       "RunReport JSON here; results are bit-identical "
                       "with collection on or off")
    p_ens.add_argument("--trace", action="store_true",
                       help="collect run telemetry and pretty-print "
                       "the span tree and counters after the sweep")
    p_ens.add_argument("--trace-out", default=None, metavar="JSON",
                       help="collect run telemetry and export the "
                       "wall-clock timeline as Chrome Trace Event "
                       "JSON (parent spans + one lane per pool "
                       "worker); open in Perfetto or chrome://tracing")
    p_ens.add_argument("--progress", action="store_true",
                       help="live progress on stderr: a single-line "
                       "dashboard (groups done/total, instances/s, "
                       "cache hit-rate, pool busy, ETA) on a TTY, "
                       "periodic log lines otherwise")
    p_ens.set_defaults(handler=cmd_ensemble)

    p_report = sub.add_parser(
        "report",
        help="render one saved RunReport JSON, or diff two (as "
        "written by `repro ensemble --metrics-out`)")
    p_report.add_argument("files", nargs="+", metavar="report.json",
                          help="one file renders; two files diff")
    p_report.add_argument("--validate", action="store_true",
                          help="only check the files against the "
                          "RunReport schema (exit 1 on mismatch)")
    p_report.add_argument("--json", action="store_true",
                          help="machine-readable output: the "
                          "(migrated) report dict for one file, the "
                          "diff_data deltas for two — the same "
                          "comparator `repro bench check` and the CI "
                          "soft gate consume")
    p_report.add_argument("--export-trace", default=None,
                          metavar="JSON",
                          help="convert one saved report to Chrome "
                          "Trace Event JSON (open in Perfetto or "
                          "chrome://tracing); v1 reports export as a "
                          "degenerate all-at-offset-0 trace")
    p_report.set_defaults(handler=cmd_report)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark history + regression sentinel: run named "
        "workloads, append medians to a JSONL history, and check new "
        "numbers against the noise-aware baseline")
    from repro.telemetry.history import DEFAULT_PATH as _HISTORY_PATH
    bench_sub = p_bench.add_subparsers(dest="bench_command",
                                       required=True)

    def bench_common(p):
        p.add_argument("--history", default=_HISTORY_PATH,
                       metavar="JSONL",
                       help=f"history file (default {_HISTORY_PATH})")

    b_run = bench_sub.add_parser(
        "run", help="run workload(s) N times, append each median")
    bench_common(b_run)
    b_run.add_argument("workloads", nargs="*",
                       help="workload names (default: all built-ins; "
                       "prefix before the size bracket also matches)")
    b_run.add_argument("--smoke", action="store_true",
                       help="small sizes for CI (separate history "
                       "keys — sizes are part of workload names)")
    b_run.add_argument("--repeats", type=int, default=3,
                       help="runs per workload; the median is what "
                       "gets appended (default 3)")
    b_run.set_defaults(handler=cmd_bench)

    b_check = bench_sub.add_parser(
        "check",
        help="judge each workload's newest entry against its recent "
        "history (exit 1 on regression; <min-history points = soft "
        "pass)")
    bench_common(b_check)
    b_check.add_argument("workloads", nargs="*",
                         help="workloads to check (default: all in "
                         "the history)")
    b_check.add_argument("--smoke", action="store_true",
                         help="resolve default workload names at "
                         "smoke sizes")
    b_check.add_argument("--rel-threshold", type=float, default=0.25,
                         help="relative slowdown allowed over the "
                         "median baseline (default 0.25 = 25%%)")
    b_check.add_argument("--noise-factor", type=float, default=3.0,
                         help="extra slack in units of the history's "
                         "median absolute deviation (default 3)")
    b_check.add_argument("--min-history", type=int, default=3,
                         help="baseline points required for a hard "
                         "verdict; below this the check warns and "
                         "passes (default 3)")
    b_check.add_argument("--scale", type=float, default=1.0,
                         help="multiply the measured wall time "
                         "(testing aid: --scale 2.0 must turn a "
                         "clean history into a regression)")
    b_check.add_argument("--json", action="store_true",
                         help="print verdicts as JSON")
    b_check.set_defaults(handler=cmd_bench)

    b_compare = bench_sub.add_parser(
        "compare", help="diff the latest entries of two workloads")
    bench_common(b_compare)
    b_compare.add_argument("a", help="baseline workload name")
    b_compare.add_argument("b", help="candidate workload name")
    b_compare.add_argument("--json", action="store_true",
                           help="print diff_data deltas as JSON")
    b_compare.set_defaults(handler=cmd_bench)

    b_list = bench_sub.add_parser(
        "list", help="summarize the history file's workloads")
    bench_common(b_list)
    b_list.set_defaults(handler=cmd_bench)

    p_noise = sub.add_parser(
        "noise",
        help="deprecated alias for `ensemble --trials` (transient-"
        "noise sweep: chips x trials)")
    common(p_noise)
    p_noise.add_argument("--t-end", type=float, required=True)
    p_noise.add_argument("--seeds", type=int, default=4,
                         help="number of fabricated instances (chips)")
    p_noise.add_argument("--seed-base", type=int, default=0,
                         help="first mismatch seed (default 0)")
    p_noise.add_argument("--trials", type=int, default=8,
                         help="noise realizations per chip")
    p_noise.add_argument("--noise-seed", type=int, default=0,
                         help="first trial index (shift for fresh "
                         "realizations; default 0)")
    p_noise.add_argument("--points", type=int, default=200)
    p_noise.add_argument("--method", default="heun",
                         help="SDE method: heun (default) or em")
    p_noise.add_argument("--max-step", type=float, default=None,
                         help="fixed-step cap (default span/64)")
    p_noise.add_argument("--backend", default="milp",
                         choices=("milp", "flow"))
    p_noise.add_argument("--cache-dir", default=None,
                         help="directory for the on-disk trajectory "
                         "cache (keyed incl. noise seeds: identical "
                         "sweeps replay stored realizations "
                         "bit-for-bit)")
    p_noise.add_argument("--node", action="append",
                         help="node to aggregate (repeatable; default: "
                         "all dynamic nodes)")
    p_noise.add_argument("--csv", help="write noise statistics "
                         "(mean/std/p05/p95 per node) to a CSV file")
    p_noise.add_argument("--print-rows", type=int, default=20,
                         help="rows to print when not writing CSV")
    p_noise.set_defaults(handler=cmd_noise)

    p_dot = sub.add_parser("dot", help="emit Graphviz DOT")
    common(p_dot)
    p_dot.add_argument("--attrs", action="store_true",
                       help="include attribute values in labels")
    p_dot.set_defaults(handler=cmd_dot)

    p_langs = sub.add_parser(
        "languages", help="list the preloaded paradigm DSLs")
    p_langs.add_argument("name", nargs="?",
                         help="print one language's full definition")
    p_langs.set_defaults(handler=cmd_languages)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ArkError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (`repro report ... | head`):
        # stop quietly instead of dumping a traceback. Detach stdout
        # so interpreter shutdown doesn't trip over the dead pipe.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
