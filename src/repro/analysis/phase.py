"""Phase-folding helpers for oscillator readout (§7.2)."""

from __future__ import annotations

import math


def fold_phase(phase: float) -> float:
    """Fold an unbounded phase into [0, 2*pi)."""
    folded = math.fmod(phase, 2.0 * math.pi)
    if folded < 0:
        folded += 2.0 * math.pi
    return folded


def phase_distance(phase: float, target: float) -> float:
    """Circular distance between a phase and a target angle."""
    delta = abs(fold_phase(phase) - fold_phase(target))
    return min(delta, 2.0 * math.pi - delta)
