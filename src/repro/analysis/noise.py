"""Transient-noise analysis metrics.

Where :mod:`repro.analysis.spread` quantifies *inter-chip* variation
(fabrication mismatch across an ensemble), these helpers quantify
*intra-chip* variation: how far one chip's repeated noisy transients
wander from its deterministic reference, and how much usable signal
survives — the quantities behind PUF reliability and the OBC
quality-vs-noise tradeoff.
"""

from __future__ import annotations

import numpy as np

from repro.sim.noisy import NoisyEnsembleResult


def trial_matrix(result: NoisyEnsembleResult, chip_index: int,
                 node: str, times: np.ndarray) -> np.ndarray:
    """One chip's noise trials sampled at common times:
    shape (trials, n_t)."""
    times = np.asarray(times, dtype=float)
    batch, rows = result.trial_rows(chip_index)
    return batch.sample(node, times)[rows]


def trial_spread(result: NoisyEnsembleResult, node: str,
                 window: tuple[float, float],
                 n_samples: int = 100) -> np.ndarray:
    """Per-chip scalar noise spread: the mean pointwise standard
    deviation across that chip's trials inside the window. The
    intra-chip counterpart of
    :func:`repro.analysis.spread.window_spread`."""
    times = np.linspace(window[0], window[1], n_samples)
    return np.array([
        trial_matrix(result, chip, node, times).std(axis=0).mean()
        for chip in range(result.n_chips)])


def noise_snr(result: NoisyEnsembleResult, node: str,
              window: tuple[float, float],
              n_samples: int = 100) -> np.ndarray:
    """Per-chip signal-to-noise ratio inside the window: RMS of the
    deterministic reference over the mean trial deviation from it."""
    times = np.linspace(window[0], window[1], n_samples)
    ratios = []
    for chip in range(result.n_chips):
        reference = result.reference(chip).sample(node, times)
        trials = trial_matrix(result, chip, node, times)
        signal = float(np.sqrt(np.mean(reference ** 2)))
        deviation = float(
            np.sqrt(np.mean((trials - reference[None, :]) ** 2)))
        ratios.append(np.inf if deviation == 0.0
                      else signal / deviation)
    return np.array(ratios)


def bit_error_rate(reference_bits: np.ndarray,
                   trial_bits: np.ndarray) -> float:
    """Fraction of noisy response bits flipped vs. the reference.

    ``reference_bits`` is (n_chips, n_bits), ``trial_bits`` is
    (n_chips, trials, n_bits) — the shapes
    :func:`repro.puf.evaluate_puf_noisy` returns.
    """
    reference_bits = np.asarray(reference_bits, dtype=np.uint8)
    trial_bits = np.asarray(trial_bits, dtype=np.uint8)
    if not trial_bits.size:
        return 0.0
    return float((trial_bits != reference_bits[:, None, :]).mean())
