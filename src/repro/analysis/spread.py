"""Ensemble variation metrics (Figs. 4c/4d).

The paper simulates 100 mismatched instances of the linear t-line per
mismatch source and observes that the Gm-sensitive line "experiences a
much greater degree of variation across trials" than the Cint-sensitive
line inside the observation window — the finding that steers the PUF
design toward Gm mismatch. These helpers quantify that spread.

Every helper accepts either a list of serial
:class:`~repro.core.simulator.Trajectory` objects or a stacked
:class:`~repro.sim.batch_solver.BatchTrajectory` from the batched
ensemble engine — the latter samples all instances in one pass.
"""

from __future__ import annotations

import numpy as np

from repro.core.simulator import Trajectory
from repro.sim.batch_solver import BatchTrajectory


def ensemble_matrix(trajectories: list[Trajectory] | BatchTrajectory,
                    node: str, times: np.ndarray) -> np.ndarray:
    """Sample every trajectory at common times: shape (n_traj, n_t)."""
    times = np.asarray(times, dtype=float)
    if isinstance(trajectories, BatchTrajectory):
        return trajectories.sample(node, times)
    return np.stack([traj.sample(node, times) for traj in trajectories])


def ensemble_spread(trajectories: list[Trajectory] | BatchTrajectory,
                    node: str,
                    times: np.ndarray) -> dict[str, np.ndarray]:
    """Pointwise ensemble statistics at the given times."""
    matrix = ensemble_matrix(trajectories, node, times)
    return {
        "mean": matrix.mean(axis=0),
        "std": matrix.std(axis=0),
        "min": matrix.min(axis=0),
        "max": matrix.max(axis=0),
    }


def window_spread(trajectories: list[Trajectory] | BatchTrajectory,
                  node: str,
                  window: tuple[float, float], n_samples: int = 100,
                  ) -> float:
    """Scalar spread score: the mean pointwise ensemble standard
    deviation inside the observation window.

    This is the number the Fig. 4c/4d comparison boils down to — a
    variation-hungry PUF designer picks the mismatch source with the
    larger score.
    """
    times = np.linspace(window[0], window[1], n_samples)
    return float(ensemble_spread(trajectories, node, times)["std"].mean())


def percentile_band(trajectories: list[Trajectory] | BatchTrajectory,
                    node: str,
                    times: np.ndarray, lower: float = 5.0,
                    upper: float = 95.0,
                    ) -> dict[str, np.ndarray]:
    """Pointwise percentile envelope of the ensemble — the shaded bands
    a Fig. 4c/4d-style plot would draw."""
    if not 0.0 <= lower < upper <= 100.0:
        raise ValueError(f"percentiles must satisfy 0 <= lower < upper "
                         f"<= 100, got ({lower}, {upper})")
    matrix = ensemble_matrix(trajectories, node, times)
    return {
        "median": np.percentile(matrix, 50.0, axis=0),
        "lower": np.percentile(matrix, lower, axis=0),
        "upper": np.percentile(matrix, upper, axis=0),
    }
