"""Observation-window analysis (§2.2).

A TLN PUF reads its response from a voltage trajectory inside an
observation window. The window must capture the informative part of the
signal: the paper assigns 1e-8..3e-8 s to the linear line and widens it
to 1e-8..8e-8 s for the branched line "to ensure that at least one of the
signal echoes is captured in the response encoding".

:func:`observation_window` recovers such windows automatically: the
smallest interval containing every sample whose magnitude exceeds a
fraction of the trajectory's peak.
"""

from __future__ import annotations

import numpy as np

from repro.core.simulator import Trajectory
from repro.errors import SimulationError


def observation_window(trajectory: Trajectory, node: str,
                       threshold: float = 0.05,
                       ) -> tuple[float, float]:
    """Smallest [t_start, t_end] containing all samples with
    ``|v| >= threshold * max|v|``."""
    values = np.abs(trajectory[node])
    peak = values.max()
    if peak <= 0:
        raise SimulationError(
            f"node {node} trajectory is identically zero; no window")
    active = np.where(values >= threshold * peak)[0]
    return float(trajectory.t[active[0]]), float(trajectory.t[active[-1]])


def energy_capture(trajectory: Trajectory, node: str,
                   window: tuple[float, float]) -> float:
    """Fraction of the signal energy (integral of v^2) inside the
    window."""
    t = trajectory.t
    v = trajectory[node]
    energy = np.trapezoid(v * v, t)
    if energy <= 0:
        return 0.0
    mask = (t >= window[0]) & (t <= window[1])
    captured = np.trapezoid(np.where(mask, v * v, 0.0), t)
    return float(captured / energy)


def window_covers(window: tuple[float, float],
                  other: tuple[float, float]) -> bool:
    """True when ``window`` contains ``other`` entirely."""
    return window[0] <= other[0] and other[1] <= window[1]
