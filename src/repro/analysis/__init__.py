"""Trajectory analysis utilities used across the case studies.

* :mod:`repro.analysis.windows` — signal observation windows (§2.2: the
  linear line needs 1e-8..3e-8 s, the branched line 1e-8..8e-8 s to
  capture its echo);
* :mod:`repro.analysis.spread` — ensemble variation metrics (Figs. 4c/4d:
  Gm mismatch spreads trajectories far more than Cint mismatch);
* :mod:`repro.analysis.steadystate` — settling detection (CNN and OBC
  readouts happen at steady state);
* :mod:`repro.analysis.phase` — phase folding helpers for oscillator
  readout;
* :mod:`repro.analysis.sensitivity` — parameter sweeps and tornado
  rankings (the quantitative "where to spend fidelity effort" loop of
  the paper's design flow);
* :mod:`repro.analysis.noise` — intra-chip transient-noise metrics
  (trial spread, SNR, bit-error rate) over noisy ensembles.
"""

from repro.analysis.noise import (bit_error_rate, noise_snr,
                                  trial_matrix, trial_spread)
from repro.analysis.phase import fold_phase, phase_distance
from repro.analysis.sensitivity import (Sensitivity, SweepPoint,
                                        SweepResult, format_tornado,
                                        sweep, tornado)
from repro.analysis.spread import (ensemble_matrix, ensemble_spread,
                                   percentile_band, window_spread)
from repro.analysis.steadystate import is_settled, settling_time
from repro.analysis.windows import (energy_capture, observation_window,
                                    window_covers)

__all__ = [
    "Sensitivity",
    "SweepPoint",
    "SweepResult",
    "bit_error_rate",
    "energy_capture",
    "ensemble_matrix",
    "ensemble_spread",
    "fold_phase",
    "noise_snr",
    "trial_matrix",
    "trial_spread",
    "format_tornado",
    "is_settled",
    "observation_window",
    "percentile_band",
    "phase_distance",
    "settling_time",
    "sweep",
    "tornado",
    "window_covers",
    "window_spread",
]
