"""Parameter sensitivity sweeps for design-space exploration.

The paper's design flow has the domain specialist "explore different
analog design options" by re-simulating a computation across attribute
settings (§1.2, §2.4). This module packages that loop as a reusable
tool: sweep any attribute of any graph family, extract a scalar metric
per run, and rank parameters by how strongly they move the metric —
the quantitative version of "where should the analog designer spend
fidelity effort?".

Two entry points:

* :func:`sweep` — one parameter, explicit values, full metric curve;
* :func:`tornado` — many parameters, each nudged by ±delta around its
  nominal value; returns per-parameter sensitivities sorted by impact
  (the classic tornado-diagram data).

Both take a *factory* (parameter values -> dynamical graph), keeping
them paradigm-agnostic: the tests drive them with TLN, CNN, and GPAC
families alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.simulator import Trajectory, simulate


@dataclass(frozen=True)
class SweepPoint:
    """One run of a parameter sweep."""

    value: float
    metric: float


@dataclass(frozen=True)
class SweepResult:
    """A full one-parameter sweep."""

    parameter: str
    points: tuple[SweepPoint, ...]

    @property
    def values(self) -> np.ndarray:
        return np.array([p.value for p in self.points])

    @property
    def metrics(self) -> np.ndarray:
        return np.array([p.metric for p in self.points])

    @property
    def metric_range(self) -> float:
        """Peak-to-peak metric variation across the sweep."""
        metrics = self.metrics
        return float(metrics.max() - metrics.min())

    def argbest(self, maximize: bool = True) -> SweepPoint:
        """The sweep point with the best metric."""
        index = int(np.argmax(self.metrics) if maximize
                    else np.argmin(self.metrics))
        return self.points[index]


def sweep(factory: Callable[[float], object],
          metric: Callable[[Trajectory], float],
          values: Sequence[float], *,
          parameter: str = "parameter",
          t_span: tuple[float, float] = (0.0, 1.0),
          **simulate_options) -> SweepResult:
    """Simulate ``factory(v)`` for every value and collect the metric.

    :param factory: parameter value -> dynamical graph (or compiled
        system — anything :func:`repro.simulate` accepts).
    :param metric: trajectory -> scalar figure of merit.
    """
    points = []
    for value in values:
        trajectory = simulate(factory(float(value)), t_span,
                              **simulate_options)
        points.append(SweepPoint(float(value),
                                 float(metric(trajectory))))
    return SweepResult(parameter=parameter, points=tuple(points))


@dataclass(frozen=True)
class Sensitivity:
    """Local sensitivity of the metric to one parameter."""

    parameter: str
    nominal: float
    low_metric: float
    nominal_metric: float
    high_metric: float

    @property
    def swing(self) -> float:
        """Total metric excursion across the +/- nudge (the tornado
        bar length)."""
        return abs(self.high_metric - self.low_metric)

    @property
    def slope(self) -> float:
        """Central-difference d(metric)/d(parameter), unnormalized."""
        return self.high_metric - self.low_metric


def tornado(factory: Callable[..., object],
            metric: Callable[[Trajectory], float],
            nominals: dict[str, float], *,
            relative_delta: float = 0.1,
            t_span: tuple[float, float] = (0.0, 1.0),
            **simulate_options) -> list[Sensitivity]:
    """Rank parameters by metric impact under a ±delta perturbation.

    ``factory(**params)`` receives every parameter by name. Each
    parameter is swept to ``(1 - delta) * nominal`` and
    ``(1 + delta) * nominal`` while the others stay nominal (a
    parameter with nominal 0 is nudged by ±delta absolutely).

    :returns: sensitivities sorted by descending swing — the designer's
        priority list.
    """
    if not nominals:
        raise ValueError("tornado needs at least one parameter")
    if relative_delta <= 0:
        raise ValueError(
            f"relative_delta must be positive, got {relative_delta}")

    def run(params: dict[str, float]) -> float:
        trajectory = simulate(factory(**params), t_span,
                              **simulate_options)
        return float(metric(trajectory))

    nominal_metric = run(dict(nominals))
    results = []
    for name, nominal in nominals.items():
        step = (abs(nominal) * relative_delta
                if nominal != 0 else relative_delta)
        low = dict(nominals)
        low[name] = nominal - step
        high = dict(nominals)
        high[name] = nominal + step
        results.append(Sensitivity(
            parameter=name, nominal=nominal,
            low_metric=run(low), nominal_metric=nominal_metric,
            high_metric=run(high)))
    return sorted(results, key=lambda s: s.swing, reverse=True)


def format_tornado(sensitivities: list[Sensitivity],
                   width: int = 40) -> str:
    """ASCII tornado diagram: one bar per parameter, longest on top."""
    if not sensitivities:
        return "(no parameters)"
    biggest = max(s.swing for s in sensitivities) or 1.0
    lines = []
    for entry in sensitivities:
        bar = "#" * max(1, int(round(width * entry.swing / biggest)))
        lines.append(f"{entry.parameter:>16s} |{bar:<{width}s}| "
                     f"swing {entry.swing:.3g}")
    return "\n".join(lines)
