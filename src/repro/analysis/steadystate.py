"""Steady-state detection.

Both evaluation workloads read their answers at steady state (CNN output
pixels, OBC oscillator phases). A trajectory is *settled* over its tail
when the signal stops moving more than a tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.core.simulator import Trajectory


def is_settled(trajectory: Trajectory, node: str,
               tail_fraction: float = 0.2, tolerance: float = 1e-3,
               ) -> bool:
    """True when the node's value varies less than ``tolerance``
    (peak-to-peak) over the trailing ``tail_fraction`` of the run."""
    values = trajectory[node]
    tail = values[int(len(values) * (1.0 - tail_fraction)):]
    return bool(np.ptp(tail) <= tolerance)


def settling_time(trajectory: Trajectory, node: str,
                  tolerance: float = 1e-3) -> float | None:
    """Earliest time after which the node stays within ``tolerance`` of
    its final value; None when it never settles."""
    values = trajectory[node]
    final = values[-1]
    outside = np.where(np.abs(values - final) > tolerance)[0]
    if len(outside) == 0:
        return float(trajectory.t[0])
    last = outside[-1]
    # The final sample always matches itself; settling requires at
    # least one interior sample inside the tolerance band too.
    if last + 1 >= len(values) - 1:
        return None
    return float(trajectory.t[last + 1])
