"""Textual front-end for the Ark language (Fig. 6 grammar).

Parses programs written in the paper's concrete syntax — ``lang``
definitions with ``ntyp``/``etyp``/``prod``/``cstr``/``extern-func``
statements and ``func`` definitions — and lowers them onto the core
objects of :mod:`repro.core`.

Example::

    from repro.lang import parse_program

    program = parse_program('''
        lang tln {
            ntyp(1,sum) V {attr c=real[1e-10,1e-08], attr g=real[0,inf]};
            etyp E {};
            prod(e:E, s:V->s:V) s <= -s.g/s.c*var(s);
            cstr V {acc[match(1,1,E,V)]};
        }
    ''')
    tln = program.languages["tln"]
"""

from repro.lang.parser import parse
from repro.lang.lowering import (ParsedProgram, lower_program,
                                 parse_function, parse_language,
                                 parse_program)
from repro.lang.unparse import (unparse_chain, unparse_datatype,
                                unparse_function, unparse_language)

__all__ = [
    "ParsedProgram",
    "lower_program",
    "parse",
    "parse_function",
    "parse_language",
    "parse_program",
    "unparse_chain",
    "unparse_datatype",
    "unparse_function",
    "unparse_language",
]
