"""AST node definitions for the textual Ark front-end.

The parser produces these plain dataclasses; :mod:`repro.lang.lowering`
turns them into :class:`~repro.core.language.Language` and
:class:`~repro.core.function.ArkFunction` objects. Keeping the two stages
separate lets tests inspect the syntax tree without touching semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import expr as E


@dataclass(frozen=True)
class SigTAst:
    """A datatype annotation ``real[a,b] mm(s0,s1) ns(sigma,kind)`` /
    ``int[a,b]`` / ``lambd(a0,...)`` with an optional ``const``
    marker."""

    kind: str  # "real" | "int" | "lambda"
    lo: float | None = None
    hi: float | None = None
    mm: tuple[float, float] | None = None
    arity: int = 0
    const: bool = False
    ns: tuple[float, str] | None = None


@dataclass(frozen=True)
class AttrAst:
    """``attr name = SigT`` inside a type body."""

    name: str
    sig: SigTAst


@dataclass(frozen=True)
class InitAst:
    """``init(i) SigT`` inside a node type body."""

    index: int
    sig: SigTAst


@dataclass(frozen=True)
class NodeTypeAst:
    """``node-type(p, Reduc) name [inherit parent] { ... }``"""

    name: str
    order: int
    reduction: str
    inherits: str | None
    attrs: tuple[AttrAst, ...]
    inits: tuple[InitAst, ...]


@dataclass(frozen=True)
class EdgeTypeAst:
    """``edge-type [fixed] name [inherit parent] { ... }``"""

    name: str
    fixed: bool
    inherits: str | None
    attrs: tuple[AttrAst, ...]


@dataclass(frozen=True)
class ProdAst:
    """``prod(e:ET, s:ST->t:DT) v <= expr [off]``"""

    edge_role: str
    edge_type: str
    src_role: str
    src_type: str
    dst_role: str
    dst_type: str
    target: str
    expr: E.Expr
    off: bool


@dataclass(frozen=True)
class MatchAst:
    """One ``match(...)`` clause."""

    lo: float
    hi: float
    edge_type: str
    kind: str  # "in" | "out" | "self"
    node_types: tuple[str, ...]


@dataclass(frozen=True)
class PatternAst:
    """``acc[...]`` or ``rej[...]``"""

    polarity: str
    clauses: tuple[MatchAst, ...]


@dataclass(frozen=True)
class CstrAst:
    """``cstr [vn:]NT { acc[...] rej[...] }``"""

    node_type: str
    patterns: tuple[PatternAst, ...]


@dataclass(frozen=True)
class ExternAst:
    """``extern-func name``"""

    name: str


@dataclass(frozen=True)
class LangAst:
    """A full ``lang`` definition."""

    name: str
    inherits: str | None
    node_types: tuple[NodeTypeAst, ...]
    edge_types: tuple[EdgeTypeAst, ...]
    prods: tuple[ProdAst, ...]
    cstrs: tuple[CstrAst, ...]
    externs: tuple[ExternAst, ...]


@dataclass(frozen=True)
class LambdaAst:
    """``lambd(a0,...): expr`` function literal."""

    params: tuple[str, ...]
    body: E.Expr


@dataclass(frozen=True)
class FuncValAst:
    """A FuncVal: literal number, argument reference, or lambda."""

    kind: str  # "literal" | "arg" | "lambda"
    value: object


@dataclass(frozen=True)
class FuncArgAst:
    """``name : SigT`` or ``owner.attr : SigT``"""

    name: str
    sig: SigTAst
    applies_to: tuple[str, str] | None = None


@dataclass(frozen=True)
class NodeStmtAst:
    name: str
    type_name: str


@dataclass(frozen=True)
class EdgeStmtAst:
    src: str
    dst: str
    name: str
    type_name: str


@dataclass(frozen=True)
class SetAttrAst:
    owner: str
    attr: str
    value: FuncValAst


@dataclass(frozen=True)
class SetInitAst:
    node: str
    index: int
    value: FuncValAst


@dataclass(frozen=True)
class SetSwitchAst:
    edge: str
    condition: E.Expr


FuncStmtAst = (NodeStmtAst | EdgeStmtAst | SetAttrAst | SetInitAst
               | SetSwitchAst)


@dataclass(frozen=True)
class FuncAst:
    """A full ``func`` definition."""

    name: str
    args: tuple[FuncArgAst, ...]
    uses: str
    statements: tuple[FuncStmtAst, ...]


@dataclass(frozen=True)
class ProgramAst:
    """A whole program: languages and functions in source order."""

    languages: tuple[LangAst, ...] = field(default=())
    functions: tuple[FuncAst, ...] = field(default=())
