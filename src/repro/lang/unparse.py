"""Pretty-printer: core objects back to Ark concrete syntax.

The inverse of :mod:`repro.lang.parser`: renders a
:class:`~repro.core.language.Language` (its *own* declarations, with an
``inherits`` header when derived) or an
:class:`~repro.core.function.ArkFunction` as parseable Ark source. Used
for documentation, program round-tripping, and the CLI's ``info``
command; the test suite checks that reparsing an unparsed language
reproduces identical dynamics.

Opaque Python values (callables stored as attribute defaults or literal
function values) have no textual form; unparsing them raises
:class:`~repro.errors.ParseError`.
"""

from __future__ import annotations

import math

from repro.core import function as F
from repro.core.attributes import AttrDecl, InitDecl
from repro.core.datatypes import IntType, LambdaType, RealType
from repro.core.language import Language
from repro.core.types import EdgeType, NodeType
from repro.errors import ParseError


def _bound(value: float) -> str:
    if math.isinf(value):
        return "-inf" if value < 0 else "inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def unparse_datatype(datatype) -> str:
    """Render a datatype annotation (``real[a,b] mm(s0,s1)``...)."""
    if isinstance(datatype, RealType):
        text = f"real[{_bound(datatype.lo)},{_bound(datatype.hi)}]"
    elif isinstance(datatype, IntType):
        text = f"int[{_bound(datatype.lo)},{_bound(datatype.hi)}]"
    elif isinstance(datatype, LambdaType):
        args = ",".join(f"a{k}" for k in range(datatype.arity))
        return f"lambd({args})"
    else:
        raise ParseError(f"cannot unparse datatype {datatype!r}")
    if datatype.mismatch is not None:
        text += (f" mm({_bound(datatype.mismatch.s0)},"
                 f"{_bound(datatype.mismatch.s1)})")
    if datatype.noise is not None:
        text += f" ns({_bound(datatype.noise.sigma)}"
        if datatype.noise.kind != "abs":
            text += f",{datatype.noise.kind}"
        text += ")"
    return text


def _attr_line(decl: AttrDecl) -> str:
    text = f"attr {decl.name}={unparse_datatype(decl.datatype)}"
    if decl.const:
        text += " const"
    return text


def _init_line(decl: InitDecl) -> str:
    text = f"init({decl.index}) {unparse_datatype(decl.datatype)}"
    if decl.const:
        text += " const"
    return text


def _node_type_block(node_type: NodeType) -> str:
    head = (f"ntyp({node_type.order},{node_type.reduction.value}) "
            f"{node_type.name}")
    if node_type.parent is not None:
        head += f" inherit {node_type.parent.name}"
    body: list[str] = [_attr_line(a)
                       for a in node_type.own_attrs.values()]
    # Auto-generated unbounded init declarations are implied; only
    # render overridden ones.
    for index, decl in sorted(node_type.inits.items()):
        if decl.datatype != RealType(float("-inf"), float("inf")) or \
                decl.const:
            body.append(_init_line(decl))
    return f"{head} {{{', '.join(body)}}};"


def _edge_type_block(edge_type: EdgeType) -> str:
    head = "etyp "
    if edge_type.fixed and (edge_type.parent is None
                            or not edge_type.parent.fixed):
        head += "fixed "
    head += edge_type.name
    if edge_type.parent is not None:
        head += f" inherit {edge_type.parent.name}"
    body = [_attr_line(a) for a in edge_type.own_attrs.values()]
    return f"{head} {{{', '.join(body)}}};"


def unparse_language(language: Language) -> str:
    """Render a language's own declarations as Ark source."""
    header = f"lang {language.name}"
    if language.parent is not None:
        header += f" inherits {language.parent.name}"
    lines = [header + " {"]
    for node_type in language._node_types.values():
        lines.append("    " + _node_type_block(node_type))
    for edge_type in language._edge_types.values():
        lines.append("    " + _edge_type_block(edge_type))
    for rule in language._productions:
        lines.append(f"    {rule.describe()};")
    for rule in language._constraints:
        lines.append(f"    {rule.describe()};")
    for name, _ in language._extern_checks:
        lines.append(f"    extern-func {name};")
    lines.append("}")
    return "\n".join(lines)


def unparse_chain(language: Language) -> str:
    """Render a language and all its ancestors, base first — a complete
    program that reparses standalone."""
    blocks = [unparse_language(ancestor)
              for ancestor in reversed(language.chain())]
    return "\n\n".join(blocks)


def _func_value(value) -> str:
    if isinstance(value, F.ArgRef):
        return value.name
    if isinstance(value, F.LambdaVal):
        params = ",".join(value.params)
        return f"lambd({params}): {value.body}"
    if isinstance(value, F.Literal):
        literal = value.value
        if isinstance(literal, bool) or not isinstance(literal,
                                                       (int, float)):
            raise ParseError(
                f"cannot unparse opaque function value {literal!r}; "
                "only numeric literals, argument references, and "
                "lambda literals have a textual form")
        return repr(literal) if isinstance(literal, float) \
            else str(literal)
    raise ParseError(f"cannot unparse value spec {value!r}")


def unparse_function(function: F.ArkFunction) -> str:
    """Render an Ark function definition as source text."""
    args = ", ".join(
        f"{arg.name}:{unparse_datatype(arg.datatype)}"
        for arg in function.args)
    lines = [f"func {function.name} ({args}) uses "
             f"{function.language.name} {{"]
    for stmt in function.statements:
        if isinstance(stmt, F.NodeStmt):
            lines.append(f"    node {stmt.name}:{stmt.type_name};")
        elif isinstance(stmt, F.EdgeStmt):
            lines.append(f"    edge <{stmt.src},{stmt.dst}> "
                         f"{stmt.name}:{stmt.type_name};")
        elif isinstance(stmt, F.SetAttrStmt):
            lines.append(f"    set-attr {stmt.owner}.{stmt.attr} = "
                         f"{_func_value(stmt.value)};")
        elif isinstance(stmt, F.SetInitStmt):
            lines.append(f"    set-init {stmt.node}({stmt.index}) = "
                         f"{_func_value(stmt.value)};")
        elif isinstance(stmt, F.SetSwitchStmt):
            lines.append(f"    set-switch {stmt.edge} when "
                         f"{stmt.condition};")
        else:
            raise ParseError(f"cannot unparse statement {stmt!r}")
    lines.append("}")
    return "\n".join(lines)
