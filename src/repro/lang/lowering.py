"""Lowering from the textual AST onto the core Ark objects.

This stage resolves language inheritance (including languages provided by
the caller), binds ``extern-func`` names to Python callables, registers
expression functions, and re-checks everything through the same code paths
the programmatic API uses — so a parsed language obeys exactly the same
§4.1.1 rules as a hand-built one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core import function as F
from repro.core.attributes import AttrDecl, InitDecl
from repro.core.datatypes import integer, lambd, real
from repro.core.language import Language
from repro.core.production import ProductionRule
from repro.core.validation import (ConstraintRule, MatchClause, Pattern)
from repro.errors import LanguageError, ParseError
from repro.lang import ast
from repro.lang.parser import parse


def _lower_sig(sig: ast.SigTAst):
    if sig.kind == "real":
        return real(sig.lo, sig.hi, mm=sig.mm, ns=sig.ns)
    if sig.kind == "int":
        return integer(int(sig.lo), int(sig.hi), mm=sig.mm, ns=sig.ns)
    if sig.kind == "lambda":
        return lambd(sig.arity)
    raise ParseError(f"unknown datatype kind {sig.kind!r}")


def _lower_attr(attr: ast.AttrAst) -> AttrDecl:
    return AttrDecl(attr.name, _lower_sig(attr.sig), const=attr.sig.const)


def _lower_init(init: ast.InitAst) -> InitDecl:
    return InitDecl(init.index, _lower_sig(init.sig),
                    const=init.sig.const)


def _lower_language(lang_ast: ast.LangAst,
                    known: dict[str, Language],
                    extern: dict[str, Callable],
                    functions: dict[str, Callable]) -> Language:
    parent = None
    if lang_ast.inherits is not None:
        parent = known.get(lang_ast.inherits)
        if parent is None:
            raise LanguageError(
                f"language {lang_ast.name} inherits unknown language "
                f"{lang_ast.inherits}")
    language = Language(lang_ast.name, parent=parent)
    for name, fn in functions.items():
        language.register_function(name, fn)

    for node_ast in lang_ast.node_types:
        language.node_type(
            node_ast.name, order=node_ast.order,
            reduction=node_ast.reduction,
            attrs=[_lower_attr(a) for a in node_ast.attrs],
            inits=[_lower_init(i) for i in node_ast.inits],
            inherits=node_ast.inherits)
    for edge_ast in lang_ast.edge_types:
        language.edge_type(
            edge_ast.name,
            attrs=[_lower_attr(a) for a in edge_ast.attrs],
            fixed=edge_ast.fixed, inherits=edge_ast.inherits)
    for prod_ast in lang_ast.prods:
        language.prod(ProductionRule(
            edge_role=prod_ast.edge_role, edge_type=prod_ast.edge_type,
            src_role=prod_ast.src_role, src_type=prod_ast.src_type,
            dst_role=prod_ast.dst_role, dst_type=prod_ast.dst_type,
            target=prod_ast.target, expr=prod_ast.expr,
            off=prod_ast.off))
    for cstr_ast in lang_ast.cstrs:
        patterns = tuple(
            Pattern(p.polarity,
                    tuple(MatchClause(c.lo, c.hi, c.edge_type, c.kind,
                                      c.node_types)
                          for c in p.clauses))
            for p in cstr_ast.patterns)
        language.cstr(ConstraintRule(cstr_ast.node_type, patterns))
    for extern_ast in lang_ast.externs:
        binding = extern.get(extern_ast.name)
        if binding is None:
            raise LanguageError(
                f"language {lang_ast.name} binds extern-func "
                f"{extern_ast.name} but no Python callable was provided "
                "for it")
        language.extern_check(binding, name=extern_ast.name)
    return language


def _lower_func_val(value: ast.FuncValAst):
    if value.kind == "literal":
        return F.Literal(value.value)
    if value.kind == "arg":
        return F.ArgRef(value.value)
    if value.kind == "lambda":
        lam: ast.LambdaAst = value.value
        return F.LambdaVal(lam.params, lam.body)
    raise ParseError(f"unknown FuncVal kind {value.kind!r}")


def _lower_function(func_ast: ast.FuncAst,
                    known: dict[str, Language]) -> F.ArkFunction:
    language = known.get(func_ast.uses)
    if language is None:
        raise LanguageError(
            f"function {func_ast.name} uses unknown language "
            f"{func_ast.uses}")
    args = [F.FuncArg(a.name, _lower_sig(a.sig), applies_to=a.applies_to)
            for a in func_ast.args]
    statements: list[F.Statement] = []
    for stmt in func_ast.statements:
        if isinstance(stmt, ast.NodeStmtAst):
            statements.append(F.NodeStmt(stmt.name, stmt.type_name))
        elif isinstance(stmt, ast.EdgeStmtAst):
            statements.append(F.EdgeStmt(stmt.src, stmt.dst, stmt.name,
                                         stmt.type_name))
        elif isinstance(stmt, ast.SetAttrAst):
            statements.append(F.SetAttrStmt(stmt.owner, stmt.attr,
                                            _lower_func_val(stmt.value)))
        elif isinstance(stmt, ast.SetInitAst):
            statements.append(F.SetInitStmt(stmt.node, stmt.index,
                                            _lower_func_val(stmt.value)))
        elif isinstance(stmt, ast.SetSwitchAst):
            statements.append(F.SetSwitchStmt(stmt.edge, stmt.condition))
        else:
            raise ParseError(f"unknown statement {stmt!r}")
    return F.ArkFunction(func_ast.name, language, args, statements)


@dataclass
class ParsedProgram:
    """Result of parsing + lowering a textual Ark program."""

    languages: dict[str, Language] = field(default_factory=dict)
    functions: dict[str, F.ArkFunction] = field(default_factory=dict)
    syntax: ast.ProgramAst | None = None


def lower_program(program: ast.ProgramAst,
                  languages: dict[str, Language] | None = None,
                  extern: dict[str, Callable] | None = None,
                  functions: dict[str, Callable] | None = None,
                  ) -> ParsedProgram:
    """Lower a parsed program.

    :param languages: already-constructed languages available for
        ``inherits`` and ``uses`` resolution.
    :param extern: Python callables for ``extern-func`` bindings.
    :param functions: expression-level functions to register in every
        language defined by the program (e.g. ``sat``, ``pulse``).
    """
    known = dict(languages or {})
    result = ParsedProgram(syntax=program)
    for lang_ast in program.languages:
        if lang_ast.name in known:
            raise LanguageError(
                f"language {lang_ast.name} is defined twice")
        lowered = _lower_language(lang_ast, known, dict(extern or {}),
                                  dict(functions or {}))
        known[lang_ast.name] = lowered
        result.languages[lang_ast.name] = lowered
    for func_ast in program.functions:
        if func_ast.name in result.functions:
            raise LanguageError(
                f"function {func_ast.name} is defined twice")
        result.functions[func_ast.name] = _lower_function(func_ast, known)
    return result


def parse_program(source: str,
                  languages: dict[str, Language] | None = None,
                  extern: dict[str, Callable] | None = None,
                  functions: dict[str, Callable] | None = None,
                  ) -> ParsedProgram:
    """Parse and lower a textual Ark program in one call."""
    return lower_program(parse(source), languages=languages,
                         extern=extern, functions=functions)


def parse_language(source: str, **options) -> Language:
    """Parse a program that defines exactly one language and return it."""
    program = parse_program(source, **options)
    if len(program.languages) != 1:
        raise ParseError(
            f"expected exactly one language definition, found "
            f"{len(program.languages)}")
    return next(iter(program.languages.values()))


def parse_function(source: str,
                   languages: dict[str, Language] | None = None,
                   **options) -> F.ArkFunction:
    """Parse a program that defines exactly one function and return it."""
    program = parse_program(source, languages=languages, **options)
    if len(program.functions) != 1:
        raise ParseError(
            f"expected exactly one function definition, found "
            f"{len(program.functions)}")
    return next(iter(program.functions.values()))
