"""Recursive-descent parser for the Fig. 6 grammar.

Accepts the concrete syntax of the paper's listings, including its
abbreviations and spelling variants:

* ``ntyp`` / ``node-type``, ``etyp`` / ``edge-type``;
* ``inherit`` / ``inherits`` for both types and languages;
* ``set-switch`` (prose) / ``set-edge`` (grammar);
* ``fn(...)`` (Fig. 7) / ``lambd(...)`` (grammar) for function datatypes;
* dashed names (``gmc-tln``, ``br-func``): the lexer emits dashes as
  operators so that subtraction works, and the parser re-joins *adjacent*
  ``ident - ident`` runs in name positions;
* ``,`` and ``;`` are interchangeable statement separators, as the
  listings use both.
"""

from __future__ import annotations

import math

from repro.core.exprparse import ExpressionParser, Token, TokenStream, \
    tokenize
from repro.lang import ast


class ProgramParser:
    """Parses a whole Ark program (languages + functions)."""

    def __init__(self, source: str):
        self.stream = TokenStream(tokenize(source))
        self.exprs = ExpressionParser(self.stream)

    # ------------------------------------------------------------------
    # Name handling
    # ------------------------------------------------------------------

    def _adjacent(self, first: Token, second: Token) -> bool:
        return second.pos == first.pos + len(first.text)

    def dashed_name(self) -> str:
        """An identifier possibly containing glued dashes (br-func)."""
        token = self.stream.expect("ident")
        name = token.text
        last = token
        while (self.stream.at("op", "-")
               and self._adjacent(last, self.stream.peek())
               and self.stream.peek(1).kind == "ident"
               and self._adjacent(self.stream.peek(),
                                  self.stream.peek(1))):
            self.stream.next()  # the dash
            part = self.stream.next()
            name += "-" + part.text
            last = part
        return name

    def _separator(self):
        while self.stream.accept("op", ";") or self.stream.accept("op",
                                                                  ","):
            pass

    # ------------------------------------------------------------------
    # Program
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.ProgramAst:
        languages: list[ast.LangAst] = []
        functions: list[ast.FuncAst] = []
        while not self.stream.at("eof"):
            keyword = self.dashed_name()
            if keyword == "lang":
                languages.append(self._lang_body())
            elif keyword == "func":
                functions.append(self._func_body())
            else:
                self.stream.error(
                    f"expected `lang` or `func`, found {keyword!r}")
            self._separator()
        return ast.ProgramAst(tuple(languages), tuple(functions))

    # ------------------------------------------------------------------
    # Language definitions
    # ------------------------------------------------------------------

    def _lang_body(self) -> ast.LangAst:
        name = self.dashed_name()
        inherits = None
        if self.stream.at("ident", "inherits") or \
                self.stream.at("ident", "inherit"):
            self.stream.next()
            inherits = self.dashed_name()
        self.stream.expect("op", "{")
        node_types: list[ast.NodeTypeAst] = []
        edge_types: list[ast.EdgeTypeAst] = []
        prods: list[ast.ProdAst] = []
        cstrs: list[ast.CstrAst] = []
        externs: list[ast.ExternAst] = []
        while not self.stream.at("op", "}"):
            keyword = self.dashed_name()
            if keyword in ("ntyp", "node-type"):
                node_types.append(self._node_type())
            elif keyword in ("etyp", "edge-type"):
                edge_types.append(self._edge_type())
            elif keyword == "prod":
                prods.append(self._prod())
            elif keyword == "cstr":
                cstrs.append(self._cstr())
            elif keyword == "extern-func":
                externs.append(ast.ExternAst(self.dashed_name()))
            else:
                self.stream.error(
                    f"unknown language statement {keyword!r}")
            self._separator()
        self.stream.expect("op", "}")
        return ast.LangAst(name, inherits, tuple(node_types),
                           tuple(edge_types), tuple(prods), tuple(cstrs),
                           tuple(externs))

    def _node_type(self) -> ast.NodeTypeAst:
        self.stream.expect("op", "(")
        order = int(self._number())
        self.stream.expect("op", ",")
        reduction = self.stream.expect("ident").text
        self.stream.expect("op", ")")
        name = self.dashed_name()
        inherits = None
        if self.stream.at("ident", "inherit") or \
                self.stream.at("ident", "inherits"):
            self.stream.next()
            inherits = self.dashed_name()
        attrs, inits = self._type_body(allow_init=True)
        return ast.NodeTypeAst(name, order, reduction, inherits,
                               tuple(attrs), tuple(inits))

    def _edge_type(self) -> ast.EdgeTypeAst:
        fixed = False
        if self.stream.at("ident", "fixed"):
            self.stream.next()
            fixed = True
        name = self.dashed_name()
        if self.stream.at("ident", "fixed"):
            # `edge-type fixed` may follow the name in the grammar.
            self.stream.next()
            fixed = True
        inherits = None
        if self.stream.at("ident", "inherit") or \
                self.stream.at("ident", "inherits"):
            self.stream.next()
            inherits = self.dashed_name()
        attrs, inits = self._type_body(allow_init=False)
        if inits:
            self.stream.error("edge types cannot declare initial values")
        return ast.EdgeTypeAst(name, fixed, inherits, tuple(attrs))

    def _type_body(self, allow_init: bool):
        attrs: list[ast.AttrAst] = []
        inits: list[ast.InitAst] = []
        self.stream.expect("op", "{")
        while not self.stream.at("op", "}"):
            keyword = self.stream.expect("ident").text
            if keyword == "attr":
                attr_name = self.dashed_name()
                self.stream.expect("op", "=")
                attrs.append(ast.AttrAst(attr_name, self._sig_type()))
            elif keyword == "init" and allow_init:
                self.stream.expect("op", "(")
                index = int(self._number())
                self.stream.expect("op", ")")
                self.stream.accept("op", "=")
                inits.append(ast.InitAst(index, self._sig_type()))
            else:
                self.stream.error(
                    f"unexpected {keyword!r} in type body")
            self._separator()
        self.stream.expect("op", "}")
        return attrs, inits

    def _sig_type(self) -> ast.SigTAst:
        kind = self.stream.expect("ident").text
        if kind == "real" or kind == "int":
            self.stream.expect("op", "[")
            lo = self._number()
            self.stream.expect("op", ",")
            hi = self._number()
            self.stream.expect("op", "]")
            mm = None
            if self.stream.at("ident", "mm"):
                self.stream.next()
                self.stream.expect("op", "(")
                s0 = self._number()
                self.stream.expect("op", ",")
                s1 = self._number()
                self.stream.expect("op", ")")
                mm = (s0, s1)
            ns = None
            if self.stream.at("ident", "ns"):
                # Transient-noise annotation ns(sigma[,kind]); the kind
                # defaults to absolute amplitude.
                self.stream.next()
                self.stream.expect("op", "(")
                sigma = self._number()
                ns_kind = "abs"
                if self.stream.accept("op", ","):
                    ns_kind = self.stream.expect("ident").text
                self.stream.expect("op", ")")
                ns = (sigma, ns_kind)
            const = bool(self.stream.accept("ident", "const"))
            return ast.SigTAst("real" if kind == "real" else "int",
                               lo=lo, hi=hi, mm=mm, const=const, ns=ns)
        if kind in ("lambd", "fn", "lambda"):
            self.stream.expect("op", "(")
            arity = 0
            if not self.stream.at("op", ")"):
                self.stream.expect("ident")
                arity = 1
                while self.stream.accept("op", ","):
                    self.stream.expect("ident")
                    arity += 1
            self.stream.expect("op", ")")
            const = bool(self.stream.accept("ident", "const"))
            return ast.SigTAst("lambda", arity=arity, const=const)
        self.stream.error(f"unknown datatype {kind!r}")
        raise AssertionError("unreachable")

    def _number(self) -> float:
        sign = 1.0
        while True:
            if self.stream.accept("op", "-"):
                sign = -sign
            elif self.stream.accept("op", "+"):
                pass
            else:
                break
        if self.stream.at("ident", "inf"):
            self.stream.next()
            return sign * math.inf
        token = self.stream.expect("num")
        return sign * float(token.text)

    def _prod(self) -> ast.ProdAst:
        self.stream.expect("op", "(")
        edge_role = self.dashed_name()
        self.stream.expect("op", ":")
        edge_type = self.dashed_name()
        self.stream.expect("op", ",")
        src_role = self.dashed_name()
        self.stream.expect("op", ":")
        src_type = self.dashed_name()
        self.stream.expect("op", "->")
        dst_role = self.dashed_name()
        self.stream.expect("op", ":")
        dst_type = self.dashed_name()
        self.stream.expect("op", ")")
        target = self.dashed_name()
        self.stream.expect("op", "<=")
        expr = self.exprs.parse()
        off = bool(self.stream.accept("ident", "off"))
        return ast.ProdAst(edge_role, edge_type, src_role, src_type,
                           dst_role, dst_type, target, expr, off)

    def _cstr(self) -> ast.CstrAst:
        first = self.dashed_name()
        if self.stream.accept("op", ":"):
            node_type = self.dashed_name()
        else:
            node_type = first
        self.stream.expect("op", "{")
        patterns: list[ast.PatternAst] = []
        while not self.stream.at("op", "}"):
            polarity = self.stream.expect("ident").text
            if polarity not in ("acc", "rej"):
                self.stream.error(
                    f"expected acc or rej, found {polarity!r}")
            self.stream.expect("op", "[")
            clauses: list[ast.MatchAst] = []
            if not self.stream.at("op", "]"):
                clauses.append(self._match())
                while self.stream.accept("op", ","):
                    clauses.append(self._match())
            self.stream.expect("op", "]")
            patterns.append(ast.PatternAst(polarity, tuple(clauses)))
            self._separator()
        self.stream.expect("op", "}")
        return ast.CstrAst(node_type, tuple(patterns))

    def _match(self) -> ast.MatchAst:
        self.stream.expect("ident", "match")
        self.stream.expect("op", "(")
        lo = self._number()
        self.stream.expect("op", ",")
        hi = self._number()
        self.stream.expect("op", ",")
        edge_type = self.dashed_name()
        if self.stream.accept("op", ")"):
            return ast.MatchAst(lo, hi, edge_type, "self", ())
        self.stream.expect("op", ",")
        if self.stream.at("op", "["):
            # match(lo,hi,ET,[NT*]->vn): incoming
            types = self._type_list()
            self.stream.expect("op", "->")
            self.dashed_name()  # vn, implied by the enclosing cstr
            self.stream.expect("op", ")")
            return ast.MatchAst(lo, hi, edge_type, "in", types)
        self.dashed_name()  # vn
        if self.stream.accept("op", ")"):
            # Fig. 13 form: match(lo,hi,ET,vn) — self-edges.
            return ast.MatchAst(lo, hi, edge_type, "self", ())
        self.stream.expect("op", "->")
        types = self._type_list()
        self.stream.expect("op", ")")
        return ast.MatchAst(lo, hi, edge_type, "out", types)

    def _type_list(self) -> tuple[str, ...]:
        self.stream.expect("op", "[")
        types = [self.dashed_name()]
        while self.stream.accept("op", ","):
            types.append(self.dashed_name())
        self.stream.expect("op", "]")
        return tuple(types)

    # ------------------------------------------------------------------
    # Function definitions
    # ------------------------------------------------------------------

    def _func_body(self) -> ast.FuncAst:
        name = self.dashed_name()
        self.stream.expect("op", "(")
        args: list[ast.FuncArgAst] = []
        if not self.stream.at("op", ")"):
            args.append(self._func_arg())
            while self.stream.accept("op", ","):
                args.append(self._func_arg())
        self.stream.expect("op", ")")
        self.stream.expect("ident", "uses")
        uses = self.dashed_name()
        self.stream.expect("op", "{")
        statements: list[ast.FuncStmtAst] = []
        while not self.stream.at("op", "}"):
            statements.append(self._func_stmt())
            self._separator()
        self.stream.expect("op", "}")
        return ast.FuncAst(name, tuple(args), uses, tuple(statements))

    def _func_arg(self) -> ast.FuncArgAst:
        name = self.dashed_name()
        applies_to = None
        if self.stream.accept("op", "."):
            attr = self.dashed_name()
            applies_to = (name, attr)
            name = f"{name}.{attr}"
        self.stream.expect("op", ":")
        sig = self._sig_type()
        return ast.FuncArgAst(name, sig, applies_to)

    def _func_stmt(self) -> ast.FuncStmtAst:
        keyword = self.dashed_name()
        if keyword == "node":
            name = self.dashed_name()
            self.stream.expect("op", ":")
            return ast.NodeStmtAst(name, self.dashed_name())
        if keyword == "edge":
            self.stream.expect("op", "<")
            src = self.dashed_name()
            self.stream.expect("op", ",")
            dst = self.dashed_name()
            self.stream.expect("op", ">")
            name = self.dashed_name()
            self.stream.expect("op", ":")
            return ast.EdgeStmtAst(src, dst, name, self.dashed_name())
        if keyword == "set-attr":
            owner = self.dashed_name()
            self.stream.expect("op", ".")
            attr = self.dashed_name()
            self.stream.expect("op", "=")
            return ast.SetAttrAst(owner, attr, self._func_val())
        if keyword == "set-init":
            node = self.dashed_name()
            self.stream.expect("op", "(")
            index = int(self._number())
            self.stream.expect("op", ")")
            self.stream.expect("op", "=")
            return ast.SetInitAst(node, index, self._func_val())
        if keyword in ("set-switch", "set-edge"):
            edge = self.dashed_name()
            self.stream.expect("ident", "when")
            condition = self.exprs.parse()
            return ast.SetSwitchAst(edge, condition)
        self.stream.error(f"unknown function statement {keyword!r}")
        raise AssertionError("unreachable")

    def _func_val(self) -> ast.FuncValAst:
        if self.stream.at("ident", "lambd") or self.stream.at("ident",
                                                              "fn"):
            self.stream.next()
            self.stream.expect("op", "(")
            params: list[str] = []
            if not self.stream.at("op", ")"):
                params.append(self.dashed_name())
                while self.stream.accept("op", ","):
                    params.append(self.dashed_name())
            self.stream.expect("op", ")")
            self.stream.expect("op", ":")
            body = self.exprs.parse()
            return ast.FuncValAst(
                "lambda", ast.LambdaAst(tuple(params), body))
        if self.stream.at("ident"):
            return ast.FuncValAst("arg", self.dashed_name())
        return ast.FuncValAst("literal", self._number())


def parse(source: str) -> ast.ProgramAst:
    """Parse ``source`` into a :class:`~repro.lang.ast.ProgramAst`."""
    parser = ProgramParser(source)
    return parser.parse_program()
