"""T-line topology builders (Figs. 2, 5, 8).

The paper simulates 53-node linear and branched lines: a current source
(``InpI_0``) drives ``IN_V`` through its source conductance, the line
alternates ``I_k``/``V_k`` segments, and ``OUT_V`` terminates the far end.
With L = C = 1e-9 every segment contributes 1 ns of delay and the
characteristic impedance is 1, so the matched line shows the 0.5-amplitude
pulse of Fig. 4b and the branched line the ~0.3 pulse plus echo of
Fig. 4a.

``linear_tline``/``branched_tline`` accept *variants* that perform the
progressive-rewriting substitutions of Fig. 5:

* ``node_variant="cint"`` swaps ``V``/``I`` for the mismatched ``Vm``/
  ``Im`` types (Cint mismatch, Fig. 4c);
* ``edge_variant="gm"`` swaps line edges for ``Em`` (Gm mismatch,
  Fig. 4d).

``branched_tline_function`` builds the paper's ``br-func`` (Fig. 8): an
Ark function with a ``br`` bit that switches the branch on or off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.builder import GraphBuilder
from repro.core.datatypes import integer
from repro.core.function import (ArkFunction, EdgeStmt, FuncArg, Literal,
                                 NodeStmt, SetAttrStmt, SetInitStmt,
                                 SetSwitchStmt)
from repro.core.exprparse import parse_expression
from repro.core.graph import DynamicalGraph
from repro.core.language import Language
from repro.errors import GraphError
from repro.paradigms.tln.gmc import gmc_tln_language
from repro.paradigms.tln.language import tln_language
from repro.paradigms.tln.waveforms import pulse

#: Default segment count: IN_V + 26 I segments + 25 interior V + OUT_V
#: equals the paper's 53-node line (the input source is not counted).
DEFAULT_SEGMENTS = 26


@dataclass(frozen=True)
class TLineSpec:
    """Electrical parameters shared by the t-line builders."""

    n_segments: int = DEFAULT_SEGMENTS
    inductance: float = 1e-9
    capacitance: float = 1e-9
    resistance: float = 0.0
    conductance: float = 0.0
    source_conductance: float = 1.0
    termination: float = 1.0
    pulse_start: float = 0.0
    pulse_width: float = 2e-8

    def input_waveform(self):
        """The paper's trapezoidal pulse, closed over this spec."""
        t0, width = self.pulse_start, self.pulse_width
        waveform = lambda t: pulse(t, t0, width)  # noqa: E731
        # Equal-parameter waveforms are interchangeable: the tag lets
        # the batched ensemble codegen share one callable across
        # instances instead of dispatching per instance.
        waveform._ark_vector_key = ("tln-pulse", t0, width)
        return waveform


def _variant_types(node_variant: str, edge_variant: str,
                   ) -> tuple[str, str, str]:
    if node_variant == "ideal":
        v_type, i_type = "V", "I"
    elif node_variant == "cint":
        v_type, i_type = "Vm", "Im"
    else:
        raise GraphError(f"unknown node variant {node_variant!r}; "
                         "expected 'ideal' or 'cint'")
    if edge_variant == "ideal":
        e_type = "E"
    elif edge_variant == "gm":
        e_type = "Em"
    else:
        raise GraphError(f"unknown edge variant {edge_variant!r}; "
                         "expected 'ideal' or 'gm'")
    return v_type, i_type, e_type


def _pick_language(language: Language | None, node_variant: str,
                   edge_variant: str) -> Language:
    if language is not None:
        return language
    if node_variant == "ideal" and edge_variant == "ideal":
        return tln_language()
    return gmc_tln_language()


class _LineBuilder:
    """Shared plumbing for the t-line topologies.

    ``self_edge_type``/``self_edge_attrs`` configure the damping self
    edges every segment carries — the transient-noise stack swaps the
    plain ``E`` for the noisy ``En`` (ns-tln) and writes its per-segment
    ``nsig`` amplitude there.
    """

    def __init__(self, language: Language, name: str, spec: TLineSpec,
                 v_type: str, i_type: str, e_type: str,
                 seed: int | None, self_edge_type: str = "E",
                 self_edge_attrs: dict | None = None):
        self.builder = GraphBuilder(language, name, seed=seed)
        self.spec = spec
        self.v_type = v_type
        self.i_type = i_type
        self.e_type = e_type
        self.self_edge_type = self_edge_type
        self.self_edge_attrs = dict(self_edge_attrs or {})
        self._edge_count = 0

    def _next_edge(self) -> str:
        name = f"E_{self._edge_count}"
        self._edge_count += 1
        return name

    def _add_self_edge(self, name: str):
        edge_name = f"Es_{name}"
        self.builder.edge(name, name, edge_name, self.self_edge_type)
        for attr, value in self.self_edge_attrs.items():
            self.builder.set_attr(edge_name, attr, value)

    def add_v(self, name: str, g: float | None = None):
        spec = self.spec
        self.builder.node(name, self.v_type)
        self.builder.set_attr(name, "c", spec.capacitance)
        self.builder.set_attr(name, "g",
                              spec.conductance if g is None else g)
        self.builder.set_init(name, 0.0)
        self._add_self_edge(name)

    def add_i(self, name: str):
        spec = self.spec
        self.builder.node(name, self.i_type)
        self.builder.set_attr(name, "l", spec.inductance)
        self.builder.set_attr(name, "r", spec.resistance)
        self.builder.set_init(name, 0.0)
        self._add_self_edge(name)

    def connect(self, src: str, dst: str,
                edge_type: str | None = None) -> str:
        name = self._next_edge()
        edge_type = edge_type or self.e_type
        self.builder.edge(src, dst, name, edge_type)
        if edge_type in ("Em", "Esw"):
            self.builder.set_attr(name, "ws", 1.0)
            self.builder.set_attr(name, "wt", 1.0)
        return name

    def add_source(self, target: str, waveform=None):
        spec = self.spec
        self.builder.node("InpI_0", "InpI")
        self.builder.set_attr("InpI_0", "fn",
                              waveform or spec.input_waveform())
        self.builder.set_attr("InpI_0", "g", spec.source_conductance)
        self.connect("InpI_0", target)

    def chain(self, start: str, end: str, n_segments: int,
              prefix: str = "", first_edge_type: str | None = None):
        """Alternating I/V ladder from ``start`` to ``end``.

        ``first_edge_type`` overrides the type of the first (junction)
        edge — e.g. the sw-tln ``Esw`` switch at a PUF branch root.
        """
        previous = start
        for k in range(n_segments):
            i_name = f"{prefix}I_{k}"
            self.add_i(i_name)
            self.connect(previous, i_name,
                         first_edge_type if k == 0 else None)
            if k == n_segments - 1:
                self.connect(i_name, end)
            else:
                v_name = f"{prefix}V_{k}"
                self.add_v(v_name)
                self.connect(i_name, v_name)
                previous = v_name

    def finish(self) -> DynamicalGraph:
        return self.builder.finish()


def linear_tline(spec: TLineSpec = TLineSpec(), *,
                 node_variant: str = "ideal",
                 edge_variant: str = "ideal",
                 seed: int | None = None,
                 language: Language | None = None,
                 waveform=None,
                 noise: float = 0.0) -> DynamicalGraph:
    """The linear t-line of Fig. 2(ii) (53 nodes at default size).

    Topology: ``InpI_0 -> IN_V -> I_0 -> V_0 -> ... -> I_{n-1} -> OUT_V``
    with matched termination at both ends.

    :param noise: per-segment thermal-noise amplitude; > 0 swaps the
        damping self edges for the ns-tln ``En`` type, turning the
        compiled system into an SDE (integrate it with
        :func:`repro.sim.solve_sde`).
    """
    v_type, i_type, e_type = _variant_types(node_variant, edge_variant)
    self_edge_type, self_edge_attrs = "E", None
    if noise > 0.0:
        if language is None:
            from repro.paradigms.tln.noisy import ns_tln_language
            language = ns_tln_language()
        self_edge_type, self_edge_attrs = "En", {"nsig": noise}
    language = _pick_language(language, node_variant, edge_variant)
    line = _LineBuilder(language, "linear-tline", spec, v_type, i_type,
                        e_type, seed, self_edge_type=self_edge_type,
                        self_edge_attrs=self_edge_attrs)
    line.add_v("IN_V", g=0.0)
    line.add_v("OUT_V", g=spec.termination)
    line.add_source("IN_V", waveform)
    line.chain("IN_V", "OUT_V", spec.n_segments)
    return line.finish()


def branched_tline(spec: TLineSpec = TLineSpec(), *,
                   branch_segments: int = 10,
                   node_variant: str = "ideal",
                   edge_variant: str = "ideal",
                   seed: int | None = None,
                   language: Language | None = None,
                   waveform=None) -> DynamicalGraph:
    """The branched t-line of Fig. 2(i).

    A stub of ``branch_segments`` LC segments hangs off ``IN_V`` and ends
    open, so the injected pulse splits at the junction (dropping the
    transmitted amplitude to ~0.3) and the stub round-trip returns an
    echo ~2*branch_segments ns later — the shaded window of Fig. 4a.
    """
    v_type, i_type, e_type = _variant_types(node_variant, edge_variant)
    language = _pick_language(language, node_variant, edge_variant)
    line = _LineBuilder(language, "branched-tline", spec, v_type, i_type,
                        e_type, seed)
    line.add_v("IN_V", g=0.0)
    line.add_v("OUT_V", g=spec.termination)
    line.add_source("IN_V", waveform)
    line.chain("IN_V", "OUT_V", spec.n_segments)
    # Open-ended stub: its far V keeps g=0, so the wave reflects back.
    line.add_v("Vb_end", g=0.0)
    line.chain("IN_V", "Vb_end", branch_segments, prefix="b")
    return line.finish()


def mismatched_tline(kind: str, spec: TLineSpec = TLineSpec(), *,
                     seed: int | None = None,
                     language: Language | None = None) -> DynamicalGraph:
    """The progressive substitutions of Fig. 5 on the linear line.

    :param kind: ``"cint"`` (Vm/Im node substitution, Fig. 5(i)) or
        ``"gm"`` (Em edge substitution, Fig. 5(ii)).
    """
    if kind == "cint":
        return linear_tline(spec, node_variant="cint", seed=seed,
                            language=language)
    if kind == "gm":
        return linear_tline(spec, edge_variant="gm", seed=seed,
                            language=language)
    raise GraphError(f"unknown mismatch kind {kind!r}; expected 'cint' "
                     "or 'gm'")


def branched_tline_function(spec: TLineSpec = TLineSpec(), *,
                            branch_segments: int = 10,
                            language: Language | None = None,
                            ) -> ArkFunction:
    """The paper's ``br-func`` (Fig. 8) as a statement-based Ark function.

    ``br_func(br=0)`` yields the linear line, ``br_func(br=1)`` the
    branched line: the branch stays in the graph but its junction edge is
    switched off, which also demonstrates that validation runs on the
    realized topology.
    """
    language = language or tln_language()
    statements = []

    def set_attr(owner, attr, value):
        statements.append(SetAttrStmt(owner, attr, Literal(value)))

    edge_count = [0]

    def connect(src, dst, type_name="E"):
        name = f"E_{edge_count[0]}"
        edge_count[0] += 1
        statements.append(EdgeStmt(src, dst, name, type_name))
        return name

    def add_v(name, g=0.0):
        statements.append(NodeStmt(name, "V"))
        set_attr(name, "c", spec.capacitance)
        set_attr(name, "g", g)
        statements.append(SetInitStmt(name, 0, Literal(0.0)))
        statements.append(EdgeStmt(name, name, f"Es_{name}", "E"))

    def add_i(name):
        statements.append(NodeStmt(name, "I"))
        set_attr(name, "l", spec.inductance)
        set_attr(name, "r", spec.resistance)
        statements.append(SetInitStmt(name, 0, Literal(0.0)))
        statements.append(EdgeStmt(name, name, f"Es_{name}", "E"))

    def chain(start, end, n, prefix=""):
        """Build the ladder and return the name of its first edge."""
        previous = start
        first_edge = None
        for k in range(n):
            i_name = f"{prefix}I_{k}"
            add_i(i_name)
            junction = connect(previous, i_name)
            if first_edge is None:
                first_edge = junction
            if k == n - 1:
                connect(i_name, end)
            else:
                v_name = f"{prefix}V_{k}"
                add_v(v_name)
                connect(i_name, v_name)
                previous = v_name
        return first_edge

    add_v("IN_V", g=0.0)
    add_v("OUT_V", g=spec.termination)
    statements.append(NodeStmt("InpI_0", "InpI"))
    statements.append(SetAttrStmt("InpI_0", "fn",
                                  Literal(spec.input_waveform())))
    set_attr("InpI_0", "g", spec.source_conductance)
    connect("InpI_0", "IN_V")
    chain("IN_V", "OUT_V", spec.n_segments)
    add_v("Vb_end", g=0.0)
    branch_edge = chain("IN_V", "Vb_end", branch_segments, prefix="b")
    statements.append(SetSwitchStmt(branch_edge,
                                    parse_expression("br == 1")))

    return ArkFunction("br-func", language,
                       args=[FuncArg("br", integer(0, 1))],
                       statements=statements)
