"""Input waveforms for transmission-line computations.

The paper's t-line case study injects "a trapezoidal pulse function with
width 2e-8 at time t=0" (``pulse(t, 0, 2e-8)``, §2.2/§4.4). These helpers
are plain Python callables; ``pulse`` is also registered as an expression
function of the TLN language so textual programs can write
``lambd(t): pulse(t, 0, 2e-8)``.
"""

from __future__ import annotations

import math


def trapezoid(t: float, t0: float, width: float, rise: float,
              amplitude: float = 1.0) -> float:
    """Trapezoidal pulse: ramps up over ``rise``, holds, ramps down.

    The pulse occupies ``[t0, t0 + width]``; ``rise`` is consumed inside
    the width on both flanks.
    """
    if rise <= 0:
        return amplitude if t0 <= t < t0 + width else 0.0
    x = t - t0
    if x < 0 or x >= width:
        return 0.0
    if x < rise:
        return amplitude * x / rise
    if x > width - rise:
        return amplitude * (width - x) / rise
    return amplitude


def pulse(t: float, t0: float, width: float) -> float:
    """The paper's ``pulse(t, t0, width)``: unit-amplitude trapezoid.

    The rise/fall time is 20% of the width — gentle enough that the
    discretized line's dispersion ripple stays small, reproducing the
    clean 0.5-amplitude plateau of Fig. 4b.
    """
    return trapezoid(t, t0, width, rise=0.2 * width, amplitude=1.0)


def step(t: float, t0: float, amplitude: float = 1.0) -> float:
    """Heaviside step at ``t0``."""
    return amplitude if t >= t0 else 0.0


def sine_burst(t: float, t0: float, width: float, frequency: float,
               amplitude: float = 1.0) -> float:
    """A windowed sine burst — useful for PUF challenge excitation."""
    if t < t0 or t > t0 + width:
        return 0.0
    return amplitude * math.sin(2.0 * math.pi * frequency * (t - t0))
