"""The TLN (transmission-line network) Ark language (§2.1, §4.4, Fig. 7).

A t-line is discretized into alternating voltage (``V``) and current
(``I``) segments following the Telegrapher's equations (Eq. 1)::

    dVi/dt = (Ii - Ii+1 - G*Vi) / Ci
    dIi/dt = (Vi-1 - Vi - R*Ii) / Li

``InpV``/``InpI`` nodes inject external voltage/current waveforms through
their source resistance/conductance. The validity rules enforce the
alternating V/I structure — the malformed V-V line of Fig. 2(iii) is
rejected because its V-V edge matches no clause.

Fig. 7 elides the input and self-edge production rules; they are
reconstructed from Eq. 1 and the full mm-tln listing of Fig. 14 (see
DESIGN.md §5.2-5.3).
"""

from __future__ import annotations

from functools import cache

from repro.core.language import Language
from repro.lang import parse_language
from repro.paradigms.tln.waveforms import pulse

TLN_SOURCE = """
lang tln {
    ntyp(1,sum) V {attr c=real[1e-10,1e-08], attr g=real[0,inf]};
    ntyp(1,sum) I {attr l=real[1e-10,1e-08], attr r=real[0,inf]};
    ntyp(0,sum) InpV {attr fn=fn(a0), attr r=real[0,inf]};
    ntyp(0,sum) InpI {attr fn=fn(a0), attr g=real[0,inf]};
    etyp E {};

    // Telegrapher core: V->I and I->V couplings (Eq. 1).
    prod(e:E, s:V->t:I) s <= -var(t)/s.c;
    prod(e:E, s:V->t:I) t <= var(s)/t.l;
    prod(e:E, s:I->t:V) s <= -var(t)/s.l;
    prod(e:E, s:I->t:V) t <= var(s)/t.c;

    // Damping self edges: -G*V/C and -R*I/L.
    prod(e:E, s:V->s:V) s <= -s.g/s.c*var(s);
    prod(e:E, s:I->s:I) s <= -s.r/s.l*var(s);

    // External sources through their source impedance (cf. Fig. 14).
    prod(e:E, s:InpV->t:V) t <= (-var(t)+s.fn(time))/(s.r*t.c);
    prod(e:E, s:InpV->t:I) t <= (-s.r*var(t)+s.fn(time))/t.l;
    prod(e:E, s:InpI->t:V) t <= (-s.g*var(t)+s.fn(time))/t.c;
    prod(e:E, s:InpI->t:I) t <= (-var(t)+s.fn(time))/(s.g*t.l);

    // Alternating-line validity (Fig. 7): V talks only to I (plus
    // sources), I talks only to V (plus sources), each segment carries
    // exactly one damping self edge.
    cstr V {acc[match(0,inf,E,V->[I]),
                match(0,inf,E,[I]->V),
                match(0,inf,E,[InpV]->V),
                match(0,inf,E,[InpI]->V),
                match(1,1,E,V)]};
    cstr I {acc[match(0,1,E,I->[V]),
                match(0,1,E,[V,InpV,InpI]->I),
                match(1,1,E,I)]};
    cstr InpV {acc[match(1,inf,E,InpV->[V,I])]};
    cstr InpI {acc[match(1,inf,E,InpI->[V,I])]};
}
"""


def build_tln_language() -> Language:
    """Construct a fresh TLN language instance (mainly for tests)."""
    return parse_language(TLN_SOURCE, functions={"pulse": pulse})


@cache
def tln_language() -> Language:
    """The shared TLN language instance.

    Cached so every graph in a process shares one set of type objects —
    subtype checks compare object identity along the inheritance chain.
    """
    return build_tln_language()
