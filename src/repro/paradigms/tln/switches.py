"""The sw-tln language: off-state switch parasitics (§4.3 off rules).

Ark's hardware extensions include production rules "that model
nonidealities associated with edges that are switched off" (§4.3). No
real switch isolates perfectly: a MOS transmission gate in its off
state still couples a fraction of the signal through its junction
capacitances. For the reconfigurable PUF of §2 this matters directly —
a challenge bit that disables a branch only *attenuates* it, so
off-state feedthrough erodes the challenge's effect on the response.

``sw-tln`` inherits GmC-TLN and adds a switchable junction edge type:

* ``Esw`` inherits ``Em`` and adds an ``alpha`` attribute — the
  off-state coupling fraction (0 = ideal switch, 1 = no isolation);
* its **on** behavior needs no new rules: production lookup falls back
  to the inherited ``Em`` rules (§4.1.1);
* its **off** behavior is the pair of ``off`` rules below — the ``Em``
  couplings scaled by ``alpha``.

At ``alpha = 0`` an off branch contributes nothing (ideal isolation);
at ``alpha = 1`` the off rules equal the on rules, so the switch — and
with it the challenge bit — has no effect at all. The tests pin both
limits and the monotone loss of challenge sensitivity in between.
"""

from __future__ import annotations

from functools import cache

from repro.core.language import Language
from repro.lang import parse_program
from repro.paradigms.tln.gmc import gmc_tln_language

SW_TLN_SOURCE = """
lang sw-tln inherits gmc-tln {
    etyp Esw inherit Em {attr alpha=real[0,1]};

    // Off-state feedthrough: the junction couplings, scaled by the
    // isolation fraction alpha (V-node side and I-node side).
    prod(e:Esw, s:V->t:I) s <= -e.alpha*e.ws*var(t)/s.c off;
    prod(e:Esw, s:V->t:I) t <= e.alpha*e.wt*var(s)/t.l off;
    prod(e:Esw, s:I->t:V) s <= -e.alpha*e.ws*var(t)/s.l off;
    prod(e:Esw, s:I->t:V) t <= e.alpha*e.wt*var(s)/t.c off;
}
"""


def build_sw_tln_language(parent: Language | None = None) -> Language:
    """Construct a fresh sw-tln instance on top of ``parent``."""
    parent = parent or gmc_tln_language()
    program = parse_program(SW_TLN_SOURCE,
                            languages={"gmc-tln": parent})
    return program.languages["sw-tln"]


@cache
def sw_tln_language() -> Language:
    """The shared sw-tln language instance."""
    return build_sw_tln_language(gmc_tln_language())
