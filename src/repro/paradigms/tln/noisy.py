"""The ns-tln language: transient thermal noise on TLN segments.

The second half of the paper's nonideality story: where GmC-TLN models
*fabrication* variation (a parameter sampled once per chip, §4.3),
``ns-tln`` models *transient* noise — every segment's damping self edge
becomes a noisy element injecting white current/voltage noise into its
node. Physically this is the thermal noise of the GmC integrator: a
noise current of spectral amplitude ``nsig`` (A·√s) into a capacitance
``c`` perturbs ``dV/dt`` by ``nsig/c · ξ(t)``, and dually for the
inductive (I) segments.

``En`` inherits the plain self-edge type ``E`` and adds the ``nsig``
amplitude attribute — ``const``, because a noise floor is physics, not
a programmable knob (§4.3). Its production rules restate the damping
term and add the ``noise(...)`` injection; production lookup is
most-specific-first, so a graph whose self edges stay type ``E``
compiles to exactly the deterministic system it always did, while
swapping ``En`` in (the :class:`~repro.puf.challenge.PufDesign`
``noise`` knob does this) adds one independent Wiener path per segment.

``ns-tln`` inherits sw-tln, so the full PUF stack — Gm mismatch,
off-state switch parasitics, and transient noise — composes in one
language chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cache

from repro.core.language import Language
from repro.lang import parse_program
from repro.paradigms.tln.functions import TLineSpec
from repro.paradigms.tln.switches import sw_tln_language

NS_TLN_SOURCE = """
lang ns-tln inherits sw-tln {
    etyp En inherit E {attr nsig=real[0,inf] const};

    // Noisy damping self edges: the inherited -G*V/C / -R*I/L terms
    // plus a white-noise injection scaled by the segment's c or l.
    prod(e:En, s:V->s:V) s <= -s.g/s.c*var(s) + noise(e.nsig/s.c);
    prod(e:En, s:I->s:I) s <= -s.r/s.l*var(s) + noise(e.nsig/s.l);
}
"""


def build_ns_tln_language(parent: Language | None = None) -> Language:
    """Construct a fresh ns-tln instance on top of ``parent``."""
    parent = parent or sw_tln_language()
    program = parse_program(NS_TLN_SOURCE,
                            languages={"sw-tln": parent})
    return program.languages["ns-tln"]


@cache
def ns_tln_language() -> Language:
    """The shared ns-tln language instance."""
    return build_ns_tln_language(sw_tln_language())


@dataclass(frozen=True)
class NoisyTlineFactory:
    """A picklable ``factory(seed)`` producing noisy fabricated
    t-lines for the unified ensemble driver.

    Process-pool sharding ships the factory to worker processes, so a
    ``lambda``/closure silently degrades to in-process execution; this
    module-level class pickles, letting (chip × trial) SDE sweeps over
    mismatched noisy t-lines shard across cores::

        from repro.sim import run_ensemble

        result = run_ensemble(
            NoisyTlineFactory(TLineSpec(n_segments=10), noise=1e-8),
            seeds=range(16), t_span=(0.0, 8e-8),
            trials=8, processes=4, shard_min=16)
    """

    spec: TLineSpec = field(default_factory=TLineSpec)
    noise: float = 1e-8
    node_variant: str = "ideal"
    edge_variant: str = "ideal"

    def __call__(self, seed):
        from repro.paradigms.tln.functions import linear_tline

        return linear_tline(self.spec, seed=seed, noise=self.noise,
                            node_variant=self.node_variant,
                            edge_variant=self.edge_variant)
