"""The GmC-TLN language (§2.3-2.4, §4.5, Figs. 9 and 14).

Codifies the design space of mismatch-sensitive GmC circuit
implementations of TLN computing:

* ``Vm``/``Im`` inherit ``V``/``I`` and subject the ``c``/``l`` attributes
  (the ``Cint`` device parameter of the GmC integrator) to 10% relative
  mismatch;
* ``Em`` inherits ``E`` and adds 10%-mismatched ``ws``/``wt`` attributes
  (the ``Gm1``/``Gm2`` device parameters), implementing the *modified*
  Telegrapher's equations (Eq. 3)::

      dVi/dt = (wt_i*Ii - ws_{i+1}*Ii+1 - G*Vi) / Ci
      dIi/dt = (wt_{i-1}*Vi-1 - ws_i*Vi - R*Ii) / Li

With ``ws = wt = 1`` the GmC circuit implements ideal TLN computing, so a
t-line written in the TLN language simulates identically under GmC-TLN —
the inheritance guarantee the paper's design flow relies on.
"""

from __future__ import annotations

from functools import cache

from repro.core.language import Language
from repro.lang import parse_program
from repro.paradigms.tln.language import tln_language

GMC_TLN_SOURCE = """
lang gmc-tln inherits tln {
    ntyp(1,sum) Vm inherit V {attr c=real[1e-10,1e-08] mm(0,0.1),
                              attr g=real[0,inf]};
    ntyp(1,sum) Im inherit I {attr l=real[1e-10,1e-08] mm(0,0.1),
                              attr r=real[0,inf]};
    etyp Em inherit E {attr ws=real[0.5,2] mm(0,0.1),
                       attr wt=real[0.5,2] mm(0,0.1)};

    // Modified Telegrapher couplings (Fig. 9 / Fig. 14).
    prod(e:Em, s:V->t:I) s <= -e.ws*var(t)/s.c;
    prod(e:Em, s:V->t:I) t <= e.wt*var(s)/t.l;
    prod(e:Em, s:I->t:V) s <= -e.ws*var(t)/s.l;
    prod(e:Em, s:I->t:V) t <= e.wt*var(s)/t.c;

    // Mismatched source couplings (Fig. 14).
    prod(e:Em, s:InpV->t:V) t <= e.wt*(-var(t)+s.fn(time))/(s.r*t.c);
    prod(e:Em, s:InpV->t:I) t <= e.wt*(-s.r*var(t)+s.fn(time))/t.l;
    prod(e:Em, s:InpI->t:V) t <= e.wt*(-s.g*var(t)+s.fn(time))/t.c;
    prod(e:Em, s:InpI->t:I) t <= e.wt*(-var(t)+s.fn(time))/(s.g*t.l);
}
"""


def build_gmc_tln_language(parent: Language | None = None) -> Language:
    """Construct a fresh GmC-TLN instance on top of ``parent``."""
    parent = parent or tln_language()
    program = parse_program(GMC_TLN_SOURCE, languages={"tln": parent})
    return program.languages["gmc-tln"]


@cache
def gmc_tln_language() -> Language:
    """The shared GmC-TLN language instance (inherits the shared TLN)."""
    return build_gmc_tln_language(tln_language())
