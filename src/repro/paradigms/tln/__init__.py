"""Transmission-line network (TLN) compute paradigm (§2, §4.4-4.5).

Public surface:

* :func:`tln_language` / :func:`gmc_tln_language` — the shared DSL
  instances (Figs. 7, 9, 14);
* :func:`linear_tline`, :func:`branched_tline`,
  :func:`mismatched_tline` — the topologies of Figs. 2 and 5;
* :func:`branched_tline_function` — the switchable ``br-func`` of Fig. 8;
* :func:`sw_tln_language` — off-state switch parasitics (§4.3 ``off``
  rules);
* :mod:`repro.paradigms.tln.waveforms` — input pulses.
"""

from repro.paradigms.tln.functions import (DEFAULT_SEGMENTS, TLineSpec,
                                           branched_tline,
                                           branched_tline_function,
                                           linear_tline,
                                           mismatched_tline)
from repro.paradigms.tln.gmc import (GMC_TLN_SOURCE,
                                     build_gmc_tln_language,
                                     gmc_tln_language)
from repro.paradigms.tln.language import (TLN_SOURCE, build_tln_language,
                                          tln_language)
from repro.paradigms.tln.noisy import (NS_TLN_SOURCE,
                                       build_ns_tln_language,
                                       ns_tln_language)
from repro.paradigms.tln.switches import (SW_TLN_SOURCE,
                                          build_sw_tln_language,
                                          sw_tln_language)
from repro.paradigms.tln.waveforms import pulse, sine_burst, step, \
    trapezoid

__all__ = [
    "DEFAULT_SEGMENTS",
    "GMC_TLN_SOURCE",
    "NS_TLN_SOURCE",
    "SW_TLN_SOURCE",
    "TLN_SOURCE",
    "TLineSpec",
    "branched_tline",
    "branched_tline_function",
    "build_gmc_tln_language",
    "build_ns_tln_language",
    "build_sw_tln_language",
    "build_tln_language",
    "gmc_tln_language",
    "ns_tln_language",
    "linear_tline",
    "mismatched_tline",
    "pulse",
    "sine_burst",
    "step",
    "sw_tln_language",
    "tln_language",
    "trapezoid",
]
