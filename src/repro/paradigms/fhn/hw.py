"""The hw-fhn extension: gap-junction and bias-current mismatch.

Analog neuron arrays realize the diffusive coupling with
transconductors and the bias current with current mirrors — both
mismatch-prone. Following the paper's recipe:

* ``Dm`` inherits ``D`` and re-declares the coupling strength ``g``
  with 10% relative mismatch (no new production rules — inherited-rule
  fallback, like GPAC's ``Wm``);
* ``Um`` inherits ``U`` and re-declares the bias current ``i`` with a
  small absolute mismatch (spike-threshold shift).

The headline study: spike-wave *timing jitter*. In an ideal excitable
ring every neuron fires at a deterministic delay after its neighbor;
mismatch turns the arrival times into a per-chip signature — another
candidate entropy source for PUF-style identification, and a fidelity
bound for wave-based signal processing.
"""

from __future__ import annotations

from functools import cache

from repro.core.language import Language
from repro.lang import parse_program
from repro.paradigms.fhn.language import fhn_language

HW_FHN_SOURCE = """
lang hw-fhn inherits fhn {
    ntyp(1,sum) Um inherit U {attr i=real[-2,2] mm(0.02,0)};
    etyp Dm inherit D {attr g=real[0,10] mm(0,0.1)};
}
"""


def build_hw_fhn_language(parent: Language | None = None) -> Language:
    """Construct a fresh hw-fhn instance on top of ``parent``."""
    parent = parent or fhn_language()
    program = parse_program(HW_FHN_SOURCE, languages={"fhn": parent})
    return program.languages["hw-fhn"]


@cache
def hw_fhn_language() -> Language:
    """The shared hw-fhn language instance."""
    return build_hw_fhn_language(fhn_language())
