"""FHN neuron and network builders, plus spike analysis.

* :func:`single_neuron` — one excitable U/W pair;
* :func:`neuron_ring` / :func:`neuron_chain` — diffusively coupled
  excitable media; stimulate one site and a spike wave propagates;
* :func:`fhn_reference` — independent scipy integration of the full
  network ODEs (membranes *and* recovery variables), the ground truth
  for the pipeline tests;
* :func:`spike_times` / :func:`wave_arrival_times` — threshold-crossing
  readout for propagation and jitter studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from repro.core.builder import GraphBuilder
from repro.core.graph import DynamicalGraph
from repro.core.language import Language
from repro.core.simulator import Trajectory
from repro.errors import GraphError
from repro.paradigms.fhn.hw import hw_fhn_language
from repro.paradigms.fhn.language import fhn_language


@dataclass(frozen=True)
class NeuronSpec:
    """FitzHugh-Nagumo cell parameters (classic values by default)."""

    a: float = 0.7
    b: float = 0.8
    eps: float = 0.08
    bias: float = 0.0

    def __post_init__(self):
        if not 0.001 <= self.eps <= 1.0:
            raise GraphError(f"eps must be in [0.001, 1], got "
                             f"{self.eps}")
        if not -2.0 <= self.bias <= 2.0:
            raise GraphError(f"bias must be in [-2, 2], got "
                             f"{self.bias}")


def _pick_types(mismatched_bias: bool, mismatched_coupling: bool,
                language: Language | None):
    needs_hw = mismatched_bias or mismatched_coupling
    if language is None:
        language = hw_fhn_language() if needs_hw else fhn_language()
    u_type = "Um" if mismatched_bias else "U"
    d_type = "Dm" if mismatched_coupling else "D"
    return language, u_type, d_type


def _add_neuron(builder: GraphBuilder, index: int, spec: NeuronSpec,
                u_type: str, v0: float, w0: float):
    u_name, w_name = f"U_{index}", f"W_{index}"
    builder.node(u_name, u_type)
    builder.set_attr(u_name, "i", spec.bias)
    builder.set_init(u_name, v0)
    builder.node(w_name, "W")
    builder.set_attr(w_name, "eps", spec.eps)
    builder.set_attr(w_name, "a", spec.a)
    builder.set_attr(w_name, "b", spec.b)
    builder.set_init(w_name, w0)
    builder.edge(u_name, u_name, f"Su_{index}", "S")
    builder.edge(w_name, u_name, f"Swu_{index}", "S")
    builder.edge(u_name, w_name, f"Suw_{index}", "S")
    return u_name


def single_neuron(spec: NeuronSpec = NeuronSpec(), *,
                  v0: float = -1.1994, w0: float = -0.6243,
                  mismatched_bias: bool = False,
                  language: Language | None = None,
                  seed: int | None = None) -> DynamicalGraph:
    """One FHN neuron (defaults start near the I=0 resting point)."""
    language, u_type, _ = _pick_types(mismatched_bias, False, language)
    builder = GraphBuilder(language, "fhn-neuron", seed=seed)
    _add_neuron(builder, 0, spec, u_type, v0, w0)
    return builder.finish()


def _coupled_network(name: str, n_neurons: int, spec: NeuronSpec,
                     coupling: float, ring: bool, stimulate: int | None,
                     stimulus: float, mismatched_bias: bool,
                     mismatched_coupling: bool,
                     language: Language | None,
                     seed: int | None) -> DynamicalGraph:
    if n_neurons < 2:
        raise GraphError(f"a network needs >= 2 neurons, got "
                         f"{n_neurons}")
    if ring and n_neurons < 3:
        # A 2-ring would duplicate the single chain edge (doubling the
        # coupling through parallel D edges); reject the degenerate
        # case rather than silently build a different network.
        raise GraphError("a ring needs >= 3 neurons; use neuron_chain "
                         "for a pair")
    if coupling < 0:
        raise GraphError(f"coupling must be >= 0, got {coupling}")
    if stimulate is not None and not 0 <= stimulate < n_neurons:
        raise GraphError(f"stimulated site {stimulate} outside "
                         f"0..{n_neurons - 1}")
    language, u_type, d_type = _pick_types(mismatched_bias,
                                           mismatched_coupling,
                                           language)
    builder = GraphBuilder(language, name, seed=seed)
    rest_v, rest_w = resting_point(spec)
    for index in range(n_neurons):
        v0 = stimulus if index == stimulate else rest_v
        _add_neuron(builder, index, spec, u_type, v0, rest_w)
    pairs = [(k, k + 1) for k in range(n_neurons - 1)]
    if ring:
        pairs.append((n_neurons - 1, 0))
    for number, (i, j) in enumerate(pairs):
        edge = f"D_{number}"
        builder.edge(f"U_{i}", f"U_{j}", edge, d_type)
        builder.set_attr(edge, "g", coupling)
    return builder.finish()


def neuron_chain(n_neurons: int = 8, spec: NeuronSpec = NeuronSpec(), *,
                 coupling: float = 0.8, stimulate: int | None = 0,
                 stimulus: float = 1.5,
                 mismatched_bias: bool = False,
                 mismatched_coupling: bool = False,
                 language: Language | None = None,
                 seed: int | None = None) -> DynamicalGraph:
    """An open chain of diffusively coupled neurons."""
    return _coupled_network("fhn-chain", n_neurons, spec, coupling,
                            False, stimulate, stimulus,
                            mismatched_bias, mismatched_coupling,
                            language, seed)


def neuron_ring(n_neurons: int = 8, spec: NeuronSpec = NeuronSpec(), *,
                coupling: float = 0.8, stimulate: int | None = 0,
                stimulus: float = 1.5,
                mismatched_bias: bool = False,
                mismatched_coupling: bool = False,
                language: Language | None = None,
                seed: int | None = None) -> DynamicalGraph:
    """A closed ring of diffusively coupled neurons."""
    return _coupled_network("fhn-ring", n_neurons, spec, coupling,
                            True, stimulate, stimulus,
                            mismatched_bias, mismatched_coupling,
                            language, seed)


# ---------------------------------------------------------------------
# Independent reference and readout
# ---------------------------------------------------------------------

def resting_point(spec: NeuronSpec = NeuronSpec(),
                  ) -> tuple[float, float]:
    """The (v, w) fixed point: v - v^3/3 - w + I = 0 intersected with
    w = (v + a)/b, found by Newton iteration."""
    v = -1.0
    for _ in range(100):
        w = (v + spec.a) / spec.b
        f = v - v ** 3 / 3.0 - w + spec.bias
        df = 1.0 - v * v - 1.0 / spec.b
        step = f / df
        v -= step
        if abs(step) < 1e-14:
            break
    return float(v), float((v + spec.a) / spec.b)


def fhn_reference(n_neurons: int, spec: NeuronSpec, coupling: float,
                  ring: bool, v0: np.ndarray, w0: np.ndarray,
                  t_eval, rtol: float = 1e-9,
                  atol: float = 1e-11) -> np.ndarray:
    """Direct scipy integration of the coupled network.

    :returns: membrane potentials, shape (n_neurons, len(t_eval)).
    """
    t_eval = np.atleast_1d(np.asarray(t_eval, dtype=float))
    couplings = np.zeros((n_neurons, n_neurons))
    for k in range(n_neurons - 1):
        couplings[k, k + 1] = couplings[k + 1, k] = coupling
    if ring and n_neurons > 2:
        couplings[0, -1] = couplings[-1, 0] = coupling

    def rhs(_t, state):
        v = state[:n_neurons]
        w = state[n_neurons:]
        diffusion = couplings @ v - couplings.sum(axis=1) * v
        dv = v - v ** 3 / 3.0 - w + spec.bias + diffusion
        dw = spec.eps * (v + spec.a - spec.b * w)
        return np.concatenate([dv, dw])

    solution = solve_ivp(rhs, (0.0, float(t_eval.max())),
                         np.concatenate([v0, w0]), t_eval=t_eval,
                         rtol=rtol, atol=atol)
    return solution.y[:n_neurons]


def spike_times(t: np.ndarray, v: np.ndarray,
                threshold: float = 0.5) -> np.ndarray:
    """Upward threshold crossings of one membrane trace (interpolated)."""
    t = np.asarray(t, dtype=float)
    v = np.asarray(v, dtype=float)
    below = v[:-1] < threshold
    above = v[1:] >= threshold
    crossings = np.where(below & above)[0]
    times = []
    for k in crossings:
        frac = (threshold - v[k]) / (v[k + 1] - v[k])
        times.append(t[k] + frac * (t[k + 1] - t[k]))
    return np.asarray(times)


def wave_arrival_times(trajectory: Trajectory, n_neurons: int,
                       threshold: float = 0.5) -> list[float | None]:
    """First spike time per neuron (None if it never fires).

    A neuron already above threshold at t=0 — the stimulated site —
    counts as arriving at 0.
    """
    arrivals: list[float | None] = []
    for index in range(n_neurons):
        trace = trajectory[f"U_{index}"]
        if trace[0] >= threshold:
            arrivals.append(0.0)
            continue
        times = spike_times(trajectory.t, trace, threshold)
        arrivals.append(float(times[0]) if len(times) else None)
    return arrivals
