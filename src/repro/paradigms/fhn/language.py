"""The FHN (FitzHugh-Nagumo) excitable-neuron Ark language.

The paper's introduction lists *spiking neural networks* among the
unconventional analog compute paradigms ([20]). The FitzHugh-Nagumo
model is the canonical continuous excitable-neuron dynamics — the
two-variable reduction of Hodgkin-Huxley that analog neuromorphic
circuits implement with a cubic conductance and one recovery
integrator::

    dv/dt = v - v^3/3 - w + I          (fast membrane potential)
    dw/dt = eps * (v + a - b*w)        (slow recovery)

Each neuron is a ``U`` (membrane) / ``W`` (recovery) node pair tied by
``S`` edges; the membrane's cubic self-dynamics live on a required
``S`` self edge. ``D`` edges add diffusive (gap-junction) coupling
between membranes, turning a chain or ring of neurons into an
excitable medium that propagates spike waves — the signal-processing
substrate of the oscillatory/excitable network literature the paper
cites ([14, 44]).

Node pairing is enforced by the validity rules: every membrane needs
exactly one recovery partner (in and out), its cubic self edge, and
any number of diffusive neighbors; every recovery node needs exactly
its membrane pair.
"""

from __future__ import annotations

from functools import cache

from repro.core.language import Language
from repro.lang import parse_language

FHN_SOURCE = """
lang fhn {
    ntyp(1,sum) U {attr i=real[-2,2]};
    ntyp(1,sum) W {attr eps=real[0.001,1], attr a=real[-2,2],
                   attr b=real[0,2]};
    etyp S {};
    etyp D {attr g=real[0,10]};

    // Membrane self-dynamics: v - v^3/3 + I (cubic nullcline).
    prod(e:S, s:U->s:U) s <= var(s)-var(s)*var(s)*var(s)/3+s.i;
    // Recovery feedback into the membrane: -w.
    prod(e:S, s:W->t:U) t <= 0-var(s);
    // Recovery dynamics: eps*(v + a - b*w), driven by the membrane.
    prod(e:S, s:U->t:W) t <= t.eps*(var(s)+t.a-t.b*var(t));

    // Diffusive (gap-junction) coupling, symmetric.
    prod(e:D, s:U->t:U) t <= e.g*(var(s)-var(t));
    prod(e:D, s:U->t:U) s <= e.g*(var(t)-var(s));

    cstr U {acc[match(1,1,S,U),
                match(1,1,S,[W]->U),
                match(1,1,S,U->[W]),
                match(0,inf,D,U->[U]),
                match(0,inf,D,[U]->U)]};
    cstr W {acc[match(1,1,S,[U]->W),
                match(1,1,S,W->[U])]};
}
"""


def build_fhn_language() -> Language:
    """Construct a fresh FHN language instance (mainly for tests)."""
    return parse_language(FHN_SOURCE)


@cache
def fhn_language() -> Language:
    """The shared FHN language instance."""
    return build_fhn_language()
