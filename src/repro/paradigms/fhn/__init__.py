"""FitzHugh-Nagumo excitable-neuron compute paradigm.

The fifth paradigm DSL of this repository: spiking neural networks are
on the paper's list of unconventional analog compute paradigms (§1),
and the FitzHugh-Nagumo model is the canonical continuous
excitable-neuron dynamics analog neuromorphic arrays implement.

Public surface:

* :func:`fhn_language` / :func:`hw_fhn_language` — the DSL and its
  mismatch extension (gap-junction strength, bias current);
* :mod:`repro.paradigms.fhn.networks` — neuron/chain/ring builders, an
  independent scipy reference, and spike-train readout.
"""

from repro.paradigms.fhn.hw import (HW_FHN_SOURCE, build_hw_fhn_language,
                                    hw_fhn_language)
from repro.paradigms.fhn.language import (FHN_SOURCE,
                                          build_fhn_language,
                                          fhn_language)
from repro.paradigms.fhn.networks import (NeuronSpec, fhn_reference,
                                          neuron_chain, neuron_ring,
                                          resting_point, single_neuron,
                                          spike_times,
                                          wave_arrival_times)

__all__ = [
    "FHN_SOURCE",
    "HW_FHN_SOURCE",
    "NeuronSpec",
    "build_fhn_language",
    "build_hw_fhn_language",
    "fhn_language",
    "fhn_reference",
    "hw_fhn_language",
    "neuron_chain",
    "neuron_ring",
    "resting_point",
    "single_neuron",
    "spike_times",
    "wave_arrival_times",
]
