"""The OBC (oscillator-based computing) Ark language (§7.2, Fig. 12a).

A network of coupled oscillators computes through its synchronization
behavior. The phase dynamics follow the modified Kuramoto model (Eq. 6)::

    dphi_i/dt = -C1 * sum_j K_ij * sin(phi_i - phi_j) - C2 * sin(2*phi_i)

with C1 = 1.6e9 and C2 = 1e9 (the paper's constants, embedded in the
production rules). The ``-C2*sin(2*phi)`` term is second-harmonic
injection locking: it binarizes phases toward {0, pi}, carried by a
``Cpl`` self edge on every oscillator (the validity rule demands exactly
one).
"""

from __future__ import annotations

from functools import cache

from repro.core.language import Language
from repro.lang import parse_language

OBC_SOURCE = """
lang obc {
    ntyp(1,sum) Osc {};
    etyp Cpl {attr k=real[-8,8]};

    prod(e:Cpl, s:Osc->t:Osc) s <= -1.6e9*e.k*sin(var(s)-var(t));
    prod(e:Cpl, s:Osc->t:Osc) t <= -1.6e9*e.k*sin(-var(s)+var(t));
    prod(e:Cpl, s:Osc->s:Osc) s <= -1e9*sin(2*var(s));

    cstr Osc {acc[match(1,1,Cpl,Osc),
                  match(0,inf,Cpl,Osc->[Osc]),
                  match(0,inf,Cpl,[Osc]->Osc)]};
}
"""

#: The paper's scaling constants (rad/s).
C1 = 1.6e9
C2 = 1e9


def build_obc_language() -> Language:
    """Construct a fresh OBC language instance (mainly for tests)."""
    return parse_language(OBC_SOURCE)


@cache
def obc_language() -> Language:
    """The shared OBC language instance."""
    return build_obc_language()
