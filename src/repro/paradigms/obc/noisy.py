"""The ns-obc language: phase noise in oscillator-based computing.

Coupled-oscillator Ising machines compute through synchronization, and
synchronization is exactly what thermal phase noise attacks — the
solution-quality-vs-noise-amplitude tradeoff is the OBC counterpart of
PUF reliability. ``Cpln`` inherits the coupling edge type and adds a
``nsig`` phase-noise amplitude (rad·√s); its self rule restates the
second-harmonic injection-locking term and injects white phase noise
into the oscillator, one independent Wiener path per oscillator.

``ns-obc`` inherits ofs-obc, so noise composes with the §7.2 offset
nonideality in one language chain (a noisy, offset-afflicted
accelerator is ``Cpl_ofs`` couplings + ``Cpln`` self edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cache

import numpy as np

from repro.core.language import Language
from repro.lang import parse_program
from repro.paradigms.obc.ofs import ofs_obc_language

NS_OBC_SOURCE = """
lang ns-obc inherits ofs-obc {
    etyp Cpln inherit Cpl {attr nsig=real[0,inf] const};

    // Noisy SHIL self edge: binarization term plus white phase noise.
    prod(e:Cpln, s:Osc->s:Osc) s <= -1e9*sin(2*var(s)) + noise(e.nsig);
}
"""


def build_ns_obc_language(parent: Language | None = None) -> Language:
    """Construct a fresh ns-obc instance on top of ``parent``."""
    parent = parent or ofs_obc_language()
    program = parse_program(NS_OBC_SOURCE,
                            languages={"ofs-obc": parent})
    return program.languages["ns-obc"]


@cache
def ns_obc_language() -> Language:
    """The shared ns-obc language instance."""
    return build_ns_obc_language(ofs_obc_language())


@dataclass(frozen=True)
class MaxcutTrialFactory:
    """A picklable per-trial builder for noisy max-cut sweeps.

    Each "seed" is one trial number selecting a row of the shared
    initial-phase matrix; the built network carries ``noise_sigma``
    phase noise on every oscillator. Because the class (unlike the
    closures it replaces) pickles, :func:`repro.paradigms.obc.
    maxcut_noise_sweep` can shard its batched SDE trials across a
    process pool bit-identically.
    """

    edges: tuple
    n_vertices: int
    #: (n_trials, n_vertices) initial phases, one row per trial.
    initials: tuple
    noise_sigma: float = 0.0

    def __call__(self, trial):
        from repro.paradigms.obc.maxcut import maxcut_network

        return maxcut_network(
            list(self.edges), self.n_vertices,
            initial_phases=np.asarray(self.initials[trial]),
            noise_sigma=self.noise_sigma)
