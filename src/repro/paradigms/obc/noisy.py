"""The ns-obc language: phase noise in oscillator-based computing.

Coupled-oscillator Ising machines compute through synchronization, and
synchronization is exactly what thermal phase noise attacks — the
solution-quality-vs-noise-amplitude tradeoff is the OBC counterpart of
PUF reliability. ``Cpln`` inherits the coupling edge type and adds a
``nsig`` phase-noise amplitude (rad·√s); its self rule restates the
second-harmonic injection-locking term and injects white phase noise
into the oscillator, one independent Wiener path per oscillator.

``ns-obc`` inherits ofs-obc, so noise composes with the §7.2 offset
nonideality in one language chain (a noisy, offset-afflicted
accelerator is ``Cpl_ofs`` couplings + ``Cpln`` self edges).
"""

from __future__ import annotations

from functools import cache

from repro.core.language import Language
from repro.lang import parse_program
from repro.paradigms.obc.ofs import ofs_obc_language

NS_OBC_SOURCE = """
lang ns-obc inherits ofs-obc {
    etyp Cpln inherit Cpl {attr nsig=real[0,inf] const};

    // Noisy SHIL self edge: binarization term plus white phase noise.
    prod(e:Cpln, s:Osc->s:Osc) s <= -1e9*sin(2*var(s)) + noise(e.nsig);
}
"""


def build_ns_obc_language(parent: Language | None = None) -> Language:
    """Construct a fresh ns-obc instance on top of ``parent``."""
    parent = parent or ofs_obc_language()
    program = parse_program(NS_OBC_SOURCE,
                            languages={"ofs-obc": parent})
    return program.languages["ns-obc"]


@cache
def ns_obc_language() -> Language:
    """The shared ns-obc language instance."""
    return build_ns_obc_language(ofs_obc_language())
