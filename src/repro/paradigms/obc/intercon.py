"""The intercon-obc extension (§7.2, Fig. 13): interconnect tradeoffs.

Oscillators are partitioned into two groups (``Osc_G0``/``Osc_G1``).
Cheap local couplings (``Cpl_l``, cost 1) may only connect oscillators of
the same group; expensive global couplings (``Cpl_g``, cost 10) carry the
cross-group connections. The validity rules enforce the restriction at
compile time, letting an architect soundly intermix the all-to-all-style
routing of [32] (30 oscillators, area dominated by routing) with the
neighbor-coupled fabric of [5] (560 oscillators, minimal routing) inside
one computation.

:func:`interconnect_cost` sums the ``cost`` attributes — the resource
metric a designer sweeps when exploring this tradeoff.
"""

from __future__ import annotations

from functools import cache

from repro.core.graph import DynamicalGraph
from repro.core.language import Language
from repro.lang import parse_program
from repro.paradigms.obc.language import obc_language

INTERCON_OBC_SOURCE = """
lang intercon-obc inherits obc {
    ntyp(1,sum) Osc_G0 inherit Osc {};
    ntyp(1,sum) Osc_G1 inherit Osc {};
    etyp Cpl_l inherit Cpl {attr k=real[-8,8], attr cost=int[1,1]};
    etyp Cpl_g inherit Cpl {attr k=real[-8,8], attr cost=int[10,10]};

    cstr Osc_G0 {acc[match(1,1,Cpl_l,Osc_G0),
                     match(0,inf,Cpl_l,Osc_G0->[Osc_G0]),
                     match(0,inf,Cpl_l,[Osc_G0]->Osc_G0),
                     match(0,inf,Cpl_g,Osc_G0->[Osc]),
                     match(0,inf,Cpl_g,[Osc]->Osc_G0)]};
    cstr Osc_G1 {acc[match(1,1,Cpl_l,Osc_G1),
                     match(0,inf,Cpl_l,Osc_G1->[Osc_G1]),
                     match(0,inf,Cpl_l,[Osc_G1]->Osc_G1),
                     match(0,inf,Cpl_g,Osc_G1->[Osc]),
                     match(0,inf,Cpl_g,[Osc]->Osc_G1)]};
}
"""


def build_intercon_obc_language(parent: Language | None = None,
                                ) -> Language:
    """Construct a fresh intercon-obc instance on top of ``parent``."""
    parent = parent or obc_language()
    program = parse_program(INTERCON_OBC_SOURCE,
                            languages={"obc": parent})
    return program.languages["intercon-obc"]


@cache
def intercon_obc_language() -> Language:
    """The shared intercon-obc language instance."""
    return build_intercon_obc_language(obc_language())


def interconnect_cost(graph: DynamicalGraph) -> int:
    """Total routing cost: the sum of every edge's ``cost`` attribute
    (edges without one — e.g. plain ``Cpl`` — count as 0)."""
    total = 0
    for edge in graph.edges:
        total += int(edge.attrs.get("cost", 0))
    return total
