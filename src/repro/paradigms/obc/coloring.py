"""Graph coloring on coupled oscillators (the [32] workload of §7.2).

The paper's OBC section cites graph coloring as the other major
oscillator-computing workload. Coloring with k colors uses the same
Kuramoto coupling but a *k-th harmonic* injection-locking term, which
binarizes phases onto the k-th roots of unity instead of {0, pi}::

    dphi_i/dt = -C1 * sum_j K_ij sin(phi_i - phi_j) - C2 * sin(k*phi_i)

We codify this as the ``color-obc`` language: an ``OscK`` node type that
inherits ``Osc`` and carries the harmonic order as an attribute, with a
new self-edge production rule (new rules must mention the new type,
§4.1.1). Adjacent vertices couple anti-ferromagnetically and settle on
different roots of unity — i.e. different colors — when the graph is
k-colorable and the trajectory avoids local optima.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cache

import numpy as np

from repro.core.builder import GraphBuilder
from repro.core.language import Language
from repro.core.simulator import Trajectory, simulate
from repro.lang import parse_program
from repro.paradigms.obc.language import obc_language

COLOR_OBC_SOURCE = """
lang color-obc inherits obc {
    ntyp(1,sum) OscK inherit Osc {attr k=real[2,8]};

    prod(e:Cpl, s:OscK->s:OscK) s <= -1e9*sin(s.k*var(s));
}
"""


def build_color_obc_language(parent: Language | None = None) -> Language:
    """Construct a fresh color-obc instance on top of ``parent``."""
    parent = parent or obc_language()
    program = parse_program(COLOR_OBC_SOURCE, languages={"obc": parent})
    return program.languages["color-obc"]


@cache
def color_obc_language() -> Language:
    """The shared color-obc language instance."""
    return build_color_obc_language(obc_language())


def coloring_network(edges: list[tuple[int, int]], n_vertices: int,
                     n_colors: int, *, initial_phases=None,
                     coupling: float = -1.0,
                     seed: int | None = None):
    """Build the k-coloring oscillator network."""
    language = color_obc_language()
    builder = GraphBuilder(language, f"color-{n_colors}", seed=seed)
    phases = (np.zeros(n_vertices) if initial_phases is None
              else np.asarray(initial_phases, dtype=float))
    for vertex in range(n_vertices):
        name = f"Osc_{vertex}"
        builder.node(name, "OscK")
        builder.set_attr(name, "k", float(n_colors))
        builder.set_init(name, float(phases[vertex]))
        builder.edge(name, name, f"Shil_{vertex}", "Cpl")
        builder.set_attr(f"Shil_{vertex}", "k", 0.0)
    for index, (i, j) in enumerate(edges):
        edge_name = f"Cpl_{index}"
        builder.edge(f"Osc_{i}", f"Osc_{j}", edge_name, "Cpl")
        builder.set_attr(edge_name, "k", coupling)
    return builder.finish()


def classify_color(phase: float, n_colors: int, d: float) -> int | None:
    """Bin a phase onto the nearest k-th root of unity within ``d``."""
    folded = math.fmod(phase, 2.0 * math.pi)
    if folded < 0:
        folded += 2.0 * math.pi
    spacing = 2.0 * math.pi / n_colors
    nearest = round(folded / spacing) % n_colors
    target = nearest * spacing
    distance = abs(folded - target)
    distance = min(distance, 2.0 * math.pi - distance)
    return nearest if distance <= d else None


@dataclass
class ColoringResult:
    """Outcome of one coloring trial."""

    edges: list[tuple[int, int]]
    n_vertices: int
    n_colors: int
    d: float
    colors: list[int | None] = field(default_factory=list)
    trajectory: Trajectory | None = None

    @property
    def synchronized(self) -> bool:
        return all(c is not None for c in self.colors)

    @property
    def conflicts(self) -> int | None:
        """Edges whose endpoints share a color (None if unsynced)."""
        if not self.synchronized:
            return None
        return sum(1 for i, j in self.edges
                   if self.colors[i] == self.colors[j])

    @property
    def proper(self) -> bool:
        return self.synchronized and self.conflicts == 0


def solve_coloring(edges: list[tuple[int, int]], n_vertices: int,
                   n_colors: int, *, d: float = 0.2,
                   seed: int | None = None,
                   t_end: float = 200e-9,
                   rng: np.random.Generator | None = None,
                   ) -> ColoringResult:
    """Run the oscillator coloring solver on one instance."""
    rng = rng or np.random.default_rng(seed)
    initial = rng.uniform(0.0, 2.0 * math.pi, n_vertices)
    graph = coloring_network(edges, n_vertices, n_colors,
                             initial_phases=initial, seed=seed)
    trajectory = simulate(graph, (0.0, t_end), n_points=60,
                          rtol=1e-8, atol=1e-10)
    result = ColoringResult(edges=edges, n_vertices=n_vertices,
                            n_colors=n_colors, d=d,
                            trajectory=trajectory)
    result.colors = [
        classify_color(trajectory.final(f"Osc_{v}"), n_colors, d)
        for v in range(n_vertices)]
    return result
