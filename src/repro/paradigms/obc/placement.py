"""Oscillator placement onto the intercon-obc fabric (§7.2).

The intercon-obc language (Fig. 13) makes the local/global interconnect
tradeoff *checkable*: local couplings (``Cpl_l``, cost 1) stay within an
oscillator group, global couplings (``Cpl_g``, cost 10) cross groups.
What the language does not do is *choose* the grouping — that is the
placement problem every architect using the fabric faces: assign the
workload graph's oscillators to the two groups so that expensive global
edges are minimized.

This module closes that loop:

* :func:`evaluate_placement` — cost model for a grouping;
* :func:`place_random` / :func:`place_greedy` /
  :func:`place_kernighan_lin` — a baseline and two optimizers (greedy
  vertex moves, and networkx's Kernighan-Lin bisection for the
  balanced-groups variant);
* :func:`placed_network` — materialize a placement as a *valid*
  intercon-obc dynamical graph (the language's validity rules then
  machine-check that every coupling respects its group);
* the placed network computes exactly like the flat obc network —
  ``Cpl_l``/``Cpl_g`` inherit ``Cpl``'s Kuramoto rules — so max-cut
  accuracy is placement-invariant while cost is not (asserted in the
  tests; this is the §7.2 programmability/efficiency tradeoff made
  concrete).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.builder import GraphBuilder
from repro.core.graph import DynamicalGraph
from repro.core.language import Language
from repro.errors import GraphError
from repro.paradigms.obc.intercon import intercon_obc_language

#: Fig. 13 edge costs.
LOCAL_COST = 1
GLOBAL_COST = 10


@dataclass(frozen=True)
class Placement:
    """An assignment of workload vertices to the two oscillator groups."""

    groups: tuple[int, ...]
    n_local: int
    n_global: int
    local_cost: int = LOCAL_COST
    global_cost: int = GLOBAL_COST

    @property
    def coupling_cost(self) -> int:
        """Routing cost of the workload couplings (excludes the
        per-oscillator SHIL self edges, which every placement pays
        equally)."""
        return (self.n_local * self.local_cost
                + self.n_global * self.global_cost)

    @property
    def n_vertices(self) -> int:
        return len(self.groups)

    def describe(self) -> str:
        sizes = (self.groups.count(0), self.groups.count(1))
        return (f"placement(groups {sizes[0]}+{sizes[1]}, "
                f"{self.n_local} local + {self.n_global} global edges, "
                f"cost {self.coupling_cost})")


def _check_instance(edges, n_vertices: int):
    for i, j in edges:
        if not (0 <= i < n_vertices and 0 <= j < n_vertices):
            raise GraphError(
                f"edge ({i}, {j}) outside vertex range 0..{n_vertices - 1}")
        if i == j:
            raise GraphError(f"self loop ({i}, {j}) is not a coupling")


def evaluate_placement(edges, groups, *,
                       local_cost: int = LOCAL_COST,
                       global_cost: int = GLOBAL_COST) -> Placement:
    """Score a grouping: local/global edge counts and routing cost."""
    groups = tuple(int(g) for g in groups)
    if set(groups) - {0, 1}:
        raise GraphError("groups must be 0 or 1")
    _check_instance(edges, len(groups))
    n_global = sum(1 for i, j in edges if groups[i] != groups[j])
    return Placement(groups=groups, n_local=len(edges) - n_global,
                     n_global=n_global, local_cost=local_cost,
                     global_cost=global_cost)


def place_random(edges, n_vertices: int, *, seed: int = 0,
                 **costs) -> Placement:
    """Uniformly random grouping — the baseline optimizers must beat."""
    rng = np.random.default_rng(seed)
    groups = rng.integers(0, 2, n_vertices)
    return evaluate_placement(edges, groups, **costs)


def place_greedy(edges, n_vertices: int, *, seed: int = 0,
                 max_passes: int = 10, **costs) -> Placement:
    """Greedy local search: repeatedly move the vertex whose group flip
    reduces the number of cross-group edges the most.

    Unbalanced groups are allowed (the fabric does not require balance);
    the all-in-one-group placement — zero global edges — is therefore a
    legal optimum, and greedy often finds it. Use
    :func:`place_kernighan_lin` when the groups must stay balanced
    (e.g. each group is one physical oscillator bank of fixed size).
    """
    _check_instance(edges, n_vertices)
    rng = np.random.default_rng(seed)
    groups = list(rng.integers(0, 2, n_vertices))
    adjacency = [[] for _ in range(n_vertices)]
    for i, j in edges:
        adjacency[i].append(j)
        adjacency[j].append(i)
    for _ in range(max_passes):
        improved = False
        for vertex in range(n_vertices):
            cross = sum(1 for peer in adjacency[vertex]
                        if groups[peer] != groups[vertex])
            same = len(adjacency[vertex]) - cross
            if cross > same:  # flipping turns cross into same
                groups[vertex] ^= 1
                improved = True
        if not improved:
            break
    return evaluate_placement(edges, groups, **costs)


def place_kernighan_lin(edges, n_vertices: int, *, seed: int = 0,
                        **costs) -> Placement:
    """Balanced bisection via networkx's Kernighan-Lin heuristic."""
    _check_instance(edges, n_vertices)
    graph = nx.Graph()
    graph.add_nodes_from(range(n_vertices))
    graph.add_edges_from(edges)
    part_a, _part_b = nx.algorithms.community.kernighan_lin_bisection(
        graph, seed=seed)
    groups = [0 if v in part_a else 1 for v in range(n_vertices)]
    return evaluate_placement(edges, groups, **costs)


def placed_network(edges, placement: Placement, *,
                   coupling: float = -1.0,
                   initial_phases=None,
                   weights=None,
                   language: Language | None = None,
                   ) -> DynamicalGraph:
    """Materialize a placed max-cut network in the intercon-obc
    language.

    Oscillators become ``Osc_G0``/``Osc_G1`` nodes per the placement;
    same-group couplings become ``Cpl_l`` edges and cross-group
    couplings ``Cpl_g``. The SHIL self edges are ``Cpl_l`` (the Fig. 13
    validity rules demand a local self edge on every grouped
    oscillator). Validation then proves no local edge crosses groups.
    """
    language = language or intercon_obc_language()
    n_vertices = placement.n_vertices
    _check_instance(edges, n_vertices)
    phases = np.zeros(n_vertices) if initial_phases is None \
        else np.asarray(initial_phases, dtype=float)
    builder = GraphBuilder(language, "placed-maxcut")
    for vertex in range(n_vertices):
        name = f"Osc_{vertex}"
        builder.node(name, f"Osc_G{placement.groups[vertex]}")
        builder.set_init(name, float(phases[vertex]))
        builder.edge(name, name, f"Shil_{vertex}", "Cpl_l")
        builder.set_attr(f"Shil_{vertex}", "k", 0.0)
        builder.set_attr(f"Shil_{vertex}", "cost",
                         placement.local_cost)
    for index, (i, j) in enumerate(edges):
        local = placement.groups[i] == placement.groups[j]
        edge_type = "Cpl_l" if local else "Cpl_g"
        cost = placement.local_cost if local else placement.global_cost
        name = f"Cpl_{index}"
        builder.edge(f"Osc_{i}", f"Osc_{j}", name, edge_type)
        weight = 1.0 if weights is None else float(weights[index])
        builder.set_attr(name, "k", coupling * weight)
        builder.set_attr(name, "cost", cost)
    return builder.finish()


def placement_study(edges, n_vertices: int, *, seed: int = 0,
                    ) -> dict[str, Placement]:
    """Run all three placers on one instance (the design-exploration
    loop an architect would script)."""
    return {
        "random": place_random(edges, n_vertices, seed=seed),
        "greedy": place_greedy(edges, n_vertices, seed=seed),
        "kernighan-lin": place_kernighan_lin(edges, n_vertices,
                                             seed=seed),
    }
