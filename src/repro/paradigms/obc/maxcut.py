"""The OBC max-cut solver (§7.2, Table 1).

Mapping: every graph vertex becomes an oscillator, every graph edge a
coupling with strength k = -1 (anti-ferromagnetic — the Kuramoto flow
then drives adjacent oscillators toward anti-phase, so the binarized
phases encode a large cut). Every oscillator carries the
second-harmonic-injection self edge that locks phases to {0, pi}.

Readout: at steady state, phases within ``d`` radians of 0 (mod 2*pi) go
to partition 0, within ``d`` of pi to partition 1; anything else is
*unknown*. A trial "synchronizes" when no oscillator is unknown and is
"solved" when the resulting cut matches the brute-force maximum. The
deviation tolerance ``d`` is external to the circuit, which is exactly
what makes the paper's offset-mitigation story possible: the same
trajectory is re-read with a wider ``d``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.builder import GraphBuilder
from repro.core.graph import DynamicalGraph
from repro.core.language import Language
from repro.core.simulator import Trajectory, simulate
from repro.paradigms.obc.graphs import brute_force_maxcut, cut_value
from repro.paradigms.obc.language import obc_language
from repro.paradigms.obc.ofs import ofs_obc_language

#: Default steady-state horizon: with C1/C2 ~ 1e9 rad/s the network locks
#: within tens of nanoseconds.
DEFAULT_T_END = 100e-9

#: Paper coupling strength for max-cut edges.
MAXCUT_COUPLING = -1.0


def maxcut_network(edges: list[tuple[int, int]], n_vertices: int, *,
                   initial_phases=None,
                   language: Language | None = None,
                   edge_type: str = "Cpl",
                   coupling: float = MAXCUT_COUPLING,
                   weights: list[float] | None = None,
                   seed: int | None = None,
                   noise_sigma: float = 0.0) -> DynamicalGraph:
    """Build the coupled-oscillator network for a max-cut instance.

    :param initial_phases: per-oscillator starting phases (defaults to
        zero; the solver randomizes them per trial).
    :param edge_type: ``Cpl`` for the ideal solver or ``Cpl_ofs`` for the
        offset-afflicted one (requires the ofs-obc language and a seed).
    :param weights: optional positive edge weights (weighted Ising
        instances); coupling strength becomes ``coupling * weight``.
    :param noise_sigma: per-oscillator phase-noise amplitude (rad·√s);
        > 0 swaps the SHIL self edges for the ns-obc ``Cpln`` type and
        makes the network a stochastic system (integrate with
        :func:`repro.sim.solve_sde`).
    """
    noisy = noise_sigma > 0.0
    if language is None:
        if noisy:
            from repro.paradigms.obc.noisy import ns_obc_language
            language = ns_obc_language()
        else:
            language = (ofs_obc_language() if edge_type == "Cpl_ofs"
                        else obc_language())
    builder = GraphBuilder(language, "maxcut", seed=seed)
    phases = np.zeros(n_vertices) if initial_phases is None \
        else np.asarray(initial_phases, dtype=float)
    self_type = "Cpln" if noisy else "Cpl"
    for vertex in range(n_vertices):
        name = f"Osc_{vertex}"
        builder.node(name, "Osc")
        builder.set_init(name, float(phases[vertex]))
        builder.edge(name, name, f"Shil_{vertex}", self_type)
        builder.set_attr(f"Shil_{vertex}", "k", 0.0)
        if noisy:
            builder.set_attr(f"Shil_{vertex}", "nsig", noise_sigma)
    for index, (i, j) in enumerate(edges):
        edge_name = f"Cpl_{index}"
        builder.edge(f"Osc_{i}", f"Osc_{j}", edge_name, edge_type)
        weight = 1.0 if weights is None else float(weights[index])
        builder.set_attr(edge_name, "k", coupling * weight)
        if edge_type == "Cpl_ofs":
            builder.set_attr(edge_name, "offset", 0.0)
    return builder.finish()


def classify_phase(phase: float, d: float) -> int | None:
    """Fold a phase into [0, 2*pi) and bin it: 0 near {0, 2*pi}, 1 near
    pi, None (unknown) elsewhere. ``d`` is the tolerance in radians."""
    folded = math.fmod(phase, 2.0 * math.pi)
    if folded < 0:
        folded += 2.0 * math.pi
    if min(folded, 2.0 * math.pi - folded) <= d:
        return 0
    if abs(folded - math.pi) <= d:
        return 1
    return None


def extract_partition(trajectory: Trajectory, n_vertices: int,
                      d: float) -> list[int | None]:
    """Steady-state partition read from the final oscillator phases."""
    return [classify_phase(trajectory.final(f"Osc_{v}"), d)
            for v in range(n_vertices)]


@dataclass
class MaxcutResult:
    """Outcome of one max-cut trial at one readout tolerance."""

    edges: list[tuple[int, int]]
    n_vertices: int
    d: float
    partition: list[int | None] = field(default_factory=list)
    optimal_cut: float = 0
    weights: list[float] | None = None

    @property
    def synchronized(self) -> bool:
        """Every oscillator settled within d of 0 or pi."""
        return all(p is not None for p in self.partition)

    @property
    def cut(self) -> float | None:
        if not self.synchronized:
            return None
        return cut_value(self.edges, self.partition, self.weights)

    @property
    def solved(self) -> bool:
        """Synchronized and the cut is maximal (small float tolerance
        for weighted instances)."""
        if not self.synchronized:
            return False
        return self.cut >= self.optimal_cut - 1e-9


def solve_maxcut(edges: list[tuple[int, int]], n_vertices: int, *,
                 d: float | tuple[float, ...] = 0.01 * math.pi,
                 initial_phases=None,
                 edge_type: str = "Cpl",
                 language: Language | None = None,
                 weights: list[float] | None = None,
                 seed: int | None = None,
                 t_end: float = DEFAULT_T_END,
                 method: str = "RK45",
                 rng: np.random.Generator | None = None,
                 ) -> MaxcutResult | list[MaxcutResult]:
    """Run the solver on one instance and read out the partition.

    ``d`` may be a single tolerance or a tuple — the same trajectory is
    then re-read at each tolerance (the paper's mitigation experiment).
    ``weights`` turns the instance into weighted max-cut (the weighted
    Ising machine workload of [7]).
    """
    if initial_phases is None:
        rng = rng or np.random.default_rng(seed)
        initial_phases = rng.uniform(0.0, 2.0 * math.pi, n_vertices)
    graph = maxcut_network(edges, n_vertices,
                           initial_phases=initial_phases,
                           language=language, edge_type=edge_type,
                           weights=weights, seed=seed)
    trajectory = simulate(graph, (0.0, t_end), n_points=60,
                          method=method, rtol=1e-8, atol=1e-10)
    optimal = brute_force_maxcut(edges, n_vertices, weights)

    tolerances = d if isinstance(d, tuple) else (d,)
    results = []
    for tolerance in tolerances:
        result = MaxcutResult(edges=edges, n_vertices=n_vertices,
                              d=tolerance, optimal_cut=optimal,
                              weights=weights)
        result.partition = extract_partition(trajectory, n_vertices,
                                             tolerance)
        results.append(result)
    return results if isinstance(d, tuple) else results[0]


@dataclass
class MaxcutSweep:
    """Aggregate statistics over a population of instances (Table 1)."""

    d: float
    trials: int = 0
    synchronized: int = 0
    solved: int = 0

    @property
    def sync_probability(self) -> float:
        return self.synchronized / self.trials if self.trials else 0.0

    @property
    def solved_probability(self) -> float:
        return self.solved / self.trials if self.trials else 0.0

    def record(self, result: MaxcutResult):
        self.trials += 1
        self.synchronized += int(result.synchronized)
        self.solved += int(result.solved)


def maxcut_experiment(graphs: list[list[tuple[int, int]]],
                      n_vertices: int = 4, *,
                      tolerances: tuple[float, ...] = (0.01 * math.pi,
                                                       0.1 * math.pi),
                      edge_type: str = "Cpl",
                      language: Language | None = None,
                      mismatch_seeds: bool = False,
                      seed: int = 0,
                      t_end: float = DEFAULT_T_END,
                      ) -> dict[float, MaxcutSweep]:
    """The Table 1 experiment for one solver configuration.

    :param mismatch_seeds: when True every trial uses its own mismatch
        seed (a different fabricated instance per trial, §4.3); the
        ideal solver passes False so no mismatch is sampled.
    """
    sweeps = {tolerance: MaxcutSweep(d=tolerance)
              for tolerance in tolerances}
    rng = np.random.default_rng(seed)
    for index, edges in enumerate(graphs):
        initial = rng.uniform(0.0, 2.0 * math.pi, n_vertices)
        results = solve_maxcut(
            edges, n_vertices, d=tuple(tolerances),
            initial_phases=initial, edge_type=edge_type,
            language=language,
            seed=(seed * 100003 + index) if mismatch_seeds else None,
            t_end=t_end)
        for result in results:
            sweeps[result.d].record(result)
    return sweeps


#: Fixed-step cap for the explicit SDE solvers on Kuramoto dynamics:
#: the Jacobian reaches ~5e9 rad/s (C1*k*cos + 2*C2*cos), so explicit
#: steps must stay below ~2/5e9.
NOISE_MAX_STEP = 2.5e-10


@dataclass
class NoisePoint:
    """Solution quality of the noisy solver at one noise amplitude."""

    noise_sigma: float
    trials: int = 0
    synchronized: int = 0
    solved: int = 0
    cut_ratios: list[float] = field(default_factory=list)

    @property
    def sync_probability(self) -> float:
        return self.synchronized / self.trials if self.trials else 0.0

    @property
    def solved_probability(self) -> float:
        return self.solved / self.trials if self.trials else 0.0

    @property
    def mean_cut_ratio(self) -> float:
        """Mean achieved-cut / optimal-cut over synchronized trials."""
        if not self.cut_ratios:
            return 0.0
        return float(np.mean(self.cut_ratios))


def maxcut_noise_sweep(edges: list[tuple[int, int]], n_vertices: int,
                       noise_sigmas, *, trials: int = 16,
                       d: float = 0.1 * math.pi,
                       t_end: float = DEFAULT_T_END,
                       n_points: int = 60,
                       max_step: float = NOISE_MAX_STEP,
                       method: str = "heun",
                       seed: int = 0,
                       processes: int | None = None,
                       freeze_tol: float | None = None,
                       ) -> list[NoisePoint]:
    """Solution quality vs. phase-noise amplitude (batched SDE sweep).

    For each amplitude, ``trials`` independent runs — each with its own
    random initial phases (shared across amplitudes, so the comparison
    isolates the noise) and its own Wiener realization — are integrated
    in one vectorized SDE batch. The readout follows Table 1: a trial
    synchronizes when every phase bins within ``d`` of {0, pi} and is
    solved when its cut is maximal.

    :param processes: shard each amplitude's SDE batch into per-core
        sub-batches (bit-identical to the unsharded solve: Wiener
        streams are keyed per trial token, never by batch layout).
    :param freeze_tol: per-instance step masks — settled trials freeze
        instead of stepping to the horizon (see
        :func:`repro.sim.solve_sde`); an approximation knob, off by
        default.
    """
    from repro.sim import compile_batch, solve_sde
    from repro.sim.plan import sharded_solve_sde
    from repro.core.compiler import compile_graph
    from repro.paradigms.obc.noisy import MaxcutTrialFactory

    rng = np.random.default_rng(seed)
    initials = rng.uniform(0.0, 2.0 * math.pi, (trials, n_vertices))
    optimal = brute_force_maxcut(edges, n_vertices)
    points: list[NoisePoint] = []
    for sigma in noise_sigmas:
        factory = MaxcutTrialFactory(
            edges=tuple(tuple(edge) for edge in edges),
            n_vertices=n_vertices,
            initials=tuple(tuple(row) for row in initials),
            noise_sigma=float(sigma))
        systems = [compile_graph(factory(trial))
                   for trial in range(trials)]
        if sigma > 0.0:
            tokens = [f"{seed}:{k}" for k in range(trials)]
            options = dict(n_points=n_points, method=method,
                           max_step=max_step, freeze_tol=freeze_tol)
            batch = None
            if processes and processes > 1:
                # Every trial is its own "chip" (chip_keys = row ids).
                batch = sharded_solve_sde(
                    factory, list(range(trials)), list(range(trials)),
                    tokens, systems, (0.0, t_end), options, processes)
            if batch is None:
                batch = solve_sde(compile_batch(systems), (0.0, t_end),
                                  noise_seeds=tokens, **options)
        else:
            from repro.sim import solve_batch
            batch = solve_batch(compile_batch(systems), (0.0, t_end),
                                n_points=n_points, method="rk4",
                                max_step=max_step,
                                freeze_tol=freeze_tol)
        point = NoisePoint(noise_sigma=float(sigma))
        for trial in range(trials):
            result = MaxcutResult(edges=edges, n_vertices=n_vertices,
                                  d=d, optimal_cut=optimal)
            result.partition = extract_partition(
                batch.instance(trial), n_vertices, d)
            point.trials += 1
            point.synchronized += int(result.synchronized)
            point.solved += int(result.solved)
            if result.synchronized and optimal > 0:
                point.cut_ratios.append(result.cut / optimal)
        points.append(point)
    return points
