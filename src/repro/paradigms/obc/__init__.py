"""Oscillator-based computing (OBC) paradigm (§7.2).

Public surface:

* :func:`obc_language`, :func:`ofs_obc_language`,
  :func:`intercon_obc_language` — the DSL instances (Figs. 12a/12b/13);
* :func:`maxcut_network`, :func:`solve_maxcut`,
  :func:`maxcut_experiment` — the Table 1 workload;
* :func:`interconnect_cost` — the Fig. 13 routing-cost metric;
* :mod:`repro.paradigms.obc.placement` — placement of workloads onto
  the local/global fabric (the §7.2 tradeoff as a design loop);
* :mod:`repro.paradigms.obc.graphs` — instance generation and the exact
  brute-force baseline.
"""

from repro.paradigms.obc.coloring import (COLOR_OBC_SOURCE,
                                          ColoringResult,
                                          build_color_obc_language,
                                          classify_color,
                                          color_obc_language,
                                          coloring_network,
                                          solve_coloring)
from repro.paradigms.obc.graphs import (brute_force_maxcut, cut_value,
                                        random_graph, random_graphs,
                                        random_weights)
from repro.paradigms.obc.intercon import (INTERCON_OBC_SOURCE,
                                          build_intercon_obc_language,
                                          intercon_obc_language,
                                          interconnect_cost)
from repro.paradigms.obc.language import (C1, C2, OBC_SOURCE,
                                          build_obc_language,
                                          obc_language)
from repro.paradigms.obc.maxcut import (DEFAULT_T_END, MAXCUT_COUPLING,
                                        MaxcutResult, MaxcutSweep,
                                        NoisePoint, classify_phase,
                                        extract_partition,
                                        maxcut_experiment,
                                        maxcut_network,
                                        maxcut_noise_sweep,
                                        solve_maxcut)
from repro.paradigms.obc.noisy import (NS_OBC_SOURCE,
                                       build_ns_obc_language,
                                       ns_obc_language)
from repro.paradigms.obc.ofs import (OFS_OBC_SOURCE,
                                     build_ofs_obc_language,
                                     ofs_obc_language)
from repro.paradigms.obc.placement import (GLOBAL_COST, LOCAL_COST,
                                           Placement,
                                           evaluate_placement,
                                           place_greedy,
                                           place_kernighan_lin,
                                           place_random, placed_network,
                                           placement_study)

__all__ = [
    "C1",
    "C2",
    "COLOR_OBC_SOURCE",
    "ColoringResult",
    "DEFAULT_T_END",
    "GLOBAL_COST",
    "INTERCON_OBC_SOURCE",
    "LOCAL_COST",
    "MAXCUT_COUPLING",
    "MaxcutResult",
    "MaxcutSweep",
    "NS_OBC_SOURCE",
    "NoisePoint",
    "Placement",
    "OBC_SOURCE",
    "OFS_OBC_SOURCE",
    "brute_force_maxcut",
    "build_color_obc_language",
    "build_intercon_obc_language",
    "build_ns_obc_language",
    "build_obc_language",
    "build_ofs_obc_language",
    "classify_color",
    "classify_phase",
    "color_obc_language",
    "coloring_network",
    "cut_value",
    "evaluate_placement",
    "extract_partition",
    "intercon_obc_language",
    "interconnect_cost",
    "maxcut_experiment",
    "maxcut_network",
    "maxcut_noise_sweep",
    "ns_obc_language",
    "obc_language",
    "ofs_obc_language",
    "place_greedy",
    "place_kernighan_lin",
    "place_random",
    "placed_network",
    "placement_study",
    "random_graph",
    "random_graphs",
    "random_weights",
    "solve_coloring",
    "solve_maxcut",
]
