"""The ofs-obc hardware extension (§7.2, Fig. 12b).

Models the offset of an integrator-based OBC accelerator: the coupling
current emulation picks up a per-connection bias, so the coupling term
becomes ``k*(offset + sin(dphi))``. ``offset`` is declared
``real[0,0] mm(0.02,0)`` — nominally zero, with an absolute mismatch
standard deviation of 0.02 sampled per fabricated instance.

The offset shifts every oscillator's locked phase slightly away from
{0, pi}; with the tight d = 0.01*pi readout tolerance many oscillators
fall outside the bins (Table 1's 54% column), while widening the
tolerance to 0.1*pi absorbs the shift and restores ~94% accuracy — the
paper's circuit-external mitigation.
"""

from __future__ import annotations

from functools import cache

from repro.core.language import Language
from repro.lang import parse_program
from repro.paradigms.obc.language import obc_language

OFS_OBC_SOURCE = """
lang ofs-obc inherits obc {
    etyp Cpl_ofs inherit Cpl {attr k=real[-8,8],
                              attr offset=real[0,0] mm(0.02,0)};

    prod(e:Cpl_ofs, s:Osc->t:Osc)
        s <= -1.6e9*e.k*(e.offset+sin(var(s)-var(t)));
    prod(e:Cpl_ofs, s:Osc->t:Osc)
        t <= -1.6e9*e.k*(e.offset+sin(-var(s)+var(t)));
}
"""


def build_ofs_obc_language(parent: Language | None = None) -> Language:
    """Construct a fresh ofs-obc instance on top of ``parent``."""
    parent = parent or obc_language()
    program = parse_program(OFS_OBC_SOURCE, languages={"obc": parent})
    return program.languages["ofs-obc"]


@cache
def ofs_obc_language() -> Language:
    """The shared ofs-obc language instance."""
    return build_ofs_obc_language(obc_language())
