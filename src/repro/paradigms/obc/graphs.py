"""Problem-graph generation and exact baselines for the max-cut study.

The paper evaluates on "1000 unweighted 4-vertex graphs" (§7.2). We
sample Erdős–Rényi graphs with p = 0.5, discarding empty ones (a max-cut
instance needs at least one edge), and compute the exact maximum cut by
enumeration — cheap at these sizes and the ground truth for the Table 1
"solved" percentages.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np


def random_graph(n_vertices: int, rng: np.random.Generator,
                 edge_probability: float = 0.5) -> list[tuple[int, int]]:
    """One unweighted simple graph as a sorted edge list (non-empty)."""
    while True:
        edges = [(i, j) for i, j in combinations(range(n_vertices), 2)
                 if rng.random() < edge_probability]
        if edges:
            return edges


def random_graphs(count: int, n_vertices: int = 4,
                  seed: int = 0,
                  edge_probability: float = 0.5,
                  ) -> list[list[tuple[int, int]]]:
    """The experiment's graph population (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    return [random_graph(n_vertices, rng, edge_probability)
            for _ in range(count)]


def cut_value(edges: list[tuple[int, int]], partition,
              weights=None) -> float | int:
    """Total weight of edges crossing the partition (a 0/1 vector by
    vertex). Unweighted when ``weights`` is None."""
    if weights is None:
        return sum(1 for i, j in edges
                   if partition[i] != partition[j])
    return sum(w for (i, j), w in zip(edges, weights)
               if partition[i] != partition[j])


def brute_force_maxcut(edges: list[tuple[int, int]], n_vertices: int,
                       weights=None) -> float | int:
    """Exact maximum cut by enumerating all 2^(n-1) partitions."""
    best = 0
    for mask in range(1 << (n_vertices - 1)):
        partition = [(mask >> v) & 1 for v in range(n_vertices - 1)] + [0]
        best = max(best, cut_value(edges, partition, weights))
    return best


def random_weights(edges: list[tuple[int, int]],
                   rng: np.random.Generator,
                   lo: float = 0.5, hi: float = 4.0) -> list[float]:
    """Random positive edge weights for weighted Ising instances
    (the [7] workload)."""
    return [float(rng.uniform(lo, hi)) for _ in edges]
