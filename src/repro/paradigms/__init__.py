"""The paper's three analog compute paradigms, codified as Ark DSLs,
plus a fourth paradigm demonstrating the language's generality.

* :mod:`repro.paradigms.tln` — transmission-line networks (§2, §4.4) and
  the GmC-TLN mismatch extension (§4.5);
* :mod:`repro.paradigms.cnn` — cellular nonlinear networks (§7.1) and the
  hw-cnn nonideality extension;
* :mod:`repro.paradigms.obc` — oscillator-based computing (§7.2) with the
  ofs-obc (integrator offset) and intercon-obc (interconnect cost)
  extensions;
* :mod:`repro.paradigms.gpac` — a GPAC (general-purpose analog computer)
  DSL built on the same machinery, demonstrating the paper's generality
  claim beyond its own three case studies (and exercising the Π
  reduction operator of §3);
* :mod:`repro.paradigms.fhn` — FitzHugh-Nagumo excitable-neuron
  computing (the "spiking neural networks" entry on the paper's §1
  paradigm list), with spike-wave propagation and mismatch jitter.

Each language is written in the paper's concrete Ark syntax and parsed by
:mod:`repro.lang`, so the listings in the paper are (almost) literally the
source code shipped here. Import the subpackages directly::

    from repro.paradigms.tln import linear_tline
    from repro.paradigms.cnn import edge_detector
    from repro.paradigms.obc import solve_maxcut
    from repro.paradigms.gpac import van_der_pol
    from repro.paradigms.fhn import neuron_ring
"""

__all__ = ["cnn", "fhn", "gpac", "obc", "tln"]
