"""GPAC (general-purpose analog computer) compute paradigm.

The fourth paradigm DSL of this repository (beyond the paper's TLN /
CNN / OBC trio): the paper's introduction cites GPAC computing as the
archetypal unconventional analog paradigm, and §8 positions Ark against
GPAC-specific toolchains. Expressing GPAC *in* Ark demonstrates the
language's claimed generality — and it is the one paradigm whose
multiplier nodes exercise the Π (mul) reduction operator of §3.

Public surface:

* :func:`gpac_language` / :func:`hw_gpac_language` — the DSL and its
  leak/mismatch hardware extension;
* :mod:`repro.paradigms.gpac.circuits` — classic analog-computer
  programs (decay, harmonic oscillator, Lotka-Volterra, Van der Pol,
  Lorenz) with type-substitution support;
* :mod:`repro.paradigms.gpac.references` — independent scipy
  references and envelope/amplitude analysis.
"""

from repro.paradigms.gpac.circuits import (GpacTypes, driven_oscillator,
                                           exponential_decay,
                                           harmonic_oscillator, leaky,
                                           lorenz, lotka_volterra,
                                           resonance_amplitude,
                                           van_der_pol)
from repro.paradigms.gpac.hw import (HW_GPAC_SOURCE,
                                     build_hw_gpac_language,
                                     hw_gpac_language)
from repro.paradigms.gpac.language import (GPAC_SOURCE,
                                           acyclic_algebraic_check,
                                           build_gpac_language,
                                           gpac_language)
from repro.paradigms.gpac.references import (amplitude_envelope,
                                             decay_reference,
                                             limit_cycle_amplitude,
                                             lorenz_reference,
                                             lotka_volterra_invariant,
                                             lotka_volterra_reference,
                                             oscillator_reference,
                                             van_der_pol_reference)

__all__ = [
    "GPAC_SOURCE",
    "GpacTypes",
    "HW_GPAC_SOURCE",
    "acyclic_algebraic_check",
    "amplitude_envelope",
    "build_gpac_language",
    "build_hw_gpac_language",
    "decay_reference",
    "driven_oscillator",
    "exponential_decay",
    "gpac_language",
    "harmonic_oscillator",
    "hw_gpac_language",
    "leaky",
    "limit_cycle_amplitude",
    "lorenz",
    "lorenz_reference",
    "lotka_volterra",
    "lotka_volterra_invariant",
    "lotka_volterra_reference",
    "oscillator_reference",
    "resonance_amplitude",
    "van_der_pol",
    "van_der_pol_reference",
]
