"""The GPAC (general-purpose analog computer) Ark language.

The paper's introduction names GPAC computing among the unconventional
analog compute paradigms (implemented by the VLSI analog computers of
refs. [11, 21, 24]), and §8 contrasts Ark with GPAC-specific
specification languages (Arco, Jaunt, Legno). This DSL shows the same
paradigm expressed *in* Ark: a Shannon-style general-purpose analog
computer built from integrators, multipliers, gain-summers, and time
sources.

Node types:

* ``Int`` — an integrator (order 1). Every incoming ``W`` edge adds
  ``w * source`` to its derivative; an optional self edge adds
  ``w * x``, giving linear ODE systems without extra fan-out hardware.
* ``Mul`` — an ideal multiplier (order 0, **mul reduction**): its value
  is the *product* of the ``w * source`` contributions of its incoming
  edges. This is the one paradigm in the repository exercising the
  paper's Π reduction operator (§3).
* ``Sum`` — a weighted summer (order 0, sum reduction).
* ``Src`` — an external time-domain source ``fn(time)``.

Any polynomial ODE system — Lotka-Volterra, Van der Pol, Lorenz — maps
onto these four primitives (Shannon 1941: GPAC-generable functions are
exactly solutions of polynomial ODEs; see
:mod:`repro.paradigms.gpac.circuits`).
"""

from __future__ import annotations

from functools import cache

from repro.core.language import Language
from repro.lang import parse_language
from repro.paradigms.tln.waveforms import pulse

GPAC_SOURCE = """
lang gpac {
    ntyp(1,sum) Int {};
    ntyp(0,mul) Mul {};
    ntyp(0,sum) Sum {};
    ntyp(0,sum) Src {attr fn=fn(a0)};
    etyp W {attr w=real[-100,100]};

    // Integrator inputs: dx/dt accumulates w-weighted sources; the
    // optional self edge contributes w*x (linear feedback).
    prod(e:W, s:Int->t:Int) t <= e.w*var(s);
    prod(e:W, s:Mul->t:Int) t <= e.w*var(s);
    prod(e:W, s:Sum->t:Int) t <= e.w*var(s);
    prod(e:W, s:Src->t:Int) t <= e.w*s.fn(time);
    prod(e:W, s:Int->s:Int) s <= e.w*var(s);

    // Multiplier inputs: the mul reduction turns the contributions
    // into a product.
    prod(e:W, s:Int->t:Mul) t <= e.w*var(s);
    prod(e:W, s:Mul->t:Mul) t <= e.w*var(s);
    prod(e:W, s:Sum->t:Mul) t <= e.w*var(s);
    prod(e:W, s:Src->t:Mul) t <= e.w*s.fn(time);

    // Summer inputs.
    prod(e:W, s:Int->t:Sum) t <= e.w*var(s);
    prod(e:W, s:Mul->t:Sum) t <= e.w*var(s);
    prod(e:W, s:Sum->t:Sum) t <= e.w*var(s);
    prod(e:W, s:Src->t:Sum) t <= e.w*s.fn(time);

    // An integrator may listen to anything, drive anything, and carry
    // at most one linear-feedback self edge.
    cstr Int {acc[match(0,inf,W,[Int,Mul,Sum,Src]->Int),
                  match(0,inf,W,Int->[Int,Mul,Sum]),
                  match(0,1,W,Int)]};
    // A multiplier needs at least two factors (one input is a gain,
    // which Sum already provides).
    cstr Mul {acc[match(2,inf,W,[Int,Mul,Sum,Src]->Mul),
                  match(0,inf,W,Mul->[Int,Mul,Sum])]};
    cstr Sum {acc[match(1,inf,W,[Int,Mul,Sum,Src]->Sum),
                  match(0,inf,W,Sum->[Int,Mul,Sum])]};
    cstr Src {acc[match(1,inf,W,Src->[Int,Mul,Sum])]};
}
"""


def acyclic_algebraic_check(graph) -> tuple[bool, str]:
    """Global validity check: the order-0 (algebraic) nodes must not
    form dependency cycles.

    An algebraic loop (e.g. two multipliers feeding each other) has no
    explicit-ODE interpretation, so the GPAC language rejects it at
    validation time rather than letting the compiler fail later. This
    is a whole-topology property — exactly the kind of rule §4.1's
    ``extern-func`` exists for.
    """
    algebraic = {node.name for node in graph.nodes
                 if node.type.order == 0}
    adjacency = {name: set() for name in algebraic}
    for edge in graph.edges:
        if edge.src in algebraic and edge.dst in algebraic \
                and edge.src != edge.dst:
            adjacency[edge.src].add(edge.dst)
    # Iterative DFS three-coloring.
    WHITE_C, GRAY, BLACK_C = 0, 1, 2
    color = {name: WHITE_C for name in algebraic}
    for start in algebraic:
        if color[start] != WHITE_C:
            continue
        stack = [(start, iter(sorted(adjacency[start])))]
        color[start] = GRAY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if color[child] == GRAY:
                    return False, (f"algebraic dependency cycle "
                                   f"through {child}")
                if color[child] == WHITE_C:
                    color[child] = GRAY
                    stack.append((child,
                                  iter(sorted(adjacency[child]))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK_C
                stack.pop()
    return True, ""


def build_gpac_language() -> Language:
    """Construct a fresh GPAC language instance (mainly for tests)."""
    return parse_language(GPAC_SOURCE, functions={"pulse": pulse})


@cache
def gpac_language() -> Language:
    """The shared GPAC language instance with the global acyclicity
    check installed."""
    language = build_gpac_language()
    language.extern_check(acyclic_algebraic_check,
                          name="acyclic_algebraic")
    return language
