"""GPAC circuit builders: classic analog-computer programs.

Each builder wires integrators, multipliers, and summers into a
polynomial ODE system and returns the dynamical graph; the matching
``*_reference`` functions in :mod:`repro.paradigms.gpac.references`
integrate the same ODEs directly with scipy so the GPAC programs can be
verified end-to-end.

Builders accept ``int_type``/``edge_type`` overrides so the hw-gpac
nonideal types (``IntL``, ``Wm``) can be substituted following the
paper's progressive-rewriting workflow — :func:`leaky` wraps the common
case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.builder import GraphBuilder
from repro.core.graph import DynamicalGraph
from repro.core.language import Language
from repro.errors import GraphError
from repro.paradigms.gpac.hw import hw_gpac_language
from repro.paradigms.gpac.language import gpac_language


@dataclass(frozen=True)
class GpacTypes:
    """Type-substitution bundle for progressive rewriting."""

    int_type: str = "Int"
    edge_type: str = "W"
    leak: float = 0.0
    language: Language | None = None

    def resolve(self) -> "GpacTypes":
        if self.language is not None:
            return self
        needs_hw = self.int_type != "Int" or self.edge_type != "W"
        language = hw_gpac_language() if needs_hw else gpac_language()
        return GpacTypes(self.int_type, self.edge_type, self.leak,
                         language)


def leaky(leak: float, *, mismatched_weights: bool = False) -> GpacTypes:
    """Substitute leaky integrators (and optionally mismatched weights)
    into any builder below."""
    if leak < 0:
        raise GraphError(f"leak must be >= 0, got {leak}")
    return GpacTypes(int_type="IntL",
                     edge_type="Wm" if mismatched_weights else "W",
                     leak=leak)


class _Wiring:
    """Shared plumbing: auto-named edges, leak attribute handling."""

    def __init__(self, name: str, types: GpacTypes,
                 seed: int | None):
        self.types = types.resolve()
        self.builder = GraphBuilder(self.types.language, name, seed=seed)
        self._count = 0

    def integrator(self, name: str, initial: float) -> str:
        self.builder.node(name, self.types.int_type)
        if self.types.int_type == "IntL":
            self.builder.set_attr(name, "leak", self.types.leak)
        self.builder.set_init(name, initial)
        return name

    def mul(self, name: str) -> str:
        self.builder.node(name, "Mul")
        return name

    def wire(self, src: str, dst: str, w: float) -> str:
        edge = f"W_{self._count}"
        self._count += 1
        self.builder.edge(src, dst, edge, self.types.edge_type)
        self.builder.set_attr(edge, "w", w)
        return edge

    def self_feedback(self, node: str, w: float) -> str:
        """A self edge; required on every IntL so the leak rule fires."""
        return self.wire(node, node, w)

    def finish(self) -> DynamicalGraph:
        return self.builder.finish()


def exponential_decay(rate: float = 1.0, initial: float = 1.0, *,
                      types: GpacTypes = GpacTypes(),
                      seed: int | None = None) -> DynamicalGraph:
    """``dx/dt = -rate * x`` — one integrator with self feedback."""
    if rate <= 0:
        raise GraphError(f"decay rate must be positive, got {rate}")
    wiring = _Wiring("gpac-decay", types, seed)
    x = wiring.integrator("x", initial)
    wiring.self_feedback(x, -rate)
    return wiring.finish()


def harmonic_oscillator(omega: float = 1.0, amplitude: float = 1.0, *,
                        types: GpacTypes = GpacTypes(),
                        seed: int | None = None) -> DynamicalGraph:
    """``d2x/dt2 = -omega^2 x`` as two cross-coupled integrators.

    ``x(0) = amplitude``, ``v(0) = 0`` — the textbook analog-computer
    sine generator, and the canonical victim of integrator leak (the
    amplitude decays as ``exp(-leak * t)`` instead of holding).
    """
    if omega <= 0:
        raise GraphError(f"omega must be positive, got {omega}")
    wiring = _Wiring("gpac-oscillator", types, seed)
    x = wiring.integrator("x", amplitude)
    v = wiring.integrator("v", 0.0)
    wiring.wire(v, x, 1.0)
    wiring.wire(x, v, -omega * omega)
    if wiring.types.int_type == "IntL":
        # Leak enters through the self-edge rule; wire zero-weight
        # feedback so the IntL production applies.
        wiring.self_feedback(x, 0.0)
        wiring.self_feedback(v, 0.0)
    return wiring.finish()


def driven_oscillator(omega: float = 1.0, damping: float = 0.2,
                      drive_amplitude: float = 1.0,
                      drive_frequency: float = 1.0, *,
                      types: GpacTypes = GpacTypes(),
                      seed: int | None = None) -> DynamicalGraph:
    """A sinusoidally forced, damped oscillator::

        dx/dt = v
        dv/dt = -omega^2 x - damping*v + drive_amplitude*sin(wd*t)

    The force enters through a ``Src`` node (``fn(time)`` attribute) —
    the canonical analog-computer input stage. Steady state has the
    textbook resonance amplitude
    ``A / sqrt((omega^2 - wd^2)^2 + (damping*wd)^2)``.
    """
    if omega <= 0:
        raise GraphError(f"omega must be positive, got {omega}")
    if damping < 0:
        raise GraphError(f"damping must be >= 0, got {damping}")
    if drive_frequency <= 0:
        raise GraphError(
            f"drive_frequency must be positive, got {drive_frequency}")
    import math

    wiring = _Wiring("gpac-driven", types, seed)
    x = wiring.integrator("x", 0.0)
    v = wiring.integrator("v", 0.0)
    wiring.builder.node("drive", "Src")
    wd = float(drive_frequency)
    wiring.builder.set_attr("drive", "fn",
                            lambda t, _wd=wd: math.sin(_wd * t))
    wiring.wire(v, x, 1.0)
    wiring.wire(x, v, -omega * omega)
    wiring.self_feedback(v, -damping)
    wiring.wire("drive", v, drive_amplitude)
    if wiring.types.int_type == "IntL":
        wiring.self_feedback(x, 0.0)
    return wiring.finish()


def resonance_amplitude(omega: float, damping: float,
                        drive_amplitude: float,
                        drive_frequency: float) -> float:
    """The analytic steady-state amplitude of the driven oscillator."""
    wd = drive_frequency
    return drive_amplitude / (
        ((omega * omega - wd * wd) ** 2
         + (damping * wd) ** 2) ** 0.5)


def lotka_volterra(alpha: float = 1.1, beta: float = 0.4,
                   delta: float = 0.1, gamma: float = 0.4, *,
                   prey0: float = 10.0, predator0: float = 10.0,
                   scale: float = 0.1,
                   types: GpacTypes = GpacTypes(),
                   seed: int | None = None) -> DynamicalGraph:
    """The Lotka-Volterra predator-prey system::

        dx/dt = alpha*x - beta*x*y
        dy/dt = delta*x*y - gamma*y

    One multiplier computes ``x*y`` (scaled by ``scale`` per input to
    stay inside analog ranges — the weights compensate), exercising the
    Π reduction on a genuinely nonlinear workload.
    """
    for name, value in (("alpha", alpha), ("beta", beta),
                        ("delta", delta), ("gamma", gamma)):
        if value <= 0:
            raise GraphError(f"{name} must be positive, got {value}")
    wiring = _Wiring("gpac-lotka-volterra", types, seed)
    x = wiring.integrator("x", prey0)
    y = wiring.integrator("y", predator0)
    xy = wiring.mul("xy")
    wiring.wire(x, xy, scale)
    wiring.wire(y, xy, scale)
    compensation = 1.0 / (scale * scale)
    wiring.self_feedback(x, alpha)
    wiring.wire(xy, x, -beta * compensation)
    wiring.self_feedback(y, -gamma)
    wiring.wire(xy, y, delta * compensation)
    return wiring.finish()


def van_der_pol(mu: float = 1.0, *, x0: float = 0.5, v0: float = 0.0,
                types: GpacTypes = GpacTypes(),
                seed: int | None = None) -> DynamicalGraph:
    """The Van der Pol oscillator::

        dx/dt = v
        dv/dt = mu*(1 - x^2)*v - x

    The cubic term ``x^2 v`` is one three-input multiplier (two edges
    from ``x``, one from ``v`` — parallel edges are distinct DG edges).
    Its limit cycle makes it the natural robustness counterpoint to the
    harmonic oscillator: feedback re-injects the energy integrator leak
    removes.
    """
    if mu <= 0:
        raise GraphError(f"mu must be positive, got {mu}")
    wiring = _Wiring("gpac-van-der-pol", types, seed)
    x = wiring.integrator("x", x0)
    v = wiring.integrator("v", v0)
    xxv = wiring.mul("xxv")
    wiring.wire(x, xxv, 1.0)
    wiring.wire(x, xxv, 1.0)
    wiring.wire(v, xxv, 1.0)
    wiring.wire(v, x, 1.0)
    wiring.self_feedback(v, mu)
    wiring.wire(xxv, v, -mu)
    wiring.wire(x, v, -1.0)
    if wiring.types.int_type == "IntL":
        wiring.self_feedback(x, 0.0)
    return wiring.finish()


def lorenz(sigma: float = 10.0, rho: float = 28.0,
           beta: float = 8.0 / 3.0, *,
           x0: float = 1.0, y0: float = 1.0, z0: float = 1.0,
           types: GpacTypes = GpacTypes(),
           seed: int | None = None) -> DynamicalGraph:
    """The Lorenz system — the classic analog-computer stress test::

        dx/dt = sigma*(y - x)
        dy/dt = x*(rho - z) - y
        dz/dt = x*y - beta*z

    Two multipliers (``x*z`` and ``x*y``).
    """
    wiring = _Wiring("gpac-lorenz", types, seed)
    x = wiring.integrator("x", x0)
    y = wiring.integrator("y", y0)
    z = wiring.integrator("z", z0)
    xz = wiring.mul("xz")
    xy = wiring.mul("xy")
    wiring.wire(x, xz, 1.0)
    wiring.wire(z, xz, 1.0)
    wiring.wire(x, xy, 1.0)
    wiring.wire(y, xy, 1.0)
    wiring.self_feedback(x, -sigma)
    wiring.wire(y, x, sigma)
    wiring.wire(x, y, rho)
    wiring.wire(xz, y, -1.0)
    wiring.self_feedback(y, -1.0)
    wiring.wire(xy, z, 1.0)
    wiring.self_feedback(z, -beta)
    return wiring.finish()
