"""The hw-gpac hardware extension: integrator leak and gain mismatch.

Real analog integrators have finite DC gain: the op-amp realization
leaks charge, turning the ideal ``dx/dt = u`` into
``dx/dt = u - leak * x`` (the dominant nonideality in the VLSI analog
computers the paper cites; Cowan et al. report exactly this). Weight
coefficients are realized with transconductors or resistor ratios and
carry fabrication mismatch.

Following the paper's progressive-rewriting recipe (§2.4):

* ``IntL`` inherits ``Int`` and adds a mismatched ``leak`` attribute.
  A *new self-edge production rule* shadows the inherited linear
  feedback rule for ``IntL`` and subtracts the leak term — the same
  shadowing pattern the GmC-TLN ``Em`` rules use.
* ``Wm`` inherits ``W`` and re-declares ``w`` with 5% relative
  mismatch. No new production rules are needed: the inherited ``W``
  rules apply through the lookup fallback, and the mismatch enters
  purely through attribute sampling — exercising the other half of the
  §4.1.1 inheritance machinery.
"""

from __future__ import annotations

from functools import cache

from repro.core.language import Language
from repro.lang import parse_program
from repro.paradigms.gpac.language import gpac_language
from repro.paradigms.tln.waveforms import pulse

HW_GPAC_SOURCE = """
lang hw-gpac inherits gpac {
    ntyp(1,sum) IntL inherit Int {attr leak=real[0,10] mm(0,0.1)};
    etyp Wm inherit W {attr w=real[-100,100] mm(0,0.05)};

    // The leaky integrator's self edge: inherited linear feedback
    // minus the leak (most-specific rule, shadows the Int->Int rule).
    prod(e:W, s:IntL->s:IntL) s <= e.w*var(s)-s.leak*var(s);
}
"""


def build_hw_gpac_language(parent: Language | None = None) -> Language:
    """Construct a fresh hw-gpac instance on top of ``parent``.

    The global acyclicity check is inherited through the language
    chain, so it is not re-installed here.
    """
    parent = parent or gpac_language()
    program = parse_program(HW_GPAC_SOURCE, languages={"gpac": parent},
                            functions={"pulse": pulse})
    return program.languages["hw-gpac"]


@cache
def hw_gpac_language() -> Language:
    """The shared hw-gpac language instance (inherits the shared GPAC
    language, including its acyclicity check)."""
    return build_hw_gpac_language(gpac_language())
