"""Independent scipy references for the GPAC circuits.

Each function integrates the textbook ODE system directly with
``scipy.integrate.solve_ivp`` — no Ark machinery involved — so the GPAC
programs (language -> graph -> compiler -> simulator) can be verified
end-to-end, and analysis helpers quantify the leak nonideality study.
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import solve_ivp


def _solve(rhs, y0, t_eval, rtol=1e-9, atol=1e-11) -> np.ndarray:
    t_eval = np.atleast_1d(np.asarray(t_eval, dtype=float))
    solution = solve_ivp(rhs, (0.0, float(t_eval.max())), y0,
                         t_eval=t_eval, rtol=rtol, atol=atol,
                         method="RK45")
    return solution.y


def decay_reference(rate: float, initial: float, t_eval) -> np.ndarray:
    """Analytic ``x(t) = x0 exp(-rate t)``."""
    t_eval = np.atleast_1d(np.asarray(t_eval, dtype=float))
    return initial * np.exp(-rate * t_eval)


def oscillator_reference(omega: float, amplitude: float, t_eval,
                         leak: float = 0.0) -> np.ndarray:
    """The (possibly leaky) harmonic oscillator's ``x(t)``.

    With per-integrator leak ``g``: ``x'' + 2g x' + (w^2 + g^2) x = 0``
    — a damped oscillation ``A exp(-g t) (cos(w t) + ...)``; for
    ``leak=0`` the analytic ``A cos(w t)``.
    """
    t_eval = np.atleast_1d(np.asarray(t_eval, dtype=float))
    if leak == 0.0:
        return amplitude * np.cos(omega * t_eval)

    def rhs(_t, state):
        x, v = state
        return [v - leak * x, -omega * omega * x - leak * v]

    return _solve(rhs, [amplitude, 0.0], t_eval)[0]


def lotka_volterra_reference(alpha: float, beta: float, delta: float,
                             gamma: float, prey0: float,
                             predator0: float, t_eval) -> np.ndarray:
    """Direct integration; returns ``[x(t); y(t)]`` (2, n)."""

    def rhs(_t, state):
        x, y = state
        return [alpha * x - beta * x * y, delta * x * y - gamma * y]

    return _solve(rhs, [prey0, predator0], t_eval)


def lotka_volterra_invariant(alpha: float, beta: float, delta: float,
                             gamma: float, x: np.ndarray,
                             y: np.ndarray) -> np.ndarray:
    """The conserved quantity ``V = delta x - gamma ln x + beta y -
    alpha ln y`` (constant along every trajectory)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    return delta * x - gamma * np.log(x) + beta * y - alpha * np.log(y)


def van_der_pol_reference(mu: float, x0: float, v0: float,
                          t_eval) -> np.ndarray:
    """Direct integration; returns ``[x(t); v(t)]`` (2, n)."""

    def rhs(_t, state):
        x, v = state
        return [v, mu * (1.0 - x * x) * v - x]

    return _solve(rhs, [x0, v0], t_eval)


def lorenz_reference(sigma: float, rho: float, beta: float, x0: float,
                     y0: float, z0: float, t_eval) -> np.ndarray:
    """Direct integration; returns ``[x; y; z]`` (3, n)."""

    def rhs(_t, state):
        x, y, z = state
        return [sigma * (y - x), x * (rho - z) - y, x * y - beta * z]

    return _solve(rhs, [x0, y0, z0], t_eval)


def amplitude_envelope(t: np.ndarray, x: np.ndarray,
                       n_segments: int = 8) -> np.ndarray:
    """Peak |x| per time segment — a robust oscillation envelope."""
    t = np.asarray(t, dtype=float)
    x = np.asarray(x, dtype=float)
    edges = np.linspace(t[0], t[-1], n_segments + 1)
    peaks = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (t >= lo) & (t <= hi)
        peaks.append(np.abs(x[mask]).max() if mask.any() else 0.0)
    return np.asarray(peaks)


def limit_cycle_amplitude(t: np.ndarray, x: np.ndarray,
                          settle_fraction: float = 0.5) -> float:
    """Peak |x| after discarding the transient."""
    t = np.asarray(t, dtype=float)
    x = np.asarray(x, dtype=float)
    cutoff = t[0] + settle_fraction * (t[-1] - t[0])
    return float(np.abs(x[t >= cutoff]).max())
