"""CNN activation functions (Fig. 11a).

``sat`` is the classic Chua-Yang piecewise-linear saturation
``f(x) = 0.5*(|x+1| - |x-1|)`` (blue curve). ``sat_ni`` models the
non-ideal saturation of an analog realization: CNN chips implement the
nonlinearity with a MOS differential pair whose large-signal transfer
``x*sqrt(2-x^2)`` (clamped at ±1) is smooth near the saturation points
(orange curve) — the §7.1 hw-cnn extension substitutes it via the
``OutNL`` node type.
"""

from __future__ import annotations

import math


def sat(x: float) -> float:
    """Ideal piecewise-linear saturation: -1 below -1, x in between,
    +1 above +1."""
    return 0.5 * (abs(x + 1.0) - abs(x - 1.0))


def sat_ni(x: float) -> float:
    """MOS differential-pair saturation: smooth (zero-slope) approach to
    the ±1 rails, slightly steeper than ``sat`` around the origin."""
    if x >= 1.0:
        return 1.0
    if x <= -1.0:
        return -1.0
    return x * math.sqrt(2.0 - x * x)
