"""The CNN (cellular nonlinear network) Ark language (§7.1, Fig. 10a).

The CNN dynamics (Eq. 5)::

    dx_ij/dt = -x_ij + sum_{kl in N(i,j)} (A_ij,kl*f(x_kl) + B_ij,kl*u_kl) + z

map onto the DG as follows: each cell is a ``V`` node (state x_ij) with an
``iE`` self edge contributing the bias and leak ``z - x``; the cell's
nonlinearity is an order-0 ``Out`` node fed by an ``iE`` edge
(``sat(x)``); ``fE`` edges carry the A-template terms from neighboring
``Out`` nodes and the B-template terms from ``Inp`` nodes, weighted by
their ``g`` attribute.

Reconstruction notes (DESIGN.md §5.5): the paper's ``Inp`` node has no
attributes and its rule reads ``var(s)``, but an order-0 node with no
incoming edges has no defining production — we give ``Inp`` a ``u``
attribute and write the B-template rule as ``e.g * s.u``. The cstr for
``V`` is also repaired to use the ``iE`` self edge its own production rule
implies (Fig. 10a prints ``fE``) and to admit the B-template ``Inp``
edges the topology requires.
"""

from __future__ import annotations

from functools import cache

from repro.core.language import Language
from repro.lang import parse_language
from repro.paradigms.cnn.activations import sat, sat_ni

CNN_SOURCE = """
lang cnn {
    ntyp(1,sum) V {attr z=real[-10,10]};
    ntyp(0,sum) Out {};
    ntyp(0,sum) Inp {attr u=real[-10,10]};
    etyp iE {};
    etyp fE {attr g=real[-10,10]};

    prod(e:fE, s:Inp->t:V) t <= e.g*s.u;
    prod(e:iE, s:V->t:Out) t <= sat(var(s));
    prod(e:iE, s:V->s:V)   s <= s.z-var(s);
    prod(e:fE, s:Out->t:V) t <= e.g*var(s);

    cstr V {acc[match(1,1,iE,V->[Out]),
                match(4,9,fE,[Out]->V),
                match(4,9,fE,[Inp]->V),
                match(1,1,iE,V)]};
    cstr Out {acc[match(4,9,fE,Out->[V]),
                  match(1,1,iE,[V]->Out)]};
    cstr Inp {acc[match(4,9,fE,Inp->[V])]};
}
"""


def grid_check(graph) -> tuple[bool, str]:
    """Global validity check (``extern-func``): the V cells must form a
    rectangular grid under the 3x3 neighborhood implied by their
    A-template edges.

    The paper motivates global checks with exactly this property ("Global
    connectivity checks are required to ensure the DG implements certain
    topologies, such as grid topologies", §4.1). Cell coordinates are
    recovered from the ``V_<i>_<j>`` naming convention used by the grid
    builders.
    """
    cells = {}
    for node in graph.nodes:
        if node.type.name.startswith("V") and node.name.startswith("V_"):
            parts = node.name.split("_")
            if len(parts) != 3:
                return False, f"cell {node.name} is not named V_<i>_<j>"
            try:
                cells[(int(parts[1]), int(parts[2]))] = node.name
            except ValueError:
                return False, f"cell {node.name} is not named V_<i>_<j>"
    if not cells:
        return True, ""
    rows = max(i for i, _ in cells) + 1
    cols = max(j for _, j in cells) + 1
    if len(cells) != rows * cols:
        return False, (f"expected a full {rows}x{cols} grid, found "
                       f"{len(cells)} cells")

    # Every A-template edge must connect 3x3 neighbors.
    for edge in graph.edges:
        if not edge.type.name.startswith("fE"):
            continue
        src = graph.node(edge.src)
        dst = graph.node(edge.dst)
        if not (src.name.startswith("Out_")
                and dst.name.startswith("V_")):
            continue
        si, sj = (int(p) for p in src.name.split("_")[1:])
        di, dj = (int(p) for p in dst.name.split("_")[1:])
        if abs(si - di) > 1 or abs(sj - dj) > 1:
            return False, (f"feedback edge {edge.name} connects "
                           f"non-neighbor cells ({si},{sj}) and "
                           f"({di},{dj})")
    return True, ""


def build_cnn_language() -> Language:
    """Construct a fresh CNN language instance (mainly for tests)."""
    return parse_language(
        CNN_SOURCE,
        functions={"sat": sat, "sat_ni": sat_ni},
        extern={},
    )


@cache
def cnn_language() -> Language:
    """The shared CNN language instance, with the grid global check."""
    language = build_cnn_language()
    language.extern_check(grid_check, name="grid_check")
    return language
