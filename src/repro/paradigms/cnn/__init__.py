"""Cellular nonlinear network (CNN) compute paradigm (§7.1).

Public surface:

* :func:`cnn_language` / :func:`hw_cnn_language` — the DSL instances
  (Figs. 10a/10b);
* :func:`cnn_grid`, :func:`edge_detector` and the classic templates —
  topology builders;
* :func:`run_cnn` and friends — the Fig. 11c measurements;
* :mod:`repro.paradigms.cnn.images` — input images and pixel utilities;
* :mod:`repro.paradigms.cnn.library` — verified template repertoire
  (morphology, shadow, hole filling) with discrete references;
* :mod:`repro.paradigms.cnn.pde` — linear diffusion / heat-equation
  solving on the CNN array (the paper's PDE application).
"""

from repro.paradigms.cnn.activations import sat, sat_ni
from repro.paradigms.cnn.analysis import (CnnRun, convergence_time,
                                          run_cnn, state_grid)
from repro.paradigms.cnn.hw import (HW_CNN_SOURCE, build_hw_cnn_language,
                                    hw_cnn_language)
from repro.paradigms.cnn.images import (BLACK, WHITE, binarize,
                                        default_image, expected_edges,
                                        pixel_errors, to_ascii)
from repro.paradigms.cnn.language import (CNN_SOURCE, build_cnn_language,
                                          cnn_language, grid_check)
from repro.paradigms.cnn.library import (DILATION_TEMPLATE,
                                         EROSION_TEMPLATE,
                                         HOLE_FILL_TEMPLATE, LIBRARY,
                                         SHADOW_TEMPLATE, apply_template,
                                         expected_corners,
                                         expected_dilation,
                                         expected_erosion,
                                         expected_hole_fill,
                                         expected_opening,
                                         expected_shadow,
                                         run_library_template)
from repro.paradigms.cnn.pde import (diffusion_step_response,
                                     diffusion_template, heat_cnn,
                                     laplacian_matrix,
                                     reference_diffusion,
                                     solve_diffusion)
from repro.paradigms.cnn.templates import (CORNER_TEMPLATE,
                                           DIFFUSION_TEMPLATE,
                                           EDGE_TEMPLATE, VARIANTS,
                                           CnnTemplate, cnn_grid,
                                           edge_detector)

__all__ = [
    "BLACK",
    "CNN_SOURCE",
    "CORNER_TEMPLATE",
    "CnnRun",
    "CnnTemplate",
    "DIFFUSION_TEMPLATE",
    "DILATION_TEMPLATE",
    "EDGE_TEMPLATE",
    "EROSION_TEMPLATE",
    "HOLE_FILL_TEMPLATE",
    "HW_CNN_SOURCE",
    "LIBRARY",
    "SHADOW_TEMPLATE",
    "VARIANTS",
    "WHITE",
    "apply_template",
    "binarize",
    "build_cnn_language",
    "build_hw_cnn_language",
    "cnn_grid",
    "cnn_language",
    "convergence_time",
    "default_image",
    "diffusion_step_response",
    "diffusion_template",
    "edge_detector",
    "expected_corners",
    "expected_dilation",
    "expected_edges",
    "expected_erosion",
    "expected_hole_fill",
    "expected_opening",
    "expected_shadow",
    "grid_check",
    "heat_cnn",
    "hw_cnn_language",
    "laplacian_matrix",
    "pixel_errors",
    "reference_diffusion",
    "run_cnn",
    "run_library_template",
    "sat",
    "sat_ni",
    "solve_diffusion",
    "state_grid",
    "to_ascii",
]
