"""A library of verified CNN programs beyond the paper's edge detector.

§7.1 motivates CNNs with "image processing, pattern recognition, PDE
solving" applications. This module supplies the image-processing
repertoire: each entry is a :class:`CnnTemplate` together with a
*discrete reference function* computing the template's intended fixed
point, so every template's analog dynamics can be verified pixel-exact
against an independent implementation (the tests do this on random
images).

Design notes. The binary templates are designed for a stability margin
of at least 1 in the cell's net drive — marginal-equilibrium templates
(common in the historical CNN library, which assumed specific virtual
boundary cells) are numerically fragile under ODE integration and under
the hw-cnn mismatch extension. All templates here expect the white
virtual frame (``boundary=WHITE`` in :func:`cnn_grid`), which
:func:`apply_template` passes by default.

* ``DILATION`` / ``EROSION`` — 4-neighborhood morphology (uncoupled,
  B-template only);
* ``OPENING``  — erosion then dilation: single-pixel noise removal;
* ``SHADOW``   — rightward-looking shadow: black iff any input pixel at
  or to the right in the row is black (coupled, propagating);
* ``HOLE_FILL``— fill white regions not 4-connected to the frame
  (coupled, propagating, runs from an all-black initial state);
* ``expected_corners`` — reference for the existing CORNER template.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.paradigms.cnn.analysis import run_cnn
from repro.paradigms.cnn.images import BLACK, WHITE
from repro.paradigms.cnn.templates import CnnTemplate, cnn_grid

#: Grow black regions by one pixel in the 4-neighborhood. Uncoupled:
#: the output is black iff 2*u_c + sum(4nb u) + 5 > 0, i.e. iff the
#: pixel or any 4-neighbor input is black.
DILATION_TEMPLATE = CnnTemplate(
    a=((0, 0, 0), (0, 2, 0), (0, 0, 0)),
    b=((0, 1, 0), (1, 2, 1), (0, 1, 0)),
    z=5.0,
    name="dilation",
)

#: Shrink black regions by one pixel in the 4-neighborhood: black iff
#: the pixel and all four neighbors are black (2*u_c + sum - 5 > 0).
EROSION_TEMPLATE = CnnTemplate(
    a=((0, 0, 0), (0, 2, 0), (0, 0, 0)),
    b=((0, 1, 0), (1, 2, 1), (0, 1, 0)),
    z=-5.0,
    name="erosion",
)

#: Rightward-looking shadow: a cell latches black when its input is
#: black or its right neighbor's output is black, so blackness
#: propagates leftward from every black pixel (margin >= 1 in all four
#: (u, f_right) cases; see module docstring).
SHADOW_TEMPLATE = CnnTemplate(
    a=((0, 0, 0), (0, 2, 2), (0, 0, 0)),
    b=((0, 0, 0), (0, 2, 0), (0, 0, 0)),
    z=2.0,
    name="shadow",
)

#: Hole filling: start all-black; whiteness flows in from the frame
#: along white-input 4-paths. A black-input pixel is pinned black
#: (4u dominates every neighbor sum); a white-input pixel stays black
#: only while all four neighbors are black (drive z+4u+s = -1 > -2),
#: and flips once any neighbor whitens (drive <= -3 < -2). z = -1
#: centers both cases one unit away from the +/-2 stability threshold.
HOLE_FILL_TEMPLATE = CnnTemplate(
    a=((0, 1, 0), (1, 3, 1), (0, 1, 0)),
    b=((0, 0, 0), (0, 4, 0), (0, 0, 0)),
    z=-1.0,
    name="hole-fill",
)


def _binary(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError("expected a 2-D image")
    return image > 0


def expected_dilation(image: np.ndarray) -> np.ndarray:
    """Reference: black iff the pixel or a 4-neighbor input is black."""
    black = _binary(image)
    padded = np.pad(black, 1, constant_values=False)
    grown = (padded[1:-1, 1:-1] | padded[:-2, 1:-1] | padded[2:, 1:-1]
             | padded[1:-1, :-2] | padded[1:-1, 2:])
    return np.where(grown, BLACK, WHITE)


def expected_erosion(image: np.ndarray) -> np.ndarray:
    """Reference: black iff the pixel and all 4-neighbors are black
    (the virtual frame is white, so border pixels always erode)."""
    black = _binary(image)
    padded = np.pad(black, 1, constant_values=False)
    kept = (padded[1:-1, 1:-1] & padded[:-2, 1:-1] & padded[2:, 1:-1]
            & padded[1:-1, :-2] & padded[1:-1, 2:])
    return np.where(kept, BLACK, WHITE)


def expected_opening(image: np.ndarray) -> np.ndarray:
    """Reference for erosion followed by dilation."""
    return expected_dilation(expected_erosion(image))


def expected_shadow(image: np.ndarray) -> np.ndarray:
    """Reference: black iff any input pixel at or right of (i, j) in
    row i is black."""
    black = _binary(image)
    shadow = np.logical_or.accumulate(black[:, ::-1], axis=1)[:, ::-1]
    return np.where(shadow, BLACK, WHITE)


def expected_hole_fill(image: np.ndarray) -> np.ndarray:
    """Reference: white regions 4-connected to the frame stay white;
    enclosed white regions (holes) fill black."""
    black = _binary(image)
    rows, cols = black.shape
    reachable = np.zeros_like(black, dtype=bool)
    queue: deque[tuple[int, int]] = deque()
    for i in range(rows):
        for j in (0, cols - 1):
            if not black[i, j] and not reachable[i, j]:
                reachable[i, j] = True
                queue.append((i, j))
    for j in range(cols):
        for i in (0, rows - 1):
            if not black[i, j] and not reachable[i, j]:
                reachable[i, j] = True
                queue.append((i, j))
    while queue:
        i, j = queue.popleft()
        for k, m in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
            if 0 <= k < rows and 0 <= m < cols and not black[k, m] \
                    and not reachable[k, m]:
                reachable[k, m] = True
                queue.append((k, m))
    return np.where(reachable, WHITE, BLACK)


def expected_corners(image: np.ndarray) -> np.ndarray:
    """Reference for ``CORNER_TEMPLATE``: black iff the input pixel is
    black and at least five of its 8-neighbors are white (the virtual
    frame counts as white)."""
    black = _binary(image)
    rows, cols = black.shape
    result = np.full(black.shape, WHITE)
    for i in range(rows):
        for j in range(cols):
            if not black[i, j]:
                continue
            white_neighbors = 0
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    if di == 0 and dj == 0:
                        continue
                    k, m = i + di, j + dj
                    if not (0 <= k < rows and 0 <= m < cols) \
                            or not black[k, m]:
                        white_neighbors += 1
            if white_neighbors >= 5:
                result[i, j] = BLACK
    return result


#: Template registry: name -> (template, reference, initial state).
LIBRARY = {
    "dilation": (DILATION_TEMPLATE, expected_dilation, 0.0),
    "erosion": (EROSION_TEMPLATE, expected_erosion, 0.0),
    "shadow": (SHADOW_TEMPLATE, expected_shadow, 0.0),
    "hole-fill": (HOLE_FILL_TEMPLATE, expected_hole_fill, float(BLACK)),
}


def apply_template(image: np.ndarray, template: CnnTemplate, *,
                   initial_state: float | np.ndarray = 0.0,
                   t_end: float = 12.0, seed: int | None = None,
                   boundary: float | None = WHITE,
                   **grid_options) -> np.ndarray:
    """Run ``template`` on ``image`` to steady state, return the
    binarized output image.

    This is the convenience entry point for chaining templates into
    image pipelines (the CNN usage model: one analog array, a sequence
    of template programs).
    """
    image = np.asarray(image, dtype=float)
    graph = cnn_grid(image, template, initial_state=initial_state,
                     boundary=boundary, seed=seed, **grid_options)
    run = run_cnn(graph, *image.shape, t_end=t_end)
    return run.output


def run_library_template(image: np.ndarray, name: str, *,
                         t_end: float = 12.0,
                         **grid_options) -> tuple[np.ndarray, np.ndarray]:
    """Run a registered template and its reference on ``image``.

    :returns: ``(cnn_output, reference_output)`` — equal pixel-for-pixel
        when the analog array computes its specification.
    """
    try:
        template, reference, initial = LIBRARY[name]
    except KeyError:
        raise KeyError(f"unknown library template {name!r}; expected "
                       f"one of {sorted(LIBRARY)}") from None
    output = apply_template(image, template, initial_state=initial,
                            t_end=t_end, **grid_options)
    return output, reference(image)
