"""The hw-cnn hardware extension (§7.1, Fig. 10b).

Codifies the analog CNN design space and its nonidealities:

* ``Vm`` inherits ``V`` and adds a 10%-mismatched gain factor ``mm`` that
  scales the cell's entire integrator (the "integrator bias" mismatch of
  Fig. 11c column B) — equilibria are unchanged, convergence rate is not;
* ``fEm`` inherits ``fE`` with a 10%-mismatched template weight ``g``
  (Fig. 11c column C) — this perturbs equilibria and can flip output
  pixels;
* ``OutNL`` inherits ``Out`` and applies the non-ideal MOS
  differential-pair saturation ``sat_ni`` (Fig. 11c column D).

``fEm`` declares no production rules of its own: the compiler's
inheritance fallback applies the parent ``fE`` rules with the mismatched
``g`` values — exactly the paper's progressive-substitution story.
"""

from __future__ import annotations

from functools import cache

from repro.core.language import Language
from repro.lang import parse_program
from repro.paradigms.cnn.language import cnn_language

HW_CNN_SOURCE = """
lang hw-cnn inherits cnn {
    ntyp(0,sum) OutNL inherit Out {};
    ntyp(1,sum) Vm inherit V {attr z=real[-10,10],
                              attr mm=real[1,1] mm(0,0.1)};
    etyp fEm inherit fE {attr g=real[-10,10] mm(0,0.1)};

    prod(e:fE, s:Inp->t:Vm)  t <= e.g*t.mm*s.u;
    prod(e:iE, s:Vm->s:Vm)   s <= s.mm*(s.z-var(s));
    prod(e:fE, s:Out->t:Vm)  t <= e.g*t.mm*var(s);
    prod(e:iE, s:V->t:OutNL) t <= sat_ni(var(s));
}
"""


def build_hw_cnn_language(parent: Language | None = None) -> Language:
    """Construct a fresh hw-cnn instance on top of ``parent``."""
    parent = parent or cnn_language()
    program = parse_program(HW_CNN_SOURCE, languages={"cnn": parent})
    return program.languages["hw-cnn"]


@cache
def hw_cnn_language() -> Language:
    """The shared hw-cnn language instance (inherits the shared CNN)."""
    return build_hw_cnn_language(cnn_language())
