"""PDE solving on the CNN array: linear diffusion (the heat equation).

§7.1 lists PDE solving among the CNN paradigm's applications, and the
paper's hw-cnn reference [17] (Fernández-Berni & Carmona-Galán) is
precisely about implementing linear diffusion on transconductance-based
CNN hardware. The construction: with the feedback template

    A = [[0,    r,      0],
         [r,    1 - 4r, r],
         [0,    r,      0]],   B = 0,  z = 0,

the CNN dynamics ``dx/dt = -x + sum A f(x)`` reduce, while every cell
stays inside the saturation's linear region (|x| <= 1 where f(x) = x),
to the spatially discretized heat equation

    dx_ij/dt = r * (x_{i-1,j} + x_{i+1,j} + x_{i,j-1} + x_{i,j+1}
                    - 4 x_ij),

with Dirichlet-zero boundary (missing neighbors contribute nothing —
the grid builder's default boundary). :func:`reference_diffusion`
computes the exact solution of that linear system by eigendecomposition,
so the CNN trajectory can be checked against ground truth, and
:func:`diffusion_step_response` packages the comparison.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import DynamicalGraph
from repro.core.simulator import simulate
from repro.errors import GraphError
from repro.paradigms.cnn.templates import CnnTemplate, cnn_grid


def diffusion_template(rate: float) -> CnnTemplate:
    """The linear-diffusion feedback template with diffusion rate ``r``.

    ``rate`` must keep all template entries inside the fE ``g`` range
    [-10, 10]; the interesting regime is 0 < r <= 2 (larger r only
    rescales time).
    """
    if not 0.0 < rate <= 2.0:
        raise GraphError(f"diffusion rate must be in (0, 2], got {rate}")
    r = float(rate)
    return CnnTemplate(
        a=((0.0, r, 0.0), (r, 1.0 - 4.0 * r, r), (0.0, r, 0.0)),
        b=((0.0,) * 3,) * 3,
        z=0.0,
        name=f"diffusion-r{rate:g}",
    )


def heat_cnn(initial: np.ndarray, rate: float = 0.5, *,
             seed: int | None = None, **grid_options) -> DynamicalGraph:
    """A CNN grid initialized with the heat distribution ``initial``.

    ``initial`` values must lie in [-1, 1] so the saturation stays in
    its linear region; diffusion with Dirichlet-zero boundary only
    contracts the range, so linearity then holds for all time.
    """
    initial = np.asarray(initial, dtype=float)
    if initial.ndim != 2:
        raise GraphError("initial heat distribution must be 2-D")
    if np.abs(initial).max() > 1.0:
        raise GraphError(
            "initial values must lie in [-1, 1] (the linear region of "
            "the cell saturation)")
    image = np.zeros_like(initial)
    return cnn_grid(image, diffusion_template(rate),
                    initial_state=initial, seed=seed, **grid_options)


def laplacian_matrix(rows: int, cols: int) -> np.ndarray:
    """The 5-point Laplacian on a rows x cols grid with Dirichlet-zero
    boundary, acting on row-major flattened grids."""
    size = rows * cols
    matrix = np.zeros((size, size))
    for i in range(rows):
        for j in range(cols):
            center = i * cols + j
            matrix[center, center] = -4.0
            for k, m in ((i - 1, j), (i + 1, j), (i, j - 1),
                         (i, j + 1)):
                if 0 <= k < rows and 0 <= m < cols:
                    matrix[center, k * cols + m] = 1.0
    return matrix


def reference_diffusion(initial: np.ndarray, rate: float,
                        times) -> np.ndarray:
    """Exact solution of the discretized heat equation.

    Solves ``dx/dt = rate * L x`` by eigendecomposition of the symmetric
    Laplacian ``L`` — independent of the Ark compiler and simulator.

    :returns: array of shape (len(times), rows, cols).
    """
    initial = np.asarray(initial, dtype=float)
    rows, cols = initial.shape
    eigenvalues, eigenvectors = np.linalg.eigh(
        laplacian_matrix(rows, cols))
    coefficients = eigenvectors.T @ initial.ravel()
    frames = []
    for t in np.atleast_1d(times):
        decay = np.exp(rate * eigenvalues * float(t))
        frames.append((eigenvectors @ (decay * coefficients))
                      .reshape(rows, cols))
    return np.stack(frames)


def solve_diffusion(initial: np.ndarray, rate: float, times, *,
                    method: str = "RK45", rtol: float = 1e-8,
                    atol: float = 1e-10) -> np.ndarray:
    """Simulate the diffusion CNN and sample the cell-state grid at
    ``times``.

    :returns: array of shape (len(times), rows, cols).
    """
    initial = np.asarray(initial, dtype=float)
    times = np.atleast_1d(np.asarray(times, dtype=float))
    if times.min() < 0:
        raise GraphError("sample times must be non-negative")
    graph = heat_cnn(initial, rate)
    horizon = float(times.max()) if times.max() > 0 else 1.0
    trajectory = simulate(graph, (0.0, horizon), method=method,
                          rtol=rtol, atol=atol,
                          n_points=max(201, 2 * len(times)))
    rows, cols = initial.shape
    frames = np.empty((len(times), rows, cols))
    for i in range(rows):
        for j in range(cols):
            frames[:, i, j] = trajectory.sample(f"V_{i}_{j}", times)
    return frames


def diffusion_step_response(size: int = 8, rate: float = 0.5,
                            times=(0.0, 0.5, 1.0, 2.0),
                            ) -> dict[str, np.ndarray]:
    """Diffuse a centered hot square and compare CNN vs exact solution.

    :returns: dict with ``times``, ``cnn``, ``exact``, and per-frame
        ``rmse`` arrays.
    """
    initial = np.zeros((size, size))
    lo, hi = size // 2 - size // 4, size // 2 + (size + 3) // 4
    initial[lo:hi, lo:hi] = 1.0
    times = np.asarray(times, dtype=float)
    cnn_frames = solve_diffusion(initial, rate, times)
    exact_frames = reference_diffusion(initial, rate, times)
    rmse = np.sqrt(((cnn_frames - exact_frames) ** 2)
                   .mean(axis=(1, 2)))
    return {"times": times, "cnn": cnn_frames, "exact": exact_frames,
            "rmse": rmse}
