"""Input images and image utilities for the CNN experiments (Fig. 11b).

Images are numpy arrays with values in [-1, +1]: +1 is black, -1 is
white (the CNN sign convention). The default test image places filled
shapes inside a white margin, so the zero-padded boundary cells of the
grid do not produce spurious edges.
"""

from __future__ import annotations

import numpy as np

BLACK = 1.0
WHITE = -1.0


def default_image(size: int = 16) -> np.ndarray:
    """The Fig. 11b-style binary input: a filled square and a triangle
    inside a white margin."""
    if size < 8:
        raise ValueError("default image needs size >= 8")
    image = np.full((size, size), WHITE)
    # Filled square in the upper-left quadrant.
    side = max(3, size // 3)
    image[2:2 + side, 2:2 + side] = BLACK
    # Filled right triangle in the lower-right quadrant.
    base = max(3, size // 3 + 1)
    r0 = size - 2 - base
    c0 = size - 2 - base
    for k in range(base):
        image[r0 + k, c0 + base - 1 - k:c0 + base] = BLACK
    return image


def expected_edges(image: np.ndarray) -> np.ndarray:
    """Reference edge detector: a pixel is an edge (black) when it is
    black and at least one 8-neighbor is white. Matches the fixed point
    of the EDGE template (see :mod:`repro.paradigms.cnn.templates`)."""
    rows, cols = image.shape
    result = np.full_like(image, WHITE)
    for i in range(rows):
        for j in range(cols):
            if image[i, j] <= 0:
                continue
            neighborhood = image[max(0, i - 1):i + 2,
                                 max(0, j - 1):j + 2]
            # The centre pixel itself is black; look for a white
            # neighbor anywhere in the 3x3 patch.
            if (neighborhood <= 0).any():
                result[i, j] = BLACK
    return result


def binarize(values: np.ndarray, threshold: float = 0.0) -> np.ndarray:
    """Map analog cell outputs to {-1, +1} pixels."""
    return np.where(np.asarray(values) > threshold, BLACK, WHITE)


def pixel_errors(actual: np.ndarray, expected: np.ndarray) -> int:
    """Number of pixels whose binarized value differs."""
    return int((binarize(actual) != binarize(expected)).sum())


def to_ascii(image: np.ndarray) -> str:
    """Terminal rendering: '#' for black, '.' for white, '?' otherwise."""
    rows = []
    for row in np.asarray(image):
        chars = []
        for value in row:
            if value > 0.5:
                chars.append("#")
            elif value < -0.5:
                chars.append(".")
            else:
                chars.append("?")
        rows.append("".join(chars))
    return "\n".join(rows)
