"""CNN cloning templates and grid builders (§7.1).

A CNN program is a pair of 3x3 templates: the feedback template ``A``
(applied to neighbor outputs f(x_kl)), the control template ``B`` (applied
to neighbor inputs u_kl), and the bias ``z``. :func:`cnn_grid` lays out
the corresponding dynamical graph — one ``V``/``Out``/``Inp`` triple per
pixel, all 3x3 template edges present (the Fig. 10a validity rules demand
between 4 and 9 of them per cell, i.e. the full neighborhood clipped at
the image boundary).

The EDGE template is the paper's §7.1 workload: a black pixel stays black
iff at least one 8-neighbor is white. CORNER and DIFFUSION are classic
companions used by the extra examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import GraphBuilder
from repro.core.graph import DynamicalGraph
from repro.core.language import Language
from repro.errors import GraphError
from repro.paradigms.cnn.hw import hw_cnn_language
from repro.paradigms.cnn.language import cnn_language


@dataclass(frozen=True)
class CnnTemplate:
    """A CNN program: feedback template A, control template B, bias z."""

    a: tuple[tuple[float, ...], ...]
    b: tuple[tuple[float, ...], ...]
    z: float
    name: str = "template"

    def __post_init__(self):
        for matrix, label in ((self.a, "A"), (self.b, "B")):
            if len(matrix) != 3 or any(len(row) != 3 for row in matrix):
                raise GraphError(
                    f"{label} template of {self.name} must be 3x3")

    @property
    def a_array(self) -> np.ndarray:
        return np.asarray(self.a, dtype=float)

    @property
    def b_array(self) -> np.ndarray:
        return np.asarray(self.b, dtype=float)


#: Edge detection (Chua & Yang): black output iff black input pixel with
#: at least one white 8-neighbor.
EDGE_TEMPLATE = CnnTemplate(
    a=((0, 0, 0), (0, 1, 0), (0, 0, 0)),
    b=((-1, -1, -1), (-1, 8, -1), (-1, -1, -1)),
    z=-1.0,
    name="edge",
)

#: Convex-corner detection: black output iff black pixel with exactly
#: five or more white 8-neighbors.
CORNER_TEMPLATE = CnnTemplate(
    a=((0, 0, 0), (0, 1, 0), (0, 0, 0)),
    b=((-1, -1, -1), (-1, 4, -1), (-1, -1, -1)),
    z=-5.0,
    name="corner",
)

#: Linear diffusion / smoothing: neighbors pull the cell toward their
#: average (no control template).
DIFFUSION_TEMPLATE = CnnTemplate(
    a=((0.1, 0.15, 0.1), (0.15, 0.0, 0.15), (0.1, 0.15, 0.1)),
    b=((0, 0, 0), (0, 0, 0), (0, 0, 0)),
    z=0.0,
    name="diffusion",
)

#: Fig. 11c variants: which hw-cnn types replace the ideal ones.
VARIANTS = {
    "ideal": {},
    "bias_mismatch": {"cell_type": "Vm"},
    "template_mismatch": {"feedback_edge_type": "fEm"},
    "nonideal_sat": {"out_type": "OutNL"},
}


def _neighbors(i: int, j: int, rows: int, cols: int):
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            k, m = i + di, j + dj
            if 0 <= k < rows and 0 <= m < cols:
                yield k, m, di + 1, dj + 1


def _boundary_bias(template: CnnTemplate, i: int, j: int, rows: int,
                   cols: int, boundary: float) -> float:
    """Constant virtual-frame contribution folded into the cell bias.

    Classic CNN templates assume a frame of *virtual cells* with fixed
    output and input values around the grid (Chua & Yang's boundary
    conditions). A constant virtual cell contributes
    ``A[off]*boundary + B[off]*boundary`` to its real neighbor — a
    constant, so it folds exactly into that cell's ``z`` attribute and
    needs no language extension.
    """
    a_matrix = template.a_array
    b_matrix = template.b_array
    missing = 0.0
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            k, m = i + di, j + dj
            if not (0 <= k < rows and 0 <= m < cols):
                missing += a_matrix[di + 1, dj + 1]
                missing += b_matrix[di + 1, dj + 1]
    return boundary * missing


def cnn_grid(image: np.ndarray, template: CnnTemplate, *,
             cell_type: str = "V", out_type: str = "Out",
             feedback_edge_type: str = "fE",
             language: Language | None = None,
             seed: int | None = None,
             initial_state: float | np.ndarray = 0.0,
             boundary: float | None = None) -> DynamicalGraph:
    """Build the CNN dynamical graph for ``image`` under ``template``.

    Node names follow the ``V_<i>_<j>`` convention the grid global check
    relies on. The hw-cnn substitutions of Fig. 11c are selected with
    ``cell_type``/``out_type``/``feedback_edge_type`` (see ``VARIANTS``).

    :param boundary: constant virtual-frame value for cells outside the
        grid (e.g. ``WHITE`` for a white frame); ``None`` keeps the
        zero-value boundary (missing neighbors contribute nothing).
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise GraphError("CNN input image must be 2-D")
    rows, cols = image.shape
    if language is None:
        needs_hw = (cell_type, out_type,
                    feedback_edge_type) != ("V", "Out", "fE")
        language = hw_cnn_language() if needs_hw else cnn_language()
    initial = np.broadcast_to(np.asarray(initial_state, dtype=float),
                              image.shape)

    builder = GraphBuilder(language, f"cnn-{template.name}", seed=seed)
    a_matrix = template.a_array
    b_matrix = template.b_array

    for i in range(rows):
        for j in range(cols):
            cell = f"V_{i}_{j}"
            builder.node(cell, cell_type)
            bias = template.z
            if boundary is not None:
                bias += _boundary_bias(template, i, j, rows, cols,
                                       boundary)
            builder.set_attr(cell, "z", bias)
            if cell_type == "Vm":
                builder.set_attr(cell, "mm", 1.0)
            builder.set_init(cell, float(initial[i, j]))
            builder.edge(cell, cell, f"iEs_{i}_{j}", "iE")

            out = f"Out_{i}_{j}"
            builder.node(out, out_type)
            builder.edge(cell, out, f"iEo_{i}_{j}", "iE")

            inp = f"Inp_{i}_{j}"
            builder.node(inp, "Inp")
            builder.set_attr(inp, "u", float(image[i, j]))

    for i in range(rows):
        for j in range(cols):
            cell = f"V_{i}_{j}"
            for k, m, ti, tj in _neighbors(i, j, rows, cols):
                # Feedback: A[ti][tj] weights Out_(k,m) -> V_(i,j), where
                # (ti,tj) is the offset of (k,m) relative to (i,j).
                edge = f"fa_{i}_{j}_{k}_{m}"
                builder.edge(f"Out_{k}_{m}", cell, edge,
                             feedback_edge_type)
                builder.set_attr(edge, "g", float(a_matrix[ti, tj]))
                # Control: B[ti][tj] weights Inp_(k,m) -> V_(i,j).
                edge = f"fb_{i}_{j}_{k}_{m}"
                builder.edge(f"Inp_{k}_{m}", cell, edge,
                             feedback_edge_type)
                builder.set_attr(edge, "g", float(b_matrix[ti, tj]))

    return builder.finish()


def edge_detector(image: np.ndarray, variant: str = "ideal", *,
                  seed: int | None = None,
                  language: Language | None = None) -> DynamicalGraph:
    """The §7.1 edge-detection CNN in one of the Fig. 11c variants.

    :param variant: ``ideal`` (column A), ``bias_mismatch`` (B),
        ``template_mismatch`` (C), or ``nonideal_sat`` (D).
    """
    try:
        substitutions = VARIANTS[variant]
    except KeyError:
        raise GraphError(
            f"unknown CNN variant {variant!r}; expected one of "
            f"{sorted(VARIANTS)}") from None
    return cnn_grid(image, EDGE_TEMPLATE, seed=seed, language=language,
                    **substitutions)
