"""Readout and convergence analysis for CNN runs (Fig. 11c).

The paper's Fig. 11c shows the evolution of the edge detector's cell
states over normalized time for four hardware variants and reports which
converge, how fast, and whether the output image is correct.
:func:`run_cnn` packages exactly that: state snapshots at the figure's
time fractions, the binarized output image, the convergence time, and the
pixel error count against a reference image.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import DynamicalGraph
from repro.core.simulator import Trajectory, simulate
from repro.paradigms.cnn.images import binarize, pixel_errors


def state_grid(trajectory: Trajectory, rows: int, cols: int,
               time_index: int = -1) -> np.ndarray:
    """Cell states x_ij at one sample index, as a (rows, cols) array."""
    grid = np.empty((rows, cols))
    for i in range(rows):
        for j in range(cols):
            grid[i, j] = trajectory[f"V_{i}_{j}"][time_index]
    return grid


def convergence_time(trajectory: Trajectory, rows: int, cols: int,
                     threshold: float = 0.9) -> float | None:
    """First time after which every cell stays on its final side of 0
    with magnitude above ``threshold``; None when never reached."""
    states = np.stack([trajectory[f"V_{i}_{j}"]
                       for i in range(rows) for j in range(cols)])
    final_signs = np.sign(states[:, -1])
    settled = (np.sign(states) == final_signs[:, None]) & \
        (np.abs(states) >= threshold)
    all_settled = settled.all(axis=0)
    # Find the earliest index from which all later samples are settled.
    not_settled = np.where(~all_settled)[0]
    if len(not_settled) == 0:
        return float(trajectory.t[0])
    last_bad = not_settled[-1]
    if last_bad + 1 >= len(trajectory.t):
        return None
    return float(trajectory.t[last_bad + 1])


@dataclass
class CnnRun:
    """Result of one CNN simulation."""

    variant: str
    trajectory: Trajectory
    rows: int
    cols: int
    snapshots: dict[float, np.ndarray] = field(default_factory=dict)
    output: np.ndarray | None = None
    converged_at: float | None = None
    errors: int | None = None

    @property
    def converged(self) -> bool:
        return self.converged_at is not None

    @property
    def correct(self) -> bool:
        return self.errors == 0


def run_cnn(graph: DynamicalGraph, rows: int, cols: int, *,
            variant: str = "ideal", t_end: float = 10.0,
            snapshot_fractions=(0.0, 0.25, 0.5, 0.75, 1.0),
            expected: np.ndarray | None = None,
            n_points: int = 201, method: str = "RK45") -> CnnRun:
    """Simulate a CNN grid and collect the Fig. 11c measurements."""
    trajectory = simulate(graph, (0.0, t_end), n_points=n_points,
                          method=method, rtol=1e-6, atol=1e-8)
    run = CnnRun(variant=variant, trajectory=trajectory, rows=rows,
                 cols=cols)
    for fraction in snapshot_fractions:
        index = min(int(round(fraction * (trajectory.n_points - 1))),
                    trajectory.n_points - 1)
        run.snapshots[fraction] = state_grid(trajectory, rows, cols,
                                             index)
    run.output = binarize(state_grid(trajectory, rows, cols, -1))
    run.converged_at = convergence_time(trajectory, rows, cols)
    if expected is not None:
        run.errors = pixel_errors(run.output, expected)
    return run
