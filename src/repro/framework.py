"""The Ark framework driver (§4.6).

"Given an Ark program containing language and function definitions, an
end user may invoke any of the defined functions with Ark. Ark executes
the function with the provided arguments to build the associated dynamic
graph and then validates that the dynamic graph satisfies the local and
global validation rules in the associated language. If the dynamic graph
validates, Ark generates differential equations that simulate the
transient behavior of the graph."

:func:`run` packages that pipeline — invoke (optionally), validate,
compile, simulate — and returns everything a caller might want to
inspect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler import compile_graph
from repro.core.function import ArkFunction
from repro.core.graph import DynamicalGraph
from repro.core.language import Language
from repro.core.odesystem import OdeSystem
from repro.core.simulator import Trajectory, simulate
from repro.core.validator import ValidationReport, validate


@dataclass
class RunResult:
    """Everything produced by one framework run."""

    graph: DynamicalGraph
    report: ValidationReport
    system: OdeSystem
    trajectory: Trajectory


def run(target: ArkFunction | DynamicalGraph, t_span: tuple[float, float],
        arguments: dict | None = None, *, seed: int | None = None,
        language: Language | None = None,
        validator_backend: str = "milp",
        **simulate_options) -> RunResult:
    """Execute the full §4.6 pipeline.

    :param target: an Ark function (invoked with ``arguments`` and
        ``seed``) or an already-built dynamical graph.
    :param t_span: simulation interval passed to the simulator.
    :param language: compile/validate under this language instead of the
        graph's own (progressive-rewriting workflows).
    :raises ValidationError: when the graph violates its language.
    """
    if isinstance(target, ArkFunction):
        graph = target.invoke(arguments or {}, seed=seed)
    else:
        graph = target
    report = validate(graph, language=language,
                      backend=validator_backend)
    report.raise_if_invalid()
    system = compile_graph(graph, language=language)
    trajectory = simulate(system, t_span, **simulate_options)
    return RunResult(graph=graph, report=report, system=system,
                     trajectory=trajectory)
