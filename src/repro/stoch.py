"""``repro.stoch`` — the batched transient-noise (SDE) subsystem.

One import surface for everything stochastic, the second half of the
paper's nonideality story (§4.3 covers the first, fabrication
mismatch):

* **Language**: ``noise(amp)`` production terms and ``ns(sigma[,rel])``
  datatype annotations compile into
  :class:`~repro.core.odesystem.DiffusionTerm` entries of the
  ``OdeSystem`` (see :mod:`repro.core.compiler`);
* **Streams**: deterministic per-``(seed, element, path)`` Wiener
  streams, hashed exactly like mismatch (:mod:`repro.core.noise`);
* **Solvers**: vectorized Euler–Maruyama and stochastic Heun over
  ``(n_instances, n_states)`` batches
  (:mod:`repro.sim.sde_solver`);
* **Driver**: the (chip seed × noise trial) outer-product sweep behind
  PUF transient-noise reliability and the OBC quality-vs-noise study —
  since the unified execution-plan layer (:mod:`repro.sim.plan`) this
  is ``run_ensemble(..., trials=K)``; :func:`run_noisy_ensemble` is the
  established name, kept as a delegating shim.

The implementation lives in :mod:`repro.core` / :mod:`repro.sim`
(noise shares the compiler and the batched engine with the
deterministic path — that sharing *is* the design); this module is the
subsystem's nominal home and re-exports its public API::

    from repro.stoch import simulate_sde, run_noisy_ensemble
"""

from repro.core.datatypes import Noise
from repro.core.noise import (SHARED_ELEMENT, bridge_bits, bridge_seed,
                              share_wiener, stream, stream_seed)
from repro.core.odesystem import DiffusionTerm
from repro.sim.ensemble import run_ensemble
from repro.sim.noisy import NoisyEnsembleResult, run_noisy_ensemble
from repro.sim.plan import ExecutionPlan, NoiseSpec
from repro.sim.sde_solver import (ADAPTIVE_SDE_METHODS,
                                  FIXED_SDE_METHODS, SDE_METHODS,
                                  BridgeWienerSource, WienerSource,
                                  simulate_sde, solve_sde)

__all__ = [
    "ADAPTIVE_SDE_METHODS",
    "BridgeWienerSource",
    "DiffusionTerm",
    "ExecutionPlan",
    "FIXED_SDE_METHODS",
    "Noise",
    "NoiseSpec",
    "NoisyEnsembleResult",
    "SDE_METHODS",
    "SHARED_ELEMENT",
    "WienerSource",
    "bridge_bits",
    "bridge_seed",
    "run_ensemble",
    "run_noisy_ensemble",
    "share_wiener",
    "simulate_sde",
    "solve_sde",
    "stream",
    "stream_seed",
]
