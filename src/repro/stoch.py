"""``repro.stoch`` — the batched transient-noise (SDE) subsystem.

One import surface for everything stochastic, the second half of the
paper's nonideality story (§4.3 covers the first, fabrication
mismatch):

* **Language**: ``noise(amp)`` production terms and ``ns(sigma[,rel])``
  datatype annotations compile into
  :class:`~repro.core.odesystem.DiffusionTerm` entries of the
  ``OdeSystem`` (see :mod:`repro.core.compiler`);
* **Streams**: deterministic per-``(seed, element, path)`` Wiener
  streams, hashed exactly like mismatch (:mod:`repro.core.noise`);
* **Solvers**: vectorized Euler–Maruyama and stochastic Heun over
  ``(n_instances, n_states)`` batches
  (:mod:`repro.sim.sde_solver`);
* **Driver**: the (chip seed × noise trial) outer-product sweep behind
  PUF transient-noise reliability and the OBC quality-vs-noise study —
  since the unified execution-plan layer (:mod:`repro.sim.plan`) this
  is ``run_ensemble(..., trials=K)``; :func:`run_noisy_ensemble` is the
  established name, kept as a delegating shim.

The implementation lives in :mod:`repro.core` / :mod:`repro.sim`
(noise shares the compiler and the batched engine with the
deterministic path — that sharing *is* the design); this module is the
subsystem's nominal home and re-exports its public API::

    from repro.stoch import simulate_sde, run_noisy_ensemble
"""

from repro.core.datatypes import Noise
from repro.core.noise import stream, stream_seed
from repro.core.odesystem import DiffusionTerm
from repro.sim.ensemble import run_ensemble
from repro.sim.noisy import NoisyEnsembleResult, run_noisy_ensemble
from repro.sim.plan import ExecutionPlan, NoiseSpec
from repro.sim.sde_solver import (SDE_METHODS, WienerSource,
                                  simulate_sde, solve_sde)

__all__ = [
    "DiffusionTerm",
    "ExecutionPlan",
    "Noise",
    "NoiseSpec",
    "NoisyEnsembleResult",
    "SDE_METHODS",
    "WienerSource",
    "run_ensemble",
    "run_noisy_ensemble",
    "simulate_sde",
    "solve_sde",
    "stream",
    "stream_seed",
]
