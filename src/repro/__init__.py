"""Reproduction of *Design of Novel Analog Compute Paradigms with Ark*
(Wang, Cowan, Rührmair, Achour — ASPLOS 2024).

Ark is a programming language for describing analog compute paradigms as
domain-specific languages. This package provides:

* the dynamical-graph computational model and the Ark language core
  (:mod:`repro.core`);
* a textual front-end for the paper's concrete grammar (:mod:`repro.lang`);
* the three paradigm DSLs of the paper — transmission-line networks,
  cellular nonlinear networks, oscillator-based computing — with their
  hardware extensions (:mod:`repro.paradigms`);
* a circuit-level GmC substrate for the §4.5 empirical validation
  (:mod:`repro.circuits`);
* analysis utilities and a PUF toolkit (:mod:`repro.analysis`,
  :mod:`repro.puf`);
* a batched ensemble simulation engine for Monte-Carlo mismatch
  studies (:mod:`repro.sim`).

Quickstart::

    import repro

    lang = repro.Language("decay")
    lang.node_type("X", order=1, reduction="sum")
    lang.edge_type("Self")
    lang.prod("prod(e:Self, s:X->s:X) s <= -var(s)")

    g = repro.GraphBuilder(lang, "one-pole")
    g.node("x", "X").edge("x", "x", "e0", "Self").set_init("x", 1.0)
    graph = g.finish()

    repro.validate(graph).raise_if_invalid()
    trajectory = repro.simulate(graph, (0.0, 5.0))
    print(trajectory["x"][-1])   # ~ exp(-5)
"""

from repro.core import (
    INF,
    ArkFunction,
    AttrDecl,
    ConstraintRule,
    DynamicalGraph,
    Edge,
    EdgeType,
    GraphBuilder,
    InitDecl,
    IntType,
    Language,
    LambdaType,
    MatchClause,
    Mismatch,
    Noise,
    Node,
    NodeType,
    OdeSystem,
    Pattern,
    ProductionRule,
    RealType,
    Reduction,
    TimeDilatedSystem,
    Trajectory,
    ValidationReport,
    compile_graph,
    dilate,
    integer,
    lambd,
    real,
    simulate,
    simulate_ensemble,
    validate,
)
from repro.errors import (
    ArkError,
    CompileError,
    DatatypeError,
    FunctionError,
    GraphError,
    InheritanceError,
    LanguageError,
    ParseError,
    SimulationError,
    ValidationError,
)
from repro.framework import RunResult, run
from repro.sim import (BatchTrajectory, EnsembleResult,
                       NoisyEnsembleResult, run_ensemble,
                       run_noisy_ensemble, simulate_sde,
                       solve_sde, stream_ensemble)

__version__ = "1.0.0"

__all__ = [
    "INF",
    "ArkFunction",
    "AttrDecl",
    "ConstraintRule",
    "DynamicalGraph",
    "Edge",
    "EdgeType",
    "GraphBuilder",
    "InitDecl",
    "IntType",
    "Language",
    "LambdaType",
    "MatchClause",
    "Mismatch",
    "Noise",
    "Node",
    "NodeType",
    "OdeSystem",
    "Pattern",
    "ProductionRule",
    "RealType",
    "Reduction",
    "TimeDilatedSystem",
    "Trajectory",
    "ValidationReport",
    "compile_graph",
    "dilate",
    "integer",
    "lambd",
    "real",
    "simulate",
    "simulate_ensemble",
    "validate",
    "ArkError",
    "CompileError",
    "DatatypeError",
    "FunctionError",
    "GraphError",
    "InheritanceError",
    "LanguageError",
    "ParseError",
    "SimulationError",
    "ValidationError",
    "RunResult",
    "run",
    "BatchTrajectory",
    "EnsembleResult",
    "run_ensemble",
    "run_noisy_ensemble",
    "simulate_sde",
    "solve_sde",
    "stream_ensemble",
    "NoisyEnsembleResult",
    "__version__",
]
