"""Extension — ML modeling attack on the TLN PUF (§2's "hard to
predict" requirement quantified): cross-validated prediction accuracy
for the Gm-mismatch design at two feature degrees, plus the cost of the
attack's two kernels (CRP harvesting and model fitting)."""

import pytest

from repro.paradigms.tln import TLineSpec
from repro.puf import PufDesign
from repro.puf.attack import (LogisticModel, challenge_features,
                              collect_crps, cross_validate)

from conftest import report

DESIGN = PufDesign(spec=TLineSpec(n_segments=10, pulse_width=4e-9),
                   branch_positions=(2, 4, 6, 8),
                   branch_lengths=(3, 5, 4, 6))
WINDOW = (8e-9, 4.5e-8)
EVAL = dict(n_bits=16, window=WINDOW, n_points=240)


@pytest.fixture(scope="module")
def harvest():
    return collect_crps(DESIGN, list(range(16)), seed=3, **EVAL)


@pytest.mark.benchmark(group="attack-harvest")
def test_crp_harvest_cost(benchmark):
    benchmark.pedantic(collect_crps, args=(DESIGN, [5], 3),
                       kwargs=EVAL, rounds=3, iterations=1)


@pytest.mark.benchmark(group="attack-fit")
def test_model_fit_cost(benchmark, harvest):
    bits, labels = harvest
    features = challenge_features(bits, DESIGN.n_bits, degree=2)
    benchmark(lambda: LogisticModel().fit(features, labels))


def test_report_attack():
    rows = [f"4-branch Gm-mismatch PUF, 16 challenges, 16-bit "
            f"responses, 4-fold CV"]
    for degree in (1, 2):
        result = cross_validate(DESIGN, seed=3, k=4, degree=degree,
                                rng=0, **EVAL)
        rows.append(
            f"degree {degree}: accuracy {result.accuracy:.3f}, "
            f"baseline {result.baseline:.3f}, advantage "
            f"{result.advantage:+.3f}")
    report("extension_attack", rows)
