"""Extension — the other OBC workloads the paper cites: weighted
max-cut (the weighted Ising machine of ref. [7]) and graph coloring
(ref. [32]), each against its exact brute-force baseline, plus kernel
timings."""

import math

import numpy as np
import pytest

from repro.paradigms.obc import (random_graphs, random_weights,
                                 solve_coloring, solve_maxcut)

from conftest import report

TRIALS = 40
D = 0.1 * math.pi


@pytest.mark.benchmark(group="obc-weighted-solve")
def test_weighted_maxcut_cost(benchmark):
    rng = np.random.default_rng(5)
    edges = random_graphs(1, 4, seed=5)[0]
    weights = random_weights(edges, rng)
    benchmark.pedantic(
        solve_maxcut, args=(edges, 4),
        kwargs=dict(d=D, weights=weights, seed=1), rounds=3,
        iterations=1)


@pytest.mark.benchmark(group="obc-coloring-solve")
def test_coloring_cost(benchmark):
    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]  # 4-cycle, 2-colorable
    benchmark.pedantic(
        solve_coloring, args=(edges, 4, 2), kwargs=dict(seed=1),
        rounds=3, iterations=1)


def test_report_weighted_maxcut():
    rng = np.random.default_rng(17)
    graphs = random_graphs(TRIALS, 4, seed=17)
    solved = synchronized = 0
    for index, edges in enumerate(graphs):
        weights = random_weights(edges, rng)
        result = solve_maxcut(edges, 4, d=D, weights=weights,
                              seed=1000 + index)
        synchronized += int(result.synchronized)
        solved += int(result.solved)
    rows = [f"weighted max-cut, {TRIALS} random 4-vertex instances, "
            f"weights in [0.5, 4], d = 0.1*pi:",
            f"  synchronized {100 * synchronized / TRIALS:.1f}%, "
            f"optimal cut found {100 * solved / TRIALS:.1f}% "
            "(vs exact weighted brute force)"]
    report("extension_weighted_maxcut", rows)
    assert synchronized / TRIALS > 0.8
    assert solved / TRIALS > 0.6


def test_report_coloring():
    cases = {
        "4-cycle / 2 colors": ([(0, 1), (1, 2), (2, 3), (3, 0)], 4, 2),
        "triangle / 3 colors": ([(0, 1), (1, 2), (0, 2)], 3, 3),
        "K4 / 4 colors": ([(i, j) for i in range(4)
                           for j in range(i + 1, 4)], 4, 4),
    }
    rows = ["oscillator graph coloring, 10 random starts per case:"]
    success = {}
    for label, (edges, n, k) in cases.items():
        proper = sum(
            solve_coloring(edges, n, k, seed=seed).proper
            for seed in range(10))
        success[label] = proper
        rows.append(f"  {label:20s}: {proper}/10 proper colorings")
    report("extension_coloring", rows)
    # The bipartite case is easy; cliques may hit local optima but
    # must succeed sometimes.
    assert success["4-cycle / 2 colors"] >= 8
    assert success["triangle / 3 colors"] >= 4
    assert success["K4 / 4 colors"] >= 2
