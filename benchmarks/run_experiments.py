"""Regenerate every table and figure of the paper at full size.

This is the paper-vs-measured harness behind EXPERIMENTS.md: it runs the
complete experiment suite (53-node lines, 100-chip ensembles, 16x16 CNN,
1000 max-cut instances, 1000 random netlists) and prints one block per
table/figure with the paper's numbers next to ours.

Run:  python benchmarks/run_experiments.py [--fast]

``--fast`` divides the population sizes by 10 (~30 s instead of several
minutes).
"""

from __future__ import annotations

import argparse
import math
import sys
import time

import numpy as np

import repro
from repro.analysis import observation_window, window_spread
from repro.circuits import compare_dg_netlist
from repro.paradigms.cnn import (default_image, edge_detector,
                                 expected_edges, run_cnn)
from repro.paradigms.obc import maxcut_experiment, random_graphs
from repro.paradigms.tln import (TLineSpec, branched_tline,
                                 linear_tline, mismatched_tline)


def banner(title: str):
    print(f"\n=== {title} " + "=" * max(1, 66 - len(title)))


def fig2():
    banner("Fig. 2 - topology validation")
    linear = linear_tline()
    branched = branched_tline()
    malformed = linear_tline()
    malformed.add_edge("bad", "IN_V", "V_0", "E")
    print("paper: branched valid / linear valid / V-V malformed"
          " invalid")
    for name, graph in (("branched", branched), ("linear", linear),
                        ("malformed", malformed)):
        verdict = repro.validate(graph, backend="milp")
        print(f"measured: {name:9s} valid={verdict.valid}")


def fig4(chips: int):
    banner("Fig. 4 - t-line transients and mismatch ensembles")
    t_end = 8e-8
    linear = repro.simulate(linear_tline(), (0.0, t_end), n_points=600)
    branched = repro.simulate(branched_tline(), (0.0, t_end),
                              n_points=600)
    lin_out = linear["OUT_V"]
    brn_out = branched["OUT_V"]
    t = branched.t
    echo = np.abs(brn_out[(t >= 4e-8) & (t <= 8e-8)]).max()
    w_lin = observation_window(linear, "OUT_V", threshold=0.1)
    w_brn = observation_window(branched, "OUT_V", threshold=0.1)
    print("paper 4b: linear pulse ~0.5, window 1e-8..3e-8 s")
    print(f"measured: peak {lin_out.max():.3f}, window "
          f"[{w_lin[0]:.2e}, {w_lin[1]:.2e}] s")
    print("paper 4a: branched pulse ~0.3, echo after 4e-8 s, window"
          " 1e-8..8e-8 s")
    print(f"measured: peak "
          f"{brn_out[(t >= 1e-8) & (t <= 3.5e-8)].max():.3f}, echo "
          f"{echo:.3f}, window [{w_brn[0]:.2e}, {w_brn[1]:.2e}] s")

    window = (1e-8, 3e-8)
    spreads = {}
    for kind in ("cint", "gm"):
        runs = repro.simulate_ensemble(
            lambda seed, kind=kind: mismatched_tline(kind, seed=seed),
            seeds=range(chips), t_span=(0.0, t_end), n_points=300)
        spreads[kind] = window_spread(runs, "OUT_V", window)
    print(f"paper 4c/4d: Gm mismatch varies much more than Cint "
          f"({chips} chips)")
    print(f"measured: cint {spreads['cint']:.4f}, gm "
          f"{spreads['gm']:.4f} "
          f"(gm/cint = {spreads['gm'] / spreads['cint']:.1f}x)")


def fig11(size: int):
    banner("Fig. 11 - CNN edge detector under hw-cnn nonidealities")
    image = default_image(size)
    expected = expected_edges(image)
    paper = {
        "ideal": "A: converges, correct",
        "bias_mismatch": "B: converges more slowly, correct",
        "template_mismatch": "C: slower and/or incorrect output",
        "nonideal_sat": "D: converges faster, correct",
    }
    for variant, claim in paper.items():
        graph = edge_detector(image, variant, seed=3)
        run = run_cnn(graph, size, size, variant=variant,
                      expected=expected)
        converged = (f"{run.converged_at:.2f}" if run.converged
                     else "never")
        print(f"paper {claim}")
        print(f"measured {variant:18s} errors={run.errors:3d} "
              f"converged_at={converged}")


def table1(trials: int):
    banner("Table 1 - OBC max-cut sync/solved probabilities")
    graphs = random_graphs(trials, 4, seed=2024)
    tolerances = (0.01 * math.pi, 0.1 * math.pi)
    ideal = maxcut_experiment(graphs, 4, tolerances=tolerances,
                              edge_type="Cpl")
    offset = maxcut_experiment(graphs, 4, tolerances=tolerances,
                               edge_type="Cpl_ofs",
                               mismatch_seeds=True)
    paper = {(0.01, "obc"): (94.1, 94.1), (0.01, "ofs"): (54.1, 54.1),
             (0.10, "obc"): (94.2, 94.1), (0.10, "ofs"): (94.8, 94.6)}
    print(f"{trials} graphs (paper: 1000)")
    print(f"{'d':>8s} {'config':>8s} {'paper s/s':>14s} "
          f"{'measured s/s':>16s}")
    for d in tolerances:
        key = round(d / math.pi, 2)
        for config, sweeps in (("obc", ideal), ("ofs", offset)):
            p_sync, p_solved = paper[(key, config)]
            sweep = sweeps[d]
            print(f"{key:>7.2f}p {config:>8s} "
                  f"{p_sync:>6.1f}/{p_solved:<7.1f} "
                  f"{sweep.sync_probability * 100:>7.1f}/"
                  f"{sweep.solved_probability * 100:<8.1f}")


def sec45(population: int):
    banner("Sec. 4.5 - DG vs synthesized GmC netlist (RMSE < 1%)")
    rng = np.random.default_rng(0)
    worst = 0.0
    means = []
    valid = 0
    for trial in range(population):
        spec = TLineSpec(n_segments=int(rng.integers(3, 14)))
        kind = ("gm", "cint")[trial % 2]
        graph = mismatched_tline(kind, spec, seed=trial)
        if repro.validate(graph, backend="flow").valid:
            valid += 1
        comparison = compare_dg_netlist(graph, (0.0, 3e-8),
                                        n_points=150)
        worst = max(worst, comparison.worst)
        means.append(comparison.mean)
    print(f"paper: 1000/1000 valid DGs map to netlists, RMSE < 1%")
    print(f"measured: {valid}/{population} valid, worst relative RMSE "
          f"{worst:.2e}, mean {float(np.mean(means)):.2e}")


def extensions():
    banner("Extensions - attack / CNN library & PDE / GPAC / placement")
    from repro.paradigms.cnn import (LIBRARY, diffusion_step_response,
                                     run_library_template)
    from repro.paradigms.gpac import (harmonic_oscillator, leaky,
                                      limit_cycle_amplitude,
                                      van_der_pol)
    from repro.paradigms.obc import (place_greedy, place_kernighan_lin,
                                     place_random)
    from repro.paradigms.obc import random_graphs as obc_graphs
    from repro.puf import PufDesign, cross_validate

    design = PufDesign(spec=TLineSpec(n_segments=10, pulse_width=4e-9),
                       branch_positions=(2, 4, 6, 8),
                       branch_lengths=(3, 5, 4, 6))
    for degree in (1, 2):
        result = cross_validate(design, seed=3, k=4, degree=degree,
                                rng=0, n_bits=16,
                                window=(8e-9, 4.5e-8), n_points=240)
        print(f"PUF attack degree {degree}: accuracy "
              f"{result.accuracy:.3f} baseline {result.baseline:.3f} "
              f"advantage {result.advantage:+.3f}")

    rng = np.random.default_rng(0)
    wrong = 0
    for name in sorted(LIBRARY):
        image = np.where(rng.random((8, 8)) < 0.4, 1.0, -1.0)
        output, reference = run_library_template(image, name)
        wrong += int((output != reference).sum())
    heat = diffusion_step_response(size=8, rate=0.5,
                                   times=(0.5, 1.0, 2.0))
    print(f"CNN library: {wrong} wrong pixels across "
          f"{len(LIBRARY)} templates; heat-equation worst RMSE "
          f"{heat['rmse'].max():.2e}")

    for leak_value in (0.0, 0.1, 0.2):
        osc = repro.simulate(
            harmonic_oscillator(types=leaky(leak_value)), (0.0, 40.0),
            n_points=801)
        vdp = repro.simulate(van_der_pol(types=leaky(leak_value)),
                             (0.0, 40.0), n_points=801)
        print(f"GPAC leak {leak_value:.1f}: sine amplitude "
              f"{limit_cycle_amplitude(osc.t, osc['x']):.3f}, "
              f"Van der Pol "
              f"{limit_cycle_amplitude(vdp.t, vdp['x']):.3f}")

    totals = {"random": 0.0, "greedy": 0.0, "kl": 0.0}
    workloads = obc_graphs(50, n_vertices=10, seed=11,
                           edge_probability=0.3)
    for edges in workloads:
        totals["random"] += place_random(edges, 10,
                                         seed=1).coupling_cost
        totals["greedy"] += place_greedy(edges, 10,
                                         seed=1).coupling_cost
        totals["kl"] += place_kernighan_lin(edges, 10,
                                            seed=1).coupling_cost
    print("placement mean cost over 50 workloads: "
          + ", ".join(f"{k} {v / len(workloads):.1f}"
                      for k, v in totals.items()))

    from repro.puf import evaluate_puf
    from repro.puf.metrics import hamming_fraction
    eval_kwargs = dict(n_bits=16, window=(8e-9, 4.5e-8), n_points=240)
    sweep = []
    for alpha in (0.0, 0.3, 0.7, 1.0):
        puf = PufDesign(spec=TLineSpec(n_segments=10,
                                       pulse_width=4e-9),
                        branch_positions=(2, 6),
                        branch_lengths=(3, 5), switch_alpha=alpha)
        responses = {c: evaluate_puf(puf, c, seed=4, **eval_kwargs)
                     for c in range(4)}
        sweep.append((alpha, float(np.mean(
            [hamming_fraction(responses[a], responses[b])
             for a, b in ((0, 1), (0, 2), (3, 1), (3, 2))]))))
    print("switch-parasitics challenge sensitivity: "
          + ", ".join(f"alpha {a:.1f} -> {s:.3f}" for a, s in sweep))

    from repro.paradigms.fhn import (NeuronSpec, fhn_reference,
                                     neuron_chain, resting_point)
    n = 6
    run = repro.simulate(neuron_chain(n, coupling=0.8), (0.0, 80.0),
                         n_points=801, rtol=1e-9, atol=1e-11)
    rest_v, rest_w = resting_point()
    v0 = np.full(n, rest_v)
    v0[0] = 1.5
    reference = fhn_reference(n, NeuronSpec(), 0.8, False, v0,
                              np.full(n, rest_w), run.t)
    worst = max(np.abs(run[f"U_{k}"] - reference[k]).max()
                for k in range(n))
    print(f"FHN spike wave vs scipy reference: max abs error "
          f"{worst:.2e}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="divide population sizes by 10")
    parser.add_argument("--skip-extensions", action="store_true",
                        help="only the paper's tables and figures")
    args = parser.parse_args(argv)
    scale = 10 if args.fast else 1

    started = time.time()
    fig2()
    fig4(chips=100 // scale)
    fig11(size=16)
    table1(trials=1000 // scale)
    sec45(population=1000 // scale)
    if not args.skip_extensions:
        extensions()
    print(f"\ntotal wall time: {time.time() - started:.0f} s")


if __name__ == "__main__":
    sys.exit(main())
