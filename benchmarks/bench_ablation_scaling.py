"""Ablation — scaling of the compiler and simulator with problem size:
t-line length and CNN grid size."""

import pytest

import repro
from repro.paradigms.cnn import default_image, edge_detector
from repro.paradigms.tln import TLineSpec, linear_tline

from conftest import report

TLINE_SIZES = (13, 26, 52)
CNN_SIZES = (8, 12, 16)


@pytest.mark.benchmark(group="scaling-tline-compile")
@pytest.mark.parametrize("segments", TLINE_SIZES)
def test_tline_compile(benchmark, segments):
    graph = linear_tline(TLineSpec(n_segments=segments))
    benchmark(repro.compile_graph, graph)


@pytest.mark.benchmark(group="scaling-tline-simulate")
@pytest.mark.parametrize("segments", TLINE_SIZES)
def test_tline_simulate(benchmark, segments):
    system = repro.compile_graph(
        linear_tline(TLineSpec(n_segments=segments)))
    benchmark.pedantic(repro.simulate,
                       args=(system, (0.0, 2e-8 + segments * 1e-9)),
                       kwargs={"n_points": 100}, rounds=3,
                       iterations=1)


@pytest.mark.benchmark(group="scaling-cnn-compile")
@pytest.mark.parametrize("size", CNN_SIZES)
def test_cnn_compile(benchmark, size):
    graph = edge_detector(default_image(size))
    benchmark.pedantic(repro.compile_graph, args=(graph,), rounds=3,
                       iterations=1)


@pytest.mark.benchmark(group="scaling-cnn-simulate")
@pytest.mark.parametrize("size", CNN_SIZES)
def test_cnn_simulate(benchmark, size):
    system = repro.compile_graph(edge_detector(default_image(size)))
    benchmark.pedantic(repro.simulate, args=(system, (0.0, 10.0)),
                       kwargs={"n_points": 60}, rounds=3, iterations=1)


def test_report_scaling():
    rows = []
    for segments in TLINE_SIZES:
        graph = linear_tline(TLineSpec(n_segments=segments))
        rows.append(f"t-line n_segments={segments}: "
                    f"{graph.stats()['states']} states, "
                    f"{graph.stats()['edges']} edges")
    for size in CNN_SIZES:
        graph = edge_detector(default_image(size))
        rows.append(f"CNN {size}x{size}: "
                    f"{graph.stats()['states']} states, "
                    f"{graph.stats()['edges']} edges")
    report("ablation_scaling", rows)
