"""Ablation — validator backend: the paper's ILP formulation
(scipy.optimize.milp) versus the exact max-flow reformulation. Both
produce identical verdicts (property-tested); this bench quantifies the
cost difference on the real workloads."""

import pytest

import repro
from repro.paradigms.cnn import default_image, edge_detector
from repro.paradigms.tln import linear_tline

from conftest import report


@pytest.fixture(scope="module")
def tline():
    return linear_tline()


@pytest.fixture(scope="module")
def cnn():
    return edge_detector(default_image(8))


@pytest.mark.benchmark(group="ablation-validator-tline")
def test_tline_milp(benchmark, tline):
    assert benchmark(repro.validate, tline, backend="milp").valid


@pytest.mark.benchmark(group="ablation-validator-tline")
def test_tline_flow(benchmark, tline):
    assert benchmark(repro.validate, tline, backend="flow").valid


@pytest.mark.benchmark(group="ablation-validator-cnn")
def test_cnn_milp(benchmark, cnn):
    benchmark.pedantic(repro.validate, args=(cnn,),
                       kwargs={"backend": "milp"}, rounds=3,
                       iterations=1)


@pytest.mark.benchmark(group="ablation-validator-cnn")
def test_cnn_flow(benchmark, cnn):
    benchmark.pedantic(repro.validate, args=(cnn,),
                       kwargs={"backend": "flow"}, rounds=3,
                       iterations=1)


def test_report_validator_ablation(tline, cnn):
    verdicts = {
        backend: (repro.validate(tline, backend=backend).valid,
                  repro.validate(cnn, backend=backend).valid)
        for backend in ("milp", "flow")
    }
    rows = ["design note: Alg. 2 solves `described` as an ILP; the "
            "max-flow backend is an exact reformulation",
            f"verdicts identical: {verdicts['milp'] == verdicts['flow']}"
            f" (milp={verdicts['milp']}, flow={verdicts['flow']})"]
    report("ablation_validator", rows)
    assert verdicts["milp"] == verdicts["flow"]
