"""Ensemble-engine benchmark runner: serial vs. batched wall time plus
trajectory-cache cold/warm reruns, the persistent zero-copy pool
backend, and streaming time-to-first-result.

Writes ``BENCH_ensemble.json`` at the repository root so future PRs
have a perf trajectory to regress against::

    PYTHONPATH=src python benchmarks/run_bench_ensemble.py

``--smoke`` shrinks the instance counts/grids for a fast CI check and
defaults its JSON to ``BENCH_ensemble_smoke.json`` so it never
overwrites the recorded full-size numbers; ``--out`` redirects the
JSON anywhere.

Workloads (both are the paper's mismatch studies):

* ``maxcut_64`` — 64 fabricated instances of the offset-afflicted
  4-cycle OBC max-cut solver (Table 1);
* ``tline_64``  — 64 Gm-mismatched instances of the Fig. 4 linear
  transmission line.

Each workload runs once through the legacy serial path (one scipy
solve per seed) and once through the batched engine (fused RHS +
dense-output rkf45), records the row-wise deviation between the two so
the speedup is never bought with silent inaccuracy, and then measures
the trajectory cache: a cold cached run (integrate + store) against a
warm rerun (key + load), asserting the rerun is bit-identical.

Two further sections (both gated on bit-identity, so they exit
non-zero instead of silently skewing):

* ``pool`` — the 64-instance t-line through the ``shard`` backend (a
  throwaway pool per solve, trajectories returned via pickle) against
  the persistent ``pool`` backend (workers spawned once, results via
  shared memory), cold and warm; records the pickle bytes the shm
  transport avoids and the warm-worker reuse win. ``cpu_count`` is
  recorded because on a single-core host neither pool can beat the
  single-process batch on wall clock — the numbers to read are
  warm-vs-cold and pool-vs-shard.
* ``scheduling`` — the adaptive scheduler on a deliberately skewed
  OBC workload (expensive rows contiguous at the head of one batch):
  even split vs cost-balanced split (cut from the profile the even
  run just learned) vs cost + ``overshard=4``, with per-group worker
  imbalance ratios. All three gated bit-identical; the >= 1.3x
  cost+overshard speedup additionally gates full-size runs on hosts
  with at least 4 CPUs.
* ``streaming`` — a two-structural-group t-line sweep through
  ``stream_ensemble``: time to the *first* finished group vs. the
  barriered total, with the assembled stream gated bit-identical to
  the barriered run.
* ``array_backend`` — the t-line sweep through the pluggable array
  layer: the explicit ``numpy:float64`` spec gated bit-identical to
  the default path, plus (when jax is installed) jax-CPU cold/warm
  timings showing ``jax.jit`` compile amortization; skips cleanly
  without jax.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]
                       / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import repro  # noqa: E402
from conftest import mismatch_maxcut_factory  # noqa: E402
from repro.core.compiler import compile_graph  # noqa: E402
from repro.paradigms.tln import TLineSpec, mismatched_tline  # noqa: E402
from repro.sim import (TrajectoryCache, assemble_chunks,  # noqa: E402
                       run_ensemble, stream_ensemble)
from repro.sim.pool import shutdown_pools  # noqa: E402


class TlineBenchFactory:
    """Module-level (picklable) t-line factory for the pool workers."""

    def __call__(self, seed):
        return mismatched_tline("gm", seed=seed)


class SkewedMaxcutFactory:
    """Deliberately cost-skewed OBC workload, one structural group.

    Every seed builds the same 12-oscillator offset-afflicted max-cut
    ring (identical structure, so the whole sweep is one batch), but
    the first quarter of seeds get a strong coupling — their networks
    keep evolving over the whole span — while the rest get a weak one
    and lock almost immediately, so under ``freeze_tol`` their rows
    freeze out of the RHS early (~4x cheaper per row). The expensive
    rows sit *contiguously at the head* of the batch: an even row
    split hands one worker all of them, which is exactly the imbalance
    the cost schedule and oversharding exist to fix."""

    N_VERTICES = 12
    SLOW_COUPLING = -1.0
    FAST_COUPLING = -0.02

    def __init__(self, n_seeds: int):
        self.n_slow = max(1, n_seeds // 4)

    def __call__(self, seed):
        import math

        from repro.paradigms.obc import maxcut_network

        n_v = self.N_VERTICES
        edges = [(i, (i + 1) % n_v) for i in range(n_v)]
        phases = np.random.default_rng(7).uniform(
            0.0, 2.0 * math.pi, n_v)
        coupling = (self.SLOW_COUPLING if seed < self.n_slow
                    else self.FAST_COUPLING)
        return maxcut_network(edges, n_v, initial_phases=phases,
                              edge_type="Cpl_ofs", seed=seed,
                              coupling=coupling)


class TwoGroupTlineFactory:
    """Two structural groups (alternating 9/10-segment lines) so the
    streaming executor has more than one chunk to deliver."""

    def __call__(self, seed):
        spec = TLineSpec(n_segments=9 if seed % 2 else 10)
        return mismatched_tline("gm", seed=seed, spec=spec)

DEFAULT_RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / \
    "BENCH_ensemble.json"


def workloads(n_instances: int, smoke: bool) -> dict:
    return {
        f"maxcut_{n_instances}": {
            "factory": mismatch_maxcut_factory(),
            "t_span": (0.0, 100e-9),
            "n_points": 30 if smoke else 60,
            "probe_node": "Osc_0",
        },
        f"tline_{n_instances}": {
            "factory": lambda seed: mismatched_tline("gm", seed=seed),
            "t_span": (0.0, 8e-8),
            "n_points": 100 if smoke else 300,
            "probe_node": "OUT_V",
        },
    }


def run_workload(name: str, spec: dict, n_instances: int) -> dict:
    seeds = range(n_instances)
    runs = {}
    timings = {}
    for engine in ("serial", "batch"):
        start = time.perf_counter()
        runs[engine] = repro.simulate_ensemble(
            spec["factory"], seeds=seeds, t_span=spec["t_span"],
            n_points=spec["n_points"], engine=engine)
        timings[engine] = time.perf_counter() - start
    node = spec["probe_node"]
    deviation = max(
        float(np.max(np.abs(a[node] - b[node])))
        for a, b in zip(runs["serial"], runs["batch"]))
    result = {
        "n_instances": n_instances,
        "t_span": list(spec["t_span"]),
        "n_points": spec["n_points"],
        "serial_seconds": round(timings["serial"], 4),
        "batched_seconds": round(timings["batch"], 4),
        "speedup": round(timings["serial"] / timings["batch"], 2),
        "probe_node": node,
        "max_abs_deviation": deviation,
    }
    result["cache"] = run_cache_scenario(spec, n_instances)
    print(f"[{name}] serial {result['serial_seconds']:.2f}s  "
          f"batched {result['batched_seconds']:.2f}s  "
          f"speedup {result['speedup']:.1f}x  "
          f"max|dev| {deviation:.2e}  "
          f"cache warm {result['cache']['warm_speedup']:.1f}x "
          f"(bit-identical: {result['cache']['bit_identical']})")
    return result


def run_cache_scenario(spec: dict, n_instances: int) -> dict:
    """The repeated-sweep pattern the cache targets: the ensemble is
    fabricated and compiled once (e.g. at the top of a
    readout-tolerance sweep), then re-integrated per sweep point. The
    cold run pays the integration and stores it; the warm rerun must be
    a pure key + load, bit-identical to the cold trajectories."""
    systems = {seed: compile_graph(spec["factory"](seed))
               for seed in range(n_instances)}
    factory = systems.__getitem__
    cache = TrajectoryCache()
    start = time.perf_counter()
    cold = run_ensemble(factory, range(n_instances), spec["t_span"],
                        n_points=spec["n_points"], cache=cache)
    cold_seconds = time.perf_counter() - start
    # Best-of-3: the warm rerun is a ~10ms key+load, well inside the
    # scheduler-jitter band of CI containers.
    warm_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        warm = run_ensemble(factory, range(n_instances),
                            spec["t_span"],
                            n_points=spec["n_points"], cache=cache)
        warm_seconds = min(warm_seconds,
                           time.perf_counter() - start)
    identical = (
        len(cold.batches) == len(warm.batches)
        and all(np.array_equal(a.y, b.y) and np.array_equal(a.t, b.t)
                for a, b in zip(cold.batches, warm.batches)))
    return {
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(cold_seconds / warm_seconds, 2),
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
        "bit_identical": bool(identical),
    }


def run_pool_scenario(n_instances: int, n_points: int) -> dict:
    """shard (throwaway pool + pickle returns) vs the persistent
    zero-copy pool on the t-line mismatch sweep, cold and warm. The
    two backends share the row split, so the rkf45 results must be
    bit-identical — the gate that keeps the comparison honest."""
    factory = TlineBenchFactory()
    span = (0.0, 8e-8)
    processes = min(4, max(2, os.cpu_count() or 1))
    kwargs = dict(n_points=n_points, processes=processes, shard_min=2)
    start = time.perf_counter()
    sharded = run_ensemble(factory, range(n_instances), span,
                           engine="shard", **kwargs)
    shard_seconds = time.perf_counter() - start
    shutdown_pools()  # measure a genuinely cold pool (worker spawn)
    start = time.perf_counter()
    cold = run_ensemble(factory, range(n_instances), span,
                        engine="pool", **kwargs)
    cold_seconds = time.perf_counter() - start
    # Warm: workers, payload caches, and compiled kernels are reused.
    warm_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        warm = run_ensemble(factory, range(n_instances), span,
                            engine="pool", **kwargs)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
    identical = bool(
        np.array_equal(sharded.batches[0].y, cold.batches[0].y)
        and np.array_equal(cold.batches[0].y, warm.batches[0].y))
    # What the shard backend pickles back through the pipe per solve —
    # the transport cost the shared-memory blocks eliminate.
    pickle_bytes = int(sum(batch.y.nbytes for batch in cold.batches))
    result = {
        "workload": f"tline_{n_instances}",
        "n_instances": n_instances,
        "n_points": n_points,
        "processes": processes,
        "cpu_count": os.cpu_count(),
        "shard_seconds": round(shard_seconds, 4),
        "pool_cold_seconds": round(cold_seconds, 4),
        "pool_warm_seconds": round(warm_seconds, 4),
        "pool_warm_speedup_vs_shard": round(
            shard_seconds / warm_seconds, 2),
        "pool_warm_speedup_vs_cold": round(
            cold_seconds / warm_seconds, 2),
        "pickle_bytes_avoided_per_solve": pickle_bytes,
        "bit_identical": identical,
    }
    print(f"[pool] shard {shard_seconds:.2f}s  pool cold "
          f"{cold_seconds:.2f}s  warm {warm_seconds:.2f}s  "
          f"(warm vs shard {result['pool_warm_speedup_vs_shard']:.1f}x"
          f", {pickle_bytes / 1e6:.1f} MB pickle avoided/solve, "
          f"identical={identical}, cpus: {os.cpu_count()})")
    return result


def run_array_backend_scenario(n_instances: int,
                               n_points: int) -> dict:
    """numpy vs jax-CPU on the t-line mismatch sweep through the
    array-backend layer. The numpy/float64 run must be bit-identical
    to the default path (that is the gate); jax timings are recorded
    cold (first solve pays `jax.jit` kernel compilation) and warm
    (compilation amortized across reruns — the number that matters
    for sweeps). When jax is not installed the section records
    ``jax_available: false`` and skips, never fails: the backend is an
    optional import by design."""
    factory = TlineBenchFactory()
    span = (0.0, 8e-8)
    kwargs = dict(n_points=n_points)
    start = time.perf_counter()
    default = run_ensemble(factory, range(n_instances), span, **kwargs)
    numpy_seconds = time.perf_counter() - start
    start = time.perf_counter()
    explicit = run_ensemble(factory, range(n_instances), span,
                            array_backend="numpy:float64", **kwargs)
    explicit_seconds = time.perf_counter() - start
    identical = bool(np.array_equal(default.batches[0].y,
                                    explicit.batches[0].y))
    result = {
        "workload": f"tline_{n_instances}",
        "n_instances": n_instances,
        "n_points": n_points,
        "numpy_seconds": round(numpy_seconds, 4),
        "numpy_explicit_seconds": round(explicit_seconds, 4),
        "bit_identical": identical,
        "note": "jax cold includes jax.jit kernel compilation; "
                "compile cost amortizes across reruns of the same "
                "structural group (warm is the sweep-relevant "
                "number). Host transfer happens once per solve at "
                "trajectory assembly.",
    }
    try:
        import jax  # noqa: F401
        jax_available = True
    except ImportError:
        jax_available = False
    result["jax_available"] = jax_available
    if jax_available:
        start = time.perf_counter()
        cold = run_ensemble(factory, range(n_instances), span,
                            array_backend="jax", **kwargs)
        cold_seconds = time.perf_counter() - start
        warm_seconds = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            warm = run_ensemble(factory, range(n_instances), span,
                                array_backend="jax", **kwargs)
            warm_seconds = min(warm_seconds,
                               time.perf_counter() - start)
        scale = float(np.max(np.abs(default.batches[0].y)))
        deviation = float(np.max(np.abs(
            warm.batches[0].y - default.batches[0].y)))
        result.update({
            "jax_cold_seconds": round(cold_seconds, 4),
            "jax_warm_seconds": round(warm_seconds, 4),
            "jax_compile_amortization": round(
                cold_seconds / warm_seconds, 2),
            "jax_max_rel_deviation": deviation / scale,
            "jax_within_tolerance": bool(deviation < 1e-9 * scale),
        })
        print(f"[array-backend] numpy {numpy_seconds:.2f}s  jax cold "
              f"{cold_seconds:.2f}s  warm {warm_seconds:.2f}s  "
              f"(identical={identical}, jax max rel dev "
              f"{deviation / scale:.1e})")
        cold = warm = None
    else:
        print(f"[array-backend] numpy {numpy_seconds:.2f}s  "
              f"(identical={identical}; jax not installed — section "
              f"skipped)")
    return result


def run_stream_scenario(n_instances: int, n_points: int) -> dict:
    """Time-to-first-result: the streaming executor hands the first
    structural group to analysis while the rest of the sweep is still
    integrating; the barriered run returns nothing until the end."""
    factory = TwoGroupTlineFactory()
    span = (0.0, 8e-8)
    seeds = list(range(n_instances))
    start = time.perf_counter()
    barrier = run_ensemble(factory, seeds, span, n_points=n_points)
    barrier_seconds = time.perf_counter() - start
    start = time.perf_counter()
    chunks = []
    first_seconds = None
    for chunk in stream_ensemble(factory, seeds, span,
                                 n_points=n_points):
        if first_seconds is None:
            first_seconds = time.perf_counter() - start
        chunks.append(chunk)
    stream_seconds = time.perf_counter() - start
    assembled = assemble_chunks(chunks, seeds)
    identical = (
        len(assembled.batches) == len(barrier.batches)
        and all(np.array_equal(a.y, b.y) for a, b in
                zip(assembled.batches, barrier.batches)))
    result = {
        "workload": f"tline_two_groups_{n_instances}",
        "n_instances": n_instances,
        "n_groups": len(chunks),
        "n_points": n_points,
        "barrier_seconds": round(barrier_seconds, 4),
        "stream_total_seconds": round(stream_seconds, 4),
        "time_to_first_result_seconds": round(first_seconds, 4),
        "first_result_fraction": round(
            first_seconds / stream_seconds, 3),
        "bit_identical": bool(identical),
    }
    print(f"[streaming] barrier {barrier_seconds:.2f}s  first chunk "
          f"at {first_seconds:.2f}s "
          f"({result['first_result_fraction'] * 100:.0f}% of the "
          f"streamed total, {len(chunks)} groups, "
          f"identical={identical})")
    return result


def run_scheduling_scenario(n_instances: int, smoke: bool) -> dict:
    """Even vs cost-balanced vs oversharded scheduling on the skewed
    OBC workload (see :class:`SkewedMaxcutFactory`).

    The even baseline runs with a cost profile attached: the split is
    still the historical even one, but the scheduler observes per-shard
    timings — so the baseline run *is* the learning run, and the cost
    run that follows cuts shards from a warm profile. All three
    configurations are gated bit-identical (rk4 row arithmetic is
    partition-independent); the >= 1.3x cost+overshard speedup is gated
    only on full-size runs with at least 4 CPUs — on smaller hosts the
    workers share cores and balancing cannot buy wall time, so the
    numbers are recorded but not judged.
    """
    import tempfile

    from repro.telemetry import RunReport

    factory = SkewedMaxcutFactory(n_instances)
    span = (0.0, 100e-9)
    processes = min(4, max(2, os.cpu_count() or 1))
    kwargs = dict(n_points=60, method="rk4", freeze_tol=50.0,
                  max_step=0.2e-9, engine="pool",
                  processes=processes, shard_min=2)
    baseline = run_ensemble(factory, range(n_instances), span,
                            **kwargs)  # warm the pool + kernel caches

    def timed(schedule, overshard, profile):
        best = float("inf")
        for _ in range(2):
            report = RunReport()
            start = time.perf_counter()
            result = run_ensemble(factory, range(n_instances), span,
                                  schedule=schedule,
                                  overshard=overshard,
                                  cost_profile=profile,
                                  telemetry=report, **kwargs)
            best = min(best, time.perf_counter() - start)
        ratios = report.gauges.get("sched.imbalance_ratio") or []
        identical = bool(np.array_equal(baseline.batches[0].y,
                                        result.batches[0].y))
        return {"seconds": round(best, 4),
                "imbalance_ratio": round(max(ratios), 3) if ratios
                else None,
                "bit_identical": identical}

    with tempfile.TemporaryDirectory() as tmp:
        profile = os.path.join(tmp, "cost_profile.json")
        even = timed("even", 1, profile)   # learns the profile
        cost = timed("cost", 1, profile)
        oversharded = timed("cost", 4, profile)
    speedup = round(even["seconds"] / oversharded["seconds"], 2)
    gate_speedup = not smoke and (os.cpu_count() or 1) >= 4
    result = {
        "workload": f"skewed_maxcut_{n_instances}",
        "n_instances": n_instances,
        "n_slow_rows": factory.n_slow,
        "processes": processes,
        "cpu_count": os.cpu_count(),
        "even": even,
        "cost": cost,
        "cost_overshard4": oversharded,
        "cost_overshard_speedup_vs_even": speedup,
        "speedup_gated": gate_speedup,
        "bit_identical": bool(even["bit_identical"]
                              and cost["bit_identical"]
                              and oversharded["bit_identical"]),
        "speedup_ok": bool(not gate_speedup or speedup >= 1.3),
    }
    print(f"[scheduling] even {even['seconds']:.2f}s (imbalance "
          f"{even['imbalance_ratio']})  cost {cost['seconds']:.2f}s  "
          f"cost+overshard4 {oversharded['seconds']:.2f}s  "
          f"speedup {speedup:.2f}x"
          f"{'' if gate_speedup else ' (not gated: small host/smoke)'}"
          f"  identical={result['bit_identical']}")
    return result


def run_telemetry_scenario(n_instances: int, n_points: int) -> dict:
    """Telemetry cost, both ways, on the t-line mismatch sweep.

    Enabled: a metered run must stay bit-identical to the plain run
    (the gate that keeps instrumentation honest) and its RunReport must
    carry non-zero solver counters. Disabled: the only residue at each
    hook site is one ContextVar check — priced directly as (per-op
    disabled cost x the op count an enabled run records) over the
    plain run's wall time, and asserted under 2%.
    """
    from repro import telemetry
    from repro.telemetry import RunReport, collect_metrics

    factory = TlineBenchFactory()
    span = (0.0, 8e-8)
    # Fresh caches so every run pays the full integration.
    plain_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        plain = run_ensemble(factory, range(n_instances), span,
                             n_points=n_points,
                             cache=TrajectoryCache())
        plain_seconds = min(plain_seconds,
                            time.perf_counter() - start)
    metered_seconds = float("inf")
    ops = 0
    for _ in range(3):
        report = RunReport()
        start = time.perf_counter()
        with collect_metrics(into=report):
            metered = run_ensemble(factory, range(n_instances), span,
                                   n_points=n_points,
                                   cache=TrajectoryCache())
            ops = telemetry.current().ops
        metered_seconds = min(metered_seconds,
                              time.perf_counter() - start)
    identical = bool(np.array_equal(plain.batches[0].y,
                                    metered.batches[0].y))
    # Disabled-path microbenchmark: telemetry.add outside any window is
    # the exact code every hook runs when collection is off.
    probes = 200_000
    start = time.perf_counter()
    for _ in range(probes):
        telemetry.add("bench.noop")
    per_op_seconds = (time.perf_counter() - start) / probes
    disabled_pct = 100.0 * per_op_seconds * ops / plain_seconds
    result = {
        "workload": f"tline_{n_instances}",
        "n_instances": n_instances,
        "n_points": n_points,
        "plain_seconds": round(plain_seconds, 4),
        "metered_seconds": round(metered_seconds, 4),
        "enabled_overhead_pct": round(
            100.0 * (metered_seconds - plain_seconds) / plain_seconds,
            2),
        "hook_ops_per_run": ops,
        "disabled_ns_per_op": round(per_op_seconds * 1e9, 1),
        "disabled_overhead_pct": round(disabled_pct, 4),
        "solver_nfev": int(report.counter("solver.nfev")),
        "bit_identical": identical,
    }
    print(f"[telemetry] plain {plain_seconds:.2f}s  metered "
          f"{metered_seconds:.2f}s  enabled overhead "
          f"{result['enabled_overhead_pct']:+.1f}%  disabled "
          f"{ops} ops x {result['disabled_ns_per_op']:.0f}ns = "
          f"{disabled_pct:.4f}% of wall  identical={identical}")
    return result


def append_history(payload: dict, history_path) -> None:
    """Leave one line per headline timing in the shared benchmark
    history (``repro bench check`` judges future runs against them).
    Workload names embed the size tag so smoke and full-size runs
    never share a baseline."""
    from repro.telemetry import RunReport, history

    tag = "smoke" if payload["smoke"] else "full"
    sha = history.git_sha()

    def record(workload, wall, **meta):
        report = RunReport(wall_seconds=float(wall),
                           meta={"driver": "bench.ensemble", **meta})
        history.append_entry(
            history_path, history.summarize(report, workload, sha=sha))

    for name, rec in payload["workloads"].items():
        record(f"ensemble.{name}.batched[{tag}]",
               rec["batched_seconds"], n_points=rec["n_points"])
    pool = payload["pool"]
    record(f"ensemble.pool.warm[{tag}]", pool["pool_warm_seconds"],
           processes=pool["processes"])
    sched = payload["scheduling"]
    record(f"ensemble.sched.cost_overshard[{tag}]",
           sched["cost_overshard4"]["seconds"],
           processes=sched["processes"],
           speedup_vs_even=sched["cost_overshard_speedup_vs_even"])
    stream = payload["streaming"]
    record(f"ensemble.stream.first[{tag}]",
           stream["time_to_first_result_seconds"],
           n_groups=stream["n_groups"])
    print(f"appended {3 + len(payload['workloads'])} history entries "
          f"to {history_path} (sha {sha})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny instance counts/grids for CI")
    parser.add_argument("--out", default=None,
                        help="result path (default: repo-root "
                        "BENCH_ensemble.json)")
    parser.add_argument("--history", default=None,
                        help="benchmark history JSONL to append "
                        "headline timings to (default: repo-root "
                        "benchmarks/history.jsonl; 'none' disables)")
    args = parser.parse_args(argv)
    n_instances = 8 if args.smoke else 64
    tline_points = 100 if args.smoke else 300
    payload = {
        "benchmark": "ensemble-engine serial vs batched "
                     "(fused RHS + dense output) + trajectory cache "
                     "+ persistent pool + streaming",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": args.smoke,
        "workloads": {
            name: run_workload(name, spec, n_instances)
            for name, spec in workloads(n_instances,
                                        args.smoke).items()},
        "pool": run_pool_scenario(n_instances, tline_points),
        "scheduling": run_scheduling_scenario(n_instances, args.smoke),
        "streaming": run_stream_scenario(n_instances, tline_points),
        "telemetry": run_telemetry_scenario(n_instances, tline_points),
        "array_backend": run_array_backend_scenario(n_instances,
                                                    tline_points),
    }
    failures = [name for name, record in payload["workloads"].items()
                if not record["cache"]["bit_identical"]]
    if not payload["pool"]["bit_identical"]:
        failures.append("pool-vs-shard")
    if not payload["scheduling"]["bit_identical"]:
        failures.append("scheduling-cost-vs-even")
    if not payload["scheduling"]["speedup_ok"]:
        failures.append("scheduling-overshard-speedup")
    if not payload["streaming"]["bit_identical"]:
        failures.append("streaming-vs-barrier")
    if not payload["telemetry"]["bit_identical"]:
        failures.append("telemetry-vs-plain")
    if payload["telemetry"]["disabled_overhead_pct"] >= 2.0:
        failures.append("telemetry-disabled-overhead")
    if not payload["array_backend"]["bit_identical"]:
        failures.append("array-backend-numpy-identity")
    if payload["array_backend"].get("jax_within_tolerance") is False:
        failures.append("array-backend-jax-tolerance")
    if args.out:
        result_path = pathlib.Path(args.out)
    elif args.smoke:
        # Never let a local smoke run overwrite the recorded
        # full-size perf trajectory.
        result_path = DEFAULT_RESULT_PATH.with_name(
            "BENCH_ensemble_smoke.json")
    else:
        result_path = DEFAULT_RESULT_PATH
    result_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {result_path}")
    if failures:
        print(f"NOT bit-identical: {failures}", file=sys.stderr)
        return 1
    # Only clean (bit-identical) runs earn a place in the baseline.
    if args.history != "none":
        history_path = args.history or (
            pathlib.Path(__file__).resolve().parent / "history.jsonl")
        append_history(payload, history_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
