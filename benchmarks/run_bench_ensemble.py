"""Ensemble-engine benchmark runner: serial vs. batched wall time.

Writes ``BENCH_ensemble.json`` at the repository root so future PRs
have a perf trajectory to regress against::

    PYTHONPATH=src python benchmarks/run_bench_ensemble.py

Workloads (both are the paper's mismatch studies):

* ``maxcut_64`` — 64 fabricated instances of the offset-afflicted
  4-cycle OBC max-cut solver (Table 1);
* ``tline_64``  — 64 Gm-mismatched instances of the Fig. 4 linear
  transmission line.

Each workload runs once through the legacy serial path (one scipy
solve per seed) and once through the batched engine (one vectorized
RHS for the whole ensemble), and records the row-wise deviation between
the two so the speedup is never bought with silent inaccuracy.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]
                       / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import repro  # noqa: E402
from conftest import mismatch_maxcut_factory  # noqa: E402
from repro.paradigms.tln import mismatched_tline  # noqa: E402

RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / \
    "BENCH_ensemble.json"
N_INSTANCES = 64


WORKLOADS = {
    "maxcut_64": {
        "factory": mismatch_maxcut_factory(),
        "t_span": (0.0, 100e-9),
        "n_points": 60,
        "probe_node": "Osc_0",
    },
    "tline_64": {
        "factory": lambda seed: mismatched_tline("gm", seed=seed),
        "t_span": (0.0, 8e-8),
        "n_points": 300,
        "probe_node": "OUT_V",
    },
}


def run_workload(name: str, spec: dict) -> dict:
    seeds = range(N_INSTANCES)
    runs = {}
    timings = {}
    for engine in ("serial", "batch"):
        start = time.perf_counter()
        runs[engine] = repro.simulate_ensemble(
            spec["factory"], seeds=seeds, t_span=spec["t_span"],
            n_points=spec["n_points"], engine=engine)
        timings[engine] = time.perf_counter() - start
    node = spec["probe_node"]
    deviation = max(
        float(np.max(np.abs(a[node] - b[node])))
        for a, b in zip(runs["serial"], runs["batch"]))
    result = {
        "n_instances": N_INSTANCES,
        "t_span": list(spec["t_span"]),
        "n_points": spec["n_points"],
        "serial_seconds": round(timings["serial"], 4),
        "batched_seconds": round(timings["batch"], 4),
        "speedup": round(timings["serial"] / timings["batch"], 2),
        "probe_node": node,
        "max_abs_deviation": deviation,
    }
    print(f"[{name}] serial {result['serial_seconds']:.2f}s  "
          f"batched {result['batched_seconds']:.2f}s  "
          f"speedup {result['speedup']:.1f}x  "
          f"max|dev| {deviation:.2e}")
    return result


def main() -> int:
    payload = {
        "benchmark": "ensemble-engine serial vs batched",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {name: run_workload(name, spec)
                      for name, spec in WORKLOADS.items()},
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
