"""Extension — placement onto the intercon-obc fabric: routing-cost
quality of the three placers over a population of random graphs, and the
cost of one placement + network materialization."""

import pytest

import repro
from repro.paradigms.obc import (place_greedy, place_kernighan_lin,
                                 place_random, placed_network,
                                 random_graphs)

from conftest import report

VERTICES = 10
GRAPHS = random_graphs(50, n_vertices=VERTICES, seed=11,
                       edge_probability=0.3)


@pytest.mark.benchmark(group="placement-solve")
def test_kernighan_lin_cost(benchmark):
    benchmark(place_kernighan_lin, GRAPHS[0], VERTICES, seed=0)


@pytest.mark.benchmark(group="placement-build")
def test_placed_network_build_cost(benchmark):
    placement = place_kernighan_lin(GRAPHS[0], VERTICES, seed=0)
    benchmark(placed_network, GRAPHS[0], placement)


def test_report_placement():
    totals = {"random": 0, "greedy": 0, "kernighan-lin": 0}
    for edges in GRAPHS:
        totals["random"] += place_random(
            edges, VERTICES, seed=1).coupling_cost
        totals["greedy"] += place_greedy(
            edges, VERTICES, seed=1).coupling_cost
        totals["kernighan-lin"] += place_kernighan_lin(
            edges, VERTICES, seed=1).coupling_cost
    rows = [f"mean routing cost over {len(GRAPHS)} random "
            f"{VERTICES}-vertex graphs (p=0.3):"]
    for name, total in totals.items():
        rows.append(f"  {name:14s}: {total / len(GRAPHS):7.1f}")
    rows.append("(greedy may merge groups; Kernighan-Lin keeps them "
                "balanced)")
    report("extension_placement", rows)
    assert totals["greedy"] <= totals["random"]
    assert totals["kernighan-lin"] <= totals["random"]

    # Spot-check legality of a materialized placement.
    placement = place_kernighan_lin(GRAPHS[0], VERTICES, seed=1)
    graph = placed_network(GRAPHS[0], placement)
    assert repro.validate(graph, backend="flow").valid
