"""Fig. 11 — the CNN edge detector under the four hardware variants:
correctness, convergence ordering, and simulation cost."""

import numpy as np
import pytest

import repro
from repro.paradigms.cnn import (default_image, edge_detector,
                                 expected_edges, run_cnn, sat, sat_ni)

from conftest import report

SIZE = 16
SEED = 3
VARIANTS = ("ideal", "bias_mismatch", "template_mismatch",
            "nonideal_sat")


@pytest.fixture(scope="module")
def image():
    return default_image(SIZE)


@pytest.fixture(scope="module")
def expected(image):
    return expected_edges(image)


@pytest.fixture(scope="module")
def runs(image, expected):
    results = {}
    for variant in VARIANTS:
        graph = edge_detector(image, variant, seed=SEED)
        results[variant] = run_cnn(graph, SIZE, SIZE, variant=variant,
                                   expected=expected)
    return results


@pytest.mark.benchmark(group="fig11-build")
def test_build_grid(benchmark, image):
    benchmark(edge_detector, image)


@pytest.mark.benchmark(group="fig11-compile")
def test_compile_grid(benchmark, image):
    graph = edge_detector(image)
    benchmark(repro.compile_graph, graph)


@pytest.mark.benchmark(group="fig11-simulate")
def test_simulate_ideal(benchmark, image):
    system = repro.compile_graph(edge_detector(image))
    benchmark.pedantic(repro.simulate, args=(system, (0.0, 10.0)),
                       kwargs={"n_points": 100}, rounds=3, iterations=1)


@pytest.mark.benchmark(group="fig11-activation")
def test_sat_kernel(benchmark):
    xs = np.linspace(-2, 2, 1000)
    benchmark(lambda: [sat(x) for x in xs])


@pytest.mark.benchmark(group="fig11-activation")
def test_sat_ni_kernel(benchmark):
    xs = np.linspace(-2, 2, 1000)
    benchmark(lambda: [sat_ni(x) for x in xs])


def test_report_fig11(runs):
    rows = ["paper Fig. 11c: A correct | B slower, correct | C wrong "
            "pixels | D faster, correct"]
    for label, variant in zip("ABCD", VARIANTS):
        run = runs[variant]
        converged = (f"{run.converged_at:.2f}" if run.converged
                     else "never")
        rows.append(f"measured {label} ({variant}): errors="
                    f"{run.errors} converged_at={converged}")
    report("fig11_cnn", rows)
    assert runs["ideal"].errors == 0
    assert runs["bias_mismatch"].errors == 0
    assert runs["bias_mismatch"].converged_at > \
        runs["ideal"].converged_at
    assert runs["template_mismatch"].errors > 0 or \
        not runs["template_mismatch"].converged
    assert runs["nonideal_sat"].errors == 0
    assert runs["nonideal_sat"].converged_at < \
        runs["ideal"].converged_at
