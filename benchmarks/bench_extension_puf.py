"""Extension — TLN PUF quality metrics over a fabricated-chip
population (the §2 design problem carried to its metrics), plus the cost
of one challenge-response evaluation."""

import numpy as np
import pytest

from repro.paradigms.tln import TLineSpec
from repro.puf import (PufDesign, evaluate_puf, reliability,
                       uniformity, uniqueness)

from conftest import report

CHIPS = 8
DESIGN = PufDesign(spec=TLineSpec(n_segments=16),
                   branch_positions=(4, 8, 12),
                   branch_lengths=(5, 8, 11))
CHALLENGE = "101"


@pytest.fixture(scope="module")
def population():
    return [evaluate_puf(DESIGN, CHALLENGE, seed=chip, n_bits=32)
            for chip in range(CHIPS)]


@pytest.mark.benchmark(group="puf-evaluate")
def test_challenge_response_cost(benchmark):
    benchmark.pedantic(evaluate_puf, args=(DESIGN, CHALLENGE, 0),
                       kwargs={"n_bits": 32}, rounds=3, iterations=1)


@pytest.mark.benchmark(group="puf-build")
def test_instance_build_cost(benchmark):
    benchmark(DESIGN.build, CHALLENGE, 0)


def test_report_puf(population):
    rng = np.random.default_rng(7)
    noisy = [evaluate_puf(DESIGN, CHALLENGE, seed=0, n_bits=32,
                          noise_sigma=2e-3, rng=rng)
             for _ in range(5)]
    control = PufDesign(spec=DESIGN.spec,
                        branch_positions=DESIGN.branch_positions,
                        branch_lengths=DESIGN.branch_lengths,
                        variant="ideal")
    clones = [evaluate_puf(control, CHALLENGE, seed=chip, n_bits=32)
              for chip in range(3)]
    rows = [
        f"{CHIPS}-chip Gm-mismatch population, challenge "
        f"{CHALLENGE!r}, 32-bit responses",
        f"uniqueness  = {uniqueness(population):.3f} (ideal 0.5)",
        f"uniformity  = "
        f"{float(np.mean([uniformity(r) for r in population])):.3f}"
        " (ideal 0.5)",
        f"reliability = {reliability(population[0], noisy):.3f}"
        " (ideal 1.0, 2e-3 V noise)",
        f"ideal-variant uniqueness = {uniqueness(clones):.3f}"
        " (no mismatch -> clones)",
    ]
    report("extension_puf", rows)
    assert uniqueness(population) > 0.05
    assert uniqueness(clones) == 0.0