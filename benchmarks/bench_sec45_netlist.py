"""§4.5 — empirical validation: random valid GmC-TLN dynamical graphs
synthesize to GmC netlists whose transient dynamics match within 1%
RMSE, plus the cost of synthesis and nodal-analysis simulation."""

import numpy as np
import pytest

import repro
from repro.circuits import (compare_dg_netlist, simulate_netlist,
                            synthesize_gmc)
from repro.paradigms.tln import TLineSpec, mismatched_tline

from conftest import report

POPULATION = 40  # paper: 1000; run_experiments.py uses the full count


def _random_instance(trial: int):
    rng = np.random.default_rng(trial)
    spec = TLineSpec(n_segments=int(rng.integers(4, 12)))
    kind = ("gm", "cint")[trial % 2]
    return mismatched_tline(kind, spec, seed=trial)


@pytest.fixture(scope="module")
def population_report():
    worst = 0.0
    means = []
    for trial in range(POPULATION):
        graph = _random_instance(trial)
        assert repro.validate(graph, backend="flow").valid
        comparison = compare_dg_netlist(graph, (0.0, 3e-8),
                                        n_points=150)
        worst = max(worst, comparison.worst)
        means.append(comparison.mean)
    return worst, float(np.mean(means))


@pytest.mark.benchmark(group="sec45-synthesize")
def test_synthesis_cost(benchmark):
    graph = _random_instance(1)
    netlist = benchmark(synthesize_gmc, graph)
    assert netlist.element_count()["capacitors"] > 0


@pytest.mark.benchmark(group="sec45-simulate")
def test_netlist_simulation_cost(benchmark):
    netlist = synthesize_gmc(_random_instance(1))
    benchmark(simulate_netlist, netlist, (0.0, 3e-8), 150)


@pytest.mark.benchmark(group="sec45-compare")
def test_comparison_cost(benchmark):
    graph = _random_instance(2)
    benchmark.pedantic(compare_dg_netlist, args=(graph, (0.0, 3e-8)),
                       kwargs={"n_points": 150}, rounds=3,
                       iterations=1)


def test_report_sec45(population_report):
    worst, mean = population_report
    rows = [
        "paper §4.5: 1000 random valid GmC-TLN DGs -> netlists;"
        " transient RMSE < 1%",
        f"measured ({POPULATION} instances): worst relative RMSE "
        f"{worst:.2e}, mean {mean:.2e} (bound 1e-2)",
    ]
    report("sec45_netlist", rows)
    assert worst < 0.01
