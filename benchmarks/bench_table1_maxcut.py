"""Table 1 — max-cut sync/solved probabilities for the ideal and
offset-afflicted OBC solvers at two readout tolerances, plus the
serial-vs-batched engine comparison on the mismatch ensemble the sweep
is built from."""

import math
import time

import pytest

from repro.paradigms.obc import (maxcut_experiment, maxcut_network,
                                 random_graphs, solve_maxcut)
import repro

from conftest import mismatch_maxcut_factory, report

TRIALS = 120  # paper: 1000; run_experiments.py uses the full count
TOLERANCES = (0.01 * math.pi, 0.1 * math.pi)
ENSEMBLE_BENCH = 32  # fabricated instances for the engine benchmarks
ENSEMBLE_T_END = 100e-9


@pytest.fixture(scope="module")
def graphs():
    return random_graphs(TRIALS, 4, seed=2024)


@pytest.fixture(scope="module")
def table(graphs):
    ideal = maxcut_experiment(graphs, 4, tolerances=TOLERANCES,
                              edge_type="Cpl")
    offset = maxcut_experiment(graphs, 4, tolerances=TOLERANCES,
                               edge_type="Cpl_ofs", mismatch_seeds=True)
    return ideal, offset


@pytest.mark.benchmark(group="table1-solve")
def test_single_instance_solve(benchmark, graphs):
    benchmark(solve_maxcut, graphs[0], 4, d=TOLERANCES, seed=0)


@pytest.mark.benchmark(group="table1-build")
def test_network_build(benchmark, graphs):
    benchmark(maxcut_network, graphs[0], 4)


@pytest.mark.benchmark(group="table1-compile")
def test_network_compile(benchmark, graphs):
    graph = maxcut_network(graphs[0], 4)
    benchmark(repro.compile_graph, graph)


@pytest.mark.benchmark(group="table1-ensemble")
def test_mismatch_ensemble_serial(benchmark):
    benchmark(repro.simulate_ensemble, mismatch_maxcut_factory(),
              seeds=range(ENSEMBLE_BENCH),
              t_span=(0.0, ENSEMBLE_T_END), n_points=60,
              engine="serial")


@pytest.mark.benchmark(group="table1-ensemble")
def test_mismatch_ensemble_batched(benchmark):
    benchmark(repro.simulate_ensemble, mismatch_maxcut_factory(),
              seeds=range(ENSEMBLE_BENCH),
              t_span=(0.0, ENSEMBLE_T_END), n_points=60,
              engine="batch")


def test_report_ensemble_speedup():
    factory = mismatch_maxcut_factory()
    timings = {}
    for engine in ("serial", "batch"):
        start = time.perf_counter()
        repro.simulate_ensemble(factory, seeds=range(ENSEMBLE_BENCH),
                                t_span=(0.0, ENSEMBLE_T_END),
                                n_points=60, engine=engine)
        timings[engine] = time.perf_counter() - start
    speedup = timings["serial"] / timings["batch"]
    report("table1_ensemble_engine", [
        f"{ENSEMBLE_BENCH}-instance Cpl_ofs mismatch ensemble, "
        f"t_end={ENSEMBLE_T_END:.0e}s",
        f"serial engine  {timings['serial']:.2f}s",
        f"batched engine {timings['batch']:.2f}s",
        f"speedup        {speedup:.1f}x",
    ])
    assert speedup > 1.0


def test_report_table1(table):
    ideal, offset = table
    paper = {
        (0.01, "obc"): (94.1, 94.1), (0.01, "ofs"): (54.1, 54.1),
        (0.10, "obc"): (94.2, 94.1), (0.10, "ofs"): (94.8, 94.6),
    }
    rows = [f"{TRIALS} random 4-vertex graphs (paper: 1000)",
            f"{'d':>8s} {'config':>8s} {'paper sync/slvd':>16s} "
            f"{'measured sync/slvd':>20s}"]
    for d in TOLERANCES:
        key = round(d / math.pi, 2)
        for config, sweeps in (("obc", ideal), ("ofs", offset)):
            p_sync, p_solved = paper[(key, config)]
            sweep = sweeps[d]
            rows.append(
                f"{key:>7.2f}p {config:>8s} "
                f"{p_sync:>7.1f}/{p_solved:<8.1f} "
                f"{sweep.sync_probability * 100:>9.1f}/"
                f"{sweep.solved_probability * 100:<10.1f}")
    report("table1_maxcut", rows)

    tight, loose = TOLERANCES
    assert ideal[tight].solved_probability > 0.8
    assert offset[tight].solved_probability < \
        ideal[tight].solved_probability
    assert offset[loose].solved_probability > \
        offset[tight].solved_probability
    assert offset[loose].solved_probability > 0.8
