"""Extension — the GPAC paradigm: accuracy of every analog-computer
program against its scipy reference, the integrator-leak ablation
(open-loop sine generator vs feedback-stabilized Van der Pol), and the
compile/simulate cost of the Lorenz program."""

import numpy as np
import pytest

import repro
from repro.paradigms.gpac import (harmonic_oscillator, leaky,
                                  limit_cycle_amplitude, lorenz,
                                  lorenz_reference, lotka_volterra,
                                  lotka_volterra_reference,
                                  oscillator_reference, van_der_pol,
                                  van_der_pol_reference)

from conftest import report

TIGHT = dict(rtol=1e-9, atol=1e-11)


@pytest.mark.benchmark(group="gpac-compile")
def test_lorenz_compile_cost(benchmark):
    graph = lorenz()
    benchmark(repro.compile_graph, graph)


@pytest.mark.benchmark(group="gpac-simulate")
def test_lorenz_simulate_cost(benchmark):
    system = repro.compile_graph(lorenz())
    benchmark.pedantic(repro.simulate, args=(system, (0.0, 5.0)),
                       kwargs=dict(n_points=201), rounds=3,
                       iterations=1)


def test_report_gpac_accuracy():
    rows = ["GPAC program vs independent scipy integration "
            "(max abs error):"]
    osc = repro.simulate(harmonic_oscillator(omega=2.0), (0, 8),
                         n_points=201, **TIGHT)
    rows.append(f"  sine generator : "
                f"{np.abs(osc['x'] - oscillator_reference(2.0, 1.0, osc.t)).max():.2e}")
    lv = repro.simulate(lotka_volterra(), (0, 20), n_points=201,
                        **TIGHT)
    lv_ref = lotka_volterra_reference(1.1, 0.4, 0.1, 0.4, 10, 10, lv.t)
    rows.append(f"  Lotka-Volterra : "
                f"{np.abs(lv['x'] - lv_ref[0]).max():.2e}")
    vdp = repro.simulate(van_der_pol(), (0, 20), n_points=401, **TIGHT)
    vdp_ref = van_der_pol_reference(1.0, 0.5, 0.0, vdp.t)
    rows.append(f"  Van der Pol    : "
                f"{np.abs(vdp['x'] - vdp_ref[0]).max():.2e}")
    lz = repro.simulate(lorenz(), (0, 2), n_points=201, rtol=1e-10,
                        atol=1e-12)
    lz_ref = lorenz_reference(10.0, 28.0, 8 / 3, 1, 1, 1, lz.t)
    rows.append(f"  Lorenz (t<=2)  : "
                f"{np.abs(lz['z'] - lz_ref[2]).max():.2e}")

    rows.append("integrator-leak ablation (t in [0, 40], amplitude "
                "after transient):")
    for leak in (0.0, 0.1, 0.2):
        osc_run = repro.simulate(harmonic_oscillator(types=leaky(leak)),
                                 (0, 40), n_points=801)
        vdp_run = repro.simulate(van_der_pol(types=leaky(leak)),
                                 (0, 40), n_points=801)
        rows.append(
            f"  leak={leak:.1f}: sine "
            f"{limit_cycle_amplitude(osc_run.t, osc_run['x']):6.3f}"
            f"   Van der Pol "
            f"{limit_cycle_amplitude(vdp_run.t, vdp_run['x']):6.3f}")
    report("extension_gpac", rows)
