"""Ablation — RHS backend: interpreted expression trees versus the
exec-compiled flat Python function, on one RHS evaluation and on a full
transient."""

import numpy as np
import pytest

import repro
from repro.paradigms.cnn import default_image, edge_detector
from repro.paradigms.tln import linear_tline

from conftest import report


@pytest.fixture(scope="module")
def tline_system():
    return repro.compile_graph(linear_tline())


@pytest.fixture(scope="module")
def cnn_system():
    return repro.compile_graph(edge_detector(default_image(12)))


@pytest.mark.benchmark(group="ablation-rhs-eval-tline")
def test_tline_eval_interpreter(benchmark, tline_system):
    rhs = tline_system.rhs("interpreter")
    y = np.zeros(tline_system.n_states)
    benchmark(rhs, 1e-8, y)


@pytest.mark.benchmark(group="ablation-rhs-eval-tline")
def test_tline_eval_codegen(benchmark, tline_system):
    rhs = tline_system.rhs("codegen")
    y = np.zeros(tline_system.n_states)
    benchmark(rhs, 1e-8, y)


@pytest.mark.benchmark(group="ablation-rhs-eval-cnn")
def test_cnn_eval_interpreter(benchmark, cnn_system):
    rhs = cnn_system.rhs("interpreter")
    y = np.zeros(cnn_system.n_states)
    benchmark(rhs, 0.5, y)


@pytest.mark.benchmark(group="ablation-rhs-eval-cnn")
def test_cnn_eval_codegen(benchmark, cnn_system):
    rhs = cnn_system.rhs("codegen")
    y = np.zeros(cnn_system.n_states)
    benchmark(rhs, 0.5, y)


@pytest.mark.benchmark(group="ablation-rhs-transient")
def test_tline_transient_interpreter(benchmark, tline_system):
    benchmark.pedantic(
        repro.simulate, args=(tline_system, (0.0, 2e-8)),
        kwargs={"n_points": 100, "backend": "interpreter"},
        rounds=3, iterations=1)


@pytest.mark.benchmark(group="ablation-rhs-transient")
def test_tline_transient_codegen(benchmark, tline_system):
    benchmark.pedantic(
        repro.simulate, args=(tline_system, (0.0, 2e-8)),
        kwargs={"n_points": 100, "backend": "codegen"},
        rounds=3, iterations=1)


def test_report_rhs_ablation(tline_system):
    y = np.linspace(-0.5, 0.5, tline_system.n_states)
    a = tline_system.rhs("interpreter")(1e-8, y)
    b = tline_system.rhs("codegen")(1e-8, y)
    rows = ["design note: the codegen backend inlines attributes as "
            "constants and states as y[i] reads",
            f"max |interpreter - codegen| on a random state: "
            f"{np.abs(a - b).max():.2e}"]
    report("ablation_rhs", rows)
    assert np.allclose(a, b)
