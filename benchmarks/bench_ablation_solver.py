"""Ablation — ODE method choice on the t-line workload (RK45 vs LSODA
vs Radau): accuracy is tied by tolerance, cost differs."""

import pytest

import repro
from repro.paradigms.tln import TLineSpec, linear_tline

from conftest import report

SPEC = TLineSpec(n_segments=16)
T_SPAN = (0.0, 4e-8)
METHODS = ("RK45", "LSODA", "Radau")


@pytest.fixture(scope="module")
def system():
    return repro.compile_graph(linear_tline(SPEC))


@pytest.mark.benchmark(group="ablation-solver")
@pytest.mark.parametrize("method", METHODS)
def test_solver(benchmark, system, method):
    benchmark.pedantic(
        repro.simulate, args=(system, T_SPAN),
        kwargs={"n_points": 200, "method": method},
        rounds=3, iterations=1)


def test_report_solver_ablation(system):
    finals = {}
    for method in METHODS:
        trajectory = repro.simulate(system, T_SPAN, n_points=200,
                                    method=method)
        finals[method] = trajectory.final("OUT_V")
    spread = max(finals.values()) - min(finals.values())
    rows = ["design note: all methods agree within tolerance on the "
            "t-line transient",
            *(f"{method}: OUT_V(t_end) = {value:+.6f}"
              for method, value in finals.items()),
            f"max disagreement: {spread:.2e}"]
    report("ablation_solver", rows)
    assert spread < 1e-3
