"""Extension — off-state switch parasitics (§4.3 off rules): the PUF's
challenge sensitivity vs the switch feedthrough fraction alpha, plus the
cost of building and simulating one parasitic instance."""

import numpy as np
import pytest

import repro
from repro.paradigms.tln import TLineSpec
from repro.puf import PufDesign, evaluate_puf
from repro.puf.metrics import hamming_fraction

from conftest import report

SPEC = TLineSpec(n_segments=10, pulse_width=4e-9)
EVAL = dict(n_bits=16, window=(8e-9, 4.5e-8), n_points=240)


def design(alpha: float) -> PufDesign:
    return PufDesign(spec=SPEC, branch_positions=(2, 6),
                     branch_lengths=(3, 5), switch_alpha=alpha)


@pytest.mark.benchmark(group="switches-build")
def test_parasitic_build_cost(benchmark):
    benchmark(design(0.3).build, 1, 4)


@pytest.mark.benchmark(group="switches-evaluate")
def test_parasitic_evaluate_cost(benchmark):
    benchmark.pedantic(evaluate_puf, args=(design(0.3), 1, 4),
                       kwargs=EVAL, rounds=3, iterations=1)


def test_report_isolation_sweep():
    rows = ["challenge bit-flip sensitivity vs switch feedthrough "
            "alpha (2-branch PUF, seed 4):"]
    previous = None
    for alpha in (0.0, 0.1, 0.3, 0.5, 0.7, 1.0):
        puf = design(alpha)
        responses = {c: evaluate_puf(puf, c, seed=4, **EVAL)
                     for c in range(4)}
        sensitivity = float(np.mean(
            [hamming_fraction(responses[a], responses[b])
             for a, b in ((0, 1), (0, 2), (3, 1), (3, 2))]))
        rows.append(f"  alpha={alpha:.1f}: sensitivity "
                    f"{sensitivity:.3f}")
        if previous is not None:
            assert sensitivity <= previous + 1e-9
        previous = sensitivity
    rows.append("(alpha=1 erases the challenge entirely -> switch "
                "isolation is a first-order PUF design requirement)")
    report("extension_switches", rows)
