"""Fig. 4 — t-line transients: pulse amplitudes, echo, observation
windows (a/b) and the Cint-vs-Gm mismatch ensembles (c/d)."""

import numpy as np
import pytest

import repro
from repro.analysis import observation_window, window_spread
from repro.paradigms.tln import (branched_tline, linear_tline,
                                 mismatched_tline)

from conftest import report

T_END = 8e-8
ENSEMBLE = 30  # paper: 100; run_experiments.py uses the full count


@pytest.fixture(scope="module")
def trajectories():
    linear = repro.simulate(linear_tline(), (0.0, T_END), n_points=600)
    branched = repro.simulate(branched_tline(), (0.0, T_END),
                              n_points=600)
    return linear, branched


@pytest.fixture(scope="module")
def ensembles():
    spreads = {}
    for kind in ("cint", "gm"):
        runs = repro.simulate_ensemble(
            lambda seed, kind=kind: mismatched_tline(kind, seed=seed),
            seeds=range(ENSEMBLE), t_span=(0.0, T_END), n_points=300)
        spreads[kind] = window_spread(runs, "OUT_V", (1e-8, 3e-8))
    return spreads


@pytest.mark.benchmark(group="fig4-simulate")
def test_simulate_linear_53(benchmark):
    graph = linear_tline()
    system = repro.compile_graph(graph)
    benchmark(repro.simulate, system, (0.0, T_END), 300)


@pytest.mark.benchmark(group="fig4-simulate")
def test_simulate_branched(benchmark):
    system = repro.compile_graph(branched_tline())
    benchmark(repro.simulate, system, (0.0, T_END), 300)


@pytest.mark.benchmark(group="fig4-compile")
def test_compile_linear_53(benchmark):
    graph = linear_tline()
    benchmark(repro.compile_graph, graph)


@pytest.mark.benchmark(group="fig4-mismatch")
def test_mismatched_instance_build(benchmark):
    benchmark(mismatched_tline, "gm", seed=1)


ENSEMBLE_BENCH = 16  # seeds for the engine comparison benchmarks


@pytest.mark.benchmark(group="fig4-ensemble")
def test_ensemble_serial(benchmark):
    benchmark(repro.simulate_ensemble,
              lambda seed: mismatched_tline("gm", seed=seed),
              seeds=range(ENSEMBLE_BENCH), t_span=(0.0, T_END),
              n_points=300, engine="serial")


@pytest.mark.benchmark(group="fig4-ensemble")
def test_ensemble_batched(benchmark):
    benchmark(repro.simulate_ensemble,
              lambda seed: mismatched_tline("gm", seed=seed),
              seeds=range(ENSEMBLE_BENCH), t_span=(0.0, T_END),
              n_points=300, engine="batch")


def test_report_fig4(trajectories, ensembles):
    linear, branched = trajectories
    lin_peak = linear["OUT_V"].max()
    brn = branched["OUT_V"]
    mask_main = (branched.t >= 1e-8) & (branched.t <= 3.5e-8)
    mask_echo = (branched.t >= 4e-8) & (branched.t <= 8e-8)
    w_lin = observation_window(linear, "OUT_V", threshold=0.1)
    w_brn = observation_window(branched, "OUT_V", threshold=0.1)
    rows = [
        "paper Fig. 4b: linear pulse ~0.5 inside 1e-8..3e-8 s",
        f"measured: linear peak {lin_peak:.3f}, window "
        f"[{w_lin[0]:.1e}, {w_lin[1]:.1e}]",
        "paper Fig. 4a: branched pulse ~0.3 plus echo in 4e-8..8e-8 s",
        f"measured: branched main {brn[mask_main].max():.3f}, echo "
        f"{np.abs(brn[mask_echo]).max():.3f}, window "
        f"[{w_brn[0]:.1e}, {w_brn[1]:.1e}]",
        "paper Figs. 4c/4d: Gm mismatch spreads much more than Cint",
        f"measured ({ENSEMBLE} chips): cint spread "
        f"{ensembles['cint']:.4f}, gm spread {ensembles['gm']:.4f} "
        f"(ratio {ensembles['gm'] / ensembles['cint']:.1f}x)",
    ]
    report("fig4_tline", rows)
    assert brn[mask_main].max() < lin_peak
    assert np.abs(brn[mask_echo]).max() > 0.05
    assert ensembles["gm"] > ensembles["cint"]
