"""Fig. 2 — validation verdicts for the branched, linear, and malformed
t-lines, and the cost of the Algorithm-2 validator on the 53-node
topologies."""

import pytest

import repro
from repro.paradigms.tln import branched_tline, linear_tline

from conftest import report


@pytest.fixture(scope="module")
def lines():
    linear = linear_tline()
    branched = branched_tline()
    malformed = linear_tline()
    malformed.add_edge("bad", "IN_V", "V_0", "E")  # V-V short circuit
    return {"linear": linear, "branched": branched,
            "malformed": malformed}


@pytest.mark.benchmark(group="fig2-validate")
def test_validate_linear_milp(benchmark, lines):
    result = benchmark(repro.validate, lines["linear"], backend="milp")
    assert result.valid


@pytest.mark.benchmark(group="fig2-validate")
def test_validate_branched_milp(benchmark, lines):
    result = benchmark(repro.validate, lines["branched"],
                       backend="milp")
    assert result.valid


@pytest.mark.benchmark(group="fig2-validate")
def test_validate_malformed_milp(benchmark, lines):
    result = benchmark(repro.validate, lines["malformed"],
                       backend="milp")
    assert not result.valid


def test_report_fig2(lines):
    rows = ["paper Fig. 2: (i) branched valid, (ii) linear valid,"
            " (iii) V-V malformed invalid"]
    for name, graph in lines.items():
        verdict = repro.validate(graph, backend="milp")
        rows.append(f"measured: {name:9s} valid={verdict.valid}")
    report("fig2_validation", rows)
    assert repro.validate(lines["malformed"]).valid is False
