"""Transient-noise engine benchmark: serial vs. batched SDE wall time.

Writes ``BENCH_noise.json`` at the repository root::

    PYTHONPATH=src python benchmarks/run_bench_noise.py

Workload: the PUF intra-chip reliability sweep — every (fabricated
chip, noise trial) pair of a transiently noisy PUF design is one SDE
integration. The serial path runs one batch-of-one solve per pair
(drift compiled once per chip); the batched path runs the whole
(chips x trials) outer product through :func:`repro.sim.
run_noisy_ensemble` — one vectorized RHS + diffusion per structural
group. Both consume identical per-(chip, trial) Wiener streams, so the
responses — and therefore the reliability numbers — agree bit for bit,
and the speedup is never bought with a different noise realization.

A second section records the OBC max-cut solution-quality-vs-noise
sweep, the workload-level artifact of the noisy engine.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]
                       / "src"))

from repro.core.compiler import compile_graph  # noqa: E402
from repro.paradigms.obc import maxcut_noise_sweep  # noqa: E402
from repro.paradigms.tln import TLineSpec  # noqa: E402
from repro.puf import PufDesign, reliability  # noqa: E402
from repro.puf.response import (DEFAULT_WINDOW,  # noqa: E402
                                _window_times, encode_response,
                                evaluate_puf_noisy)
from repro.sim import compile_batch, solve_sde  # noqa: E402

RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / \
    "BENCH_noise.json"

N_CHIPS = 8
N_TRIALS = 8
N_BITS = 32
N_POINTS = 400
CHALLENGE = 2
DESIGN = PufDesign(spec=TLineSpec(n_segments=10),
                   branch_positions=(3, 6), branch_lengths=(4, 6),
                   noise=1e-8)
T_END = DEFAULT_WINDOW[1] * 1.05


def serial_reliability() -> tuple[dict, float]:
    """One batch-of-one SDE solve per (chip, trial): the legacy shape
    a per-chip loop would take."""
    times = _window_times(DEFAULT_WINDOW, N_BITS)
    start = time.perf_counter()
    per_chip = []
    bits = np.empty((N_CHIPS, N_TRIALS, N_BITS), dtype=np.uint8)
    for chip in range(N_CHIPS):
        system = compile_graph(DESIGN.build(CHALLENGE, seed=chip))
        single = compile_batch([system])
        from repro.sim import solve_batch

        reference_run = solve_batch(single, (0.0, T_END),
                                    n_points=N_POINTS, method="rk4")
        reference = encode_response(
            reference_run.instance(0).sample("OUT_V", times))
        for trial in range(N_TRIALS):
            run = solve_sde(single, (0.0, T_END),
                            noise_seeds=[f"{chip}:{trial}"],
                            n_points=N_POINTS)
            bits[chip, trial] = encode_response(
                run.instance(0).sample("OUT_V", times))
        per_chip.append(reliability(reference, list(bits[chip])))
    elapsed = time.perf_counter() - start
    return {"per_chip": per_chip, "bits": bits}, elapsed


def batched_reliability() -> tuple[dict, float]:
    start = time.perf_counter()
    references, trial_bits = evaluate_puf_noisy(
        DESIGN, CHALLENGE, seeds=range(N_CHIPS), trials=N_TRIALS,
        n_bits=N_BITS, n_points=N_POINTS)
    per_chip = [reliability(references[chip], list(trial_bits[chip]))
                for chip in range(N_CHIPS)]
    elapsed = time.perf_counter() - start
    return {"per_chip": per_chip, "bits": trial_bits}, elapsed


def bench_puf() -> dict:
    serial, serial_seconds = serial_reliability()
    batched, batched_seconds = batched_reliability()
    identical = bool(np.array_equal(serial["bits"], batched["bits"]))
    result = {
        "n_chips": N_CHIPS,
        "n_trials": N_TRIALS,
        "n_bits": N_BITS,
        "n_points": N_POINTS,
        "noise_amplitude": DESIGN.noise,
        "serial_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(serial_seconds / batched_seconds, 2),
        "responses_identical": identical,
        "mean_reliability": round(float(np.mean(batched["per_chip"])),
                                  4),
        "worst_reliability": round(float(np.min(batched["per_chip"])),
                                   4),
    }
    print(f"[puf_reliability] serial {serial_seconds:.2f}s  batched "
          f"{batched_seconds:.2f}s  speedup {result['speedup']:.1f}x  "
          f"identical={identical}  mean rel "
          f"{result['mean_reliability']:.3f}")
    return result


def bench_obc() -> dict:
    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    sigmas = [0.0, 5e3, 2e4, 6e4]
    start = time.perf_counter()
    points = maxcut_noise_sweep(edges, 4, sigmas, trials=16, seed=1)
    elapsed = time.perf_counter() - start
    rows = [{
        "noise_sigma": point.noise_sigma,
        "sync_probability": round(point.sync_probability, 3),
        "solved_probability": round(point.solved_probability, 3),
        "mean_cut_ratio": round(point.mean_cut_ratio, 3),
    } for point in points]
    print(f"[obc_noise_sweep] {len(sigmas)} amplitudes x 16 trials in "
          f"{elapsed:.2f}s  sync " +
          " ".join(f"{row['sync_probability']:.2f}" for row in rows))
    return {"edges": "4-cycle", "trials": 16,
            "seconds": round(elapsed, 4), "points": rows}


def main() -> int:
    payload = {
        "benchmark": "transient-noise (SDE) engine: serial vs batched",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "puf_reliability": bench_puf(),
        "obc_noise_sweep": bench_obc(),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
