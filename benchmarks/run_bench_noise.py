"""Transient-noise engine benchmark: serial vs. batched vs. sharded SDE
wall time, plus per-instance step-mask savings.

Writes ``BENCH_noise.json`` at the repository root::

    PYTHONPATH=src python benchmarks/run_bench_noise.py

``--smoke`` shrinks the sweep sizes for a fast CI check and defaults
its JSON to ``BENCH_noise_smoke.json`` so it never overwrites the
recorded full-size numbers; ``--out`` redirects the JSON anywhere.

Sections:

* ``puf_reliability`` — the PUF intra-chip reliability sweep: every
  (fabricated chip, noise trial) pair of a transiently noisy PUF design
  is one SDE integration. The serial path runs one batch-of-one solve
  per pair (drift compiled once per chip); the batched path runs the
  whole (chips x trials) outer product through the unified plan driver
  — one vectorized RHS + diffusion per structural group. Both consume
  identical per-(chip, trial) Wiener streams, so the responses — and
  therefore the reliability numbers — agree bit for bit, and the
  speedup is never bought with a different noise realization.
* ``sharded_sde`` — the same (chips x trials) sweep through the
  ``shard`` backend: per-core sub-batches, bit-identical to both the
  batched and the serial single-process baselines (Wiener streams are
  keyed per (seed, element, path), never by batch layout). The
  recorded ``cpu_count`` qualifies the wall-clock numbers: on a
  single-core runner the pool only adds spawn overhead, and the
  speedup to read is sharded-vs-*serial* (the PR 2 single-process
  baseline).
* ``step_mask`` — per-instance freeze masks on the stiff OBC max-cut
  ensemble (SHIL binarization puts the Jacobian at ~5e9 rad/s): once
  an oscillator network locks, its instance freezes out of rkf45 error
  control, so settled instances stop forcing worst-case steps and the
  run finishes early. Reports wall time and RHS-evaluation savings
  plus the masked-vs-unmasked deviation.
* ``obc_noise_sweep`` — the OBC max-cut solution-quality-vs-noise
  sweep, the workload-level artifact of the noisy engine.
* ``adaptive_sde`` — the adaptive embedded-pair controller
  (``heun-adaptive``) against the best fixed-step ladder on the stiff
  noisy OBC ensemble. Every run draws its noise from the *same*
  Brownian-bridge lattice (the fixed-step comparator is the adaptive
  machinery pinned to one uniform level via ``max_step`` with the
  tolerance test disabled), so pathwise RMS against a 16x-finer
  reference is meaningful: all integrators see one Wiener realization
  at different resolutions. The headline is ``nfev_ratio`` — drift
  evaluations of the cheapest fixed level that matches the adaptive
  run's accuracy, over the adaptive run's own; the full-size run
  gates on ``>= 2``.
* ``correlated_noise`` — ``PufDesign(shared_supply=True)``: every
  diffusion term of each chip aliased onto one shared "supply" Wiener
  path (:func:`repro.core.noise.share_wiener`), against the default
  independent per-segment thermal sources at the same amplitude —
  the common-mode-rejection story of the differential response
  encoding, measured as intra-chip reliability.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]
                       / "src"))

from repro.core.compiler import compile_graph  # noqa: E402
from repro.paradigms.obc import maxcut_noise_sweep  # noqa: E402
from repro.paradigms.obc.noisy import MaxcutTrialFactory  # noqa: E402
from repro.paradigms.tln import TLineSpec  # noqa: E402
from repro.puf import ChipFactory, PufDesign, reliability  # noqa: E402
from repro.puf.response import (DEFAULT_WINDOW,  # noqa: E402
                                _window_times, encode_response,
                                evaluate_puf_noisy)
from repro.sim import (compile_batch, run_ensemble,  # noqa: E402
                       solve_batch, solve_sde)
from repro.sim.pool import shutdown_pools  # noqa: E402

DEFAULT_RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / \
    "BENCH_noise.json"
SMOKE_RESULT_PATH = pathlib.Path(__file__).resolve().parents[1] / \
    "BENCH_noise_smoke.json"

N_BITS = 32
CHALLENGE = 2
DESIGN = PufDesign(spec=TLineSpec(n_segments=10),
                   branch_positions=(3, 6), branch_lengths=(4, 6),
                   noise=1e-8)
T_END = DEFAULT_WINDOW[1] * 1.05


def serial_reliability(n_chips, n_trials, n_points):
    """One batch-of-one SDE solve per (chip, trial): the legacy shape
    a per-chip loop would take — the PR 2 single-process baseline."""
    times = _window_times(DEFAULT_WINDOW, N_BITS)
    start = time.perf_counter()
    per_chip = []
    bits = np.empty((n_chips, n_trials, N_BITS), dtype=np.uint8)
    for chip in range(n_chips):
        system = compile_graph(DESIGN.build(CHALLENGE, seed=chip))
        single = compile_batch([system])
        reference_run = solve_batch(single, (0.0, T_END),
                                    n_points=n_points, method="rk4")
        reference = encode_response(
            reference_run.instance(0).sample("OUT_V", times))
        for trial in range(n_trials):
            run = solve_sde(single, (0.0, T_END),
                            noise_seeds=[f"{chip}:{trial}"],
                            n_points=n_points)
            bits[chip, trial] = encode_response(
                run.instance(0).sample("OUT_V", times))
        per_chip.append(reliability(reference, list(bits[chip])))
    elapsed = time.perf_counter() - start
    return {"per_chip": per_chip, "bits": bits}, elapsed


def batched_reliability(n_chips, n_trials, n_points):
    start = time.perf_counter()
    references, trial_bits = evaluate_puf_noisy(
        DESIGN, CHALLENGE, seeds=range(n_chips), trials=n_trials,
        n_bits=N_BITS, n_points=n_points)
    per_chip = [reliability(references[chip], list(trial_bits[chip]))
                for chip in range(n_chips)]
    elapsed = time.perf_counter() - start
    return {"per_chip": per_chip, "bits": trial_bits}, elapsed


def bench_puf(n_chips, n_trials, n_points) -> dict:
    serial, serial_seconds = serial_reliability(n_chips, n_trials,
                                                n_points)
    batched, batched_seconds = batched_reliability(n_chips, n_trials,
                                                   n_points)
    identical = bool(np.array_equal(serial["bits"], batched["bits"]))
    result = {
        "n_chips": n_chips,
        "n_trials": n_trials,
        "n_bits": N_BITS,
        "n_points": n_points,
        "noise_amplitude": DESIGN.noise,
        "serial_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(serial_seconds / batched_seconds, 2),
        "responses_identical": identical,
        "mean_reliability": round(float(np.mean(batched["per_chip"])),
                                  4),
        "worst_reliability": round(float(np.min(batched["per_chip"])),
                                   4),
    }
    print(f"[puf_reliability] serial {serial_seconds:.2f}s  batched "
          f"{batched_seconds:.2f}s  speedup {result['speedup']:.1f}x  "
          f"identical={identical}  mean rel "
          f"{result['mean_reliability']:.3f}")
    return result


def bench_sharded_sde(n_chips, n_trials, n_points,
                      serial_seconds) -> dict:
    """The (chips x trials) sweep through the shard backend — per-core
    sub-batches, bit-identical to the unsharded solve. ``processes``
    is capped by the host; ``cpu_count`` is recorded because on a
    single-core runner the pool can only add overhead and the number
    to read is the speedup over the serial per-pair baseline."""
    factory = ChipFactory(DESIGN, CHALLENGE)
    span = (0.0, T_END)
    kwargs = dict(trials=n_trials, n_points=n_points, reference=False)
    start = time.perf_counter()
    unsharded = run_ensemble(factory, range(n_chips), span, **kwargs)
    unsharded_seconds = time.perf_counter() - start
    processes = min(4, max(2, os.cpu_count() or 1))
    start = time.perf_counter()
    sharded = run_ensemble(factory, range(n_chips), span,
                           engine="shard", processes=processes,
                           shard_min=n_chips * n_trials, **kwargs)
    sharded_seconds = time.perf_counter() - start
    # The persistent zero-copy pool on the same (chips x trials)
    # split: cold (spawns workers) and warm (reuses them + the
    # per-worker payload/kernel caches); results return via shared
    # memory instead of pickle.
    shutdown_pools()
    start = time.perf_counter()
    pool_cold = run_ensemble(factory, range(n_chips), span,
                             engine="pool", processes=processes,
                             **kwargs)
    pool_cold_seconds = time.perf_counter() - start
    pool_warm_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        pool_warm = run_ensemble(factory, range(n_chips), span,
                                 engine="pool", processes=processes,
                                 **kwargs)
        pool_warm_seconds = min(pool_warm_seconds,
                                time.perf_counter() - start)
    identical = bool(np.array_equal(unsharded.batches[0].y,
                                    sharded.batches[0].y))
    # One extra metered pool run (outside the timed loop, so the
    # wall-clock numbers stay clean): its RunReport documents what the
    # sweep actually did — shm transport, shard split, per-worker load.
    from repro.telemetry import RunReport, collect_metrics

    tele_report = RunReport()
    with collect_metrics(into=tele_report,
                         meta={"driver": "bench_sharded_sde"}):
        pool_metered = run_ensemble(factory, range(n_chips), span,
                                    engine="pool",
                                    processes=processes, **kwargs)
    pool_identical = bool(
        np.array_equal(sharded.batches[0].y, pool_cold.batches[0].y)
        and np.array_equal(pool_cold.batches[0].y,
                           pool_warm.batches[0].y)
        and np.array_equal(pool_warm.batches[0].y,
                           pool_metered.batches[0].y))
    # Adaptive scheduling on the SDE path: both SDE methods are
    # fixed-step with per-(seed, element, path) Wiener streams, so a
    # cost-balanced oversharded split must replay the identical
    # realizations — the bit-identity gate that keeps the scheduler
    # honest on stochastic workloads too.
    start = time.perf_counter()
    scheduled = run_ensemble(factory, range(n_chips), span,
                             engine="pool", processes=processes,
                             schedule="cost", overshard=4, **kwargs)
    scheduled_seconds = time.perf_counter() - start
    sched_identical = bool(np.array_equal(pool_warm.batches[0].y,
                                          scheduled.batches[0].y))
    result = {
        "n_chips": n_chips,
        "n_trials": n_trials,
        "n_points": n_points,
        "processes": processes,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 4),
        "batched_seconds": round(unsharded_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "sharded_speedup_vs_serial": round(
            serial_seconds / sharded_seconds, 2),
        "sharded_speedup_vs_batched": round(
            unsharded_seconds / sharded_seconds, 2),
        "bit_identical": identical,
        "pool_cold_seconds": round(pool_cold_seconds, 4),
        "pool_warm_seconds": round(pool_warm_seconds, 4),
        "pool_warm_speedup_vs_shard": round(
            sharded_seconds / pool_warm_seconds, 2),
        "pool_warm_speedup_vs_serial": round(
            serial_seconds / pool_warm_seconds, 2),
        "pickle_bytes_avoided_per_solve": int(
            sum(batch.y.nbytes for batch in pool_cold.batches)),
        "pool_bit_identical": pool_identical,
        "scheduling": {
            "schedule": "cost",
            "overshard": 4,
            "seconds": round(scheduled_seconds, 4),
            "bit_identical": sched_identical,
        },
        "telemetry": {
            "solver_nfev": int(tele_report.counter("solver.nfev")),
            "pool_shards": int(tele_report.counter("pool.shards")),
            "shm_bytes_transferred": int(
                tele_report.counter("pool.shm_bytes_transferred")),
            "queue_wait_seconds": round(float(
                tele_report.counter("pool.queue_wait_seconds")), 4),
            "worker_busy_seconds": round(float(
                tele_report.counter("pool.worker_busy_seconds")), 4),
            "workers": {
                name: {key: (round(value, 4)
                             if isinstance(value, float) else value)
                       for key, value in block.items()}
                for name, block in tele_report.workers.items()},
        },
    }
    print(f"[sharded_sde] batched {unsharded_seconds:.2f}s  sharded "
          f"(p={processes}) {sharded_seconds:.2f}s  pool cold/warm "
          f"{pool_cold_seconds:.2f}/{pool_warm_seconds:.2f}s  "
          f"vs-serial {result['sharded_speedup_vs_serial']:.1f}x  "
          f"pool-warm-vs-shard "
          f"{result['pool_warm_speedup_vs_shard']:.1f}x  "
          f"identical={identical}/{pool_identical}  "
          f"(cpus: {os.cpu_count()})")
    return result


def bench_step_mask(n_instances, n_points) -> dict:
    """Per-instance freeze masks on the stiff deterministic OBC
    ensemble: rkf45 with masked error control vs. the full solve."""
    edges = ((0, 1), (1, 2), (2, 3), (3, 0))
    rng = np.random.default_rng(1)
    initials = tuple(tuple(row) for row in
                     rng.uniform(0.0, 2.0 * np.pi, (n_instances, 4)))
    factory = MaxcutTrialFactory(edges, 4, initials, 0.0)
    systems = [compile_graph(factory(k)) for k in range(n_instances)]
    batch = compile_batch(systems)
    span = (0.0, 200e-9)
    start = time.perf_counter()
    full = solve_batch(batch, span, n_points=n_points)
    full_seconds = time.perf_counter() - start
    start = time.perf_counter()
    masked = solve_batch(batch, span, n_points=n_points,
                         freeze_tol=1e2)
    masked_seconds = time.perf_counter() - start
    deviation = float(np.abs(full.y - masked.y).max())
    result = {
        "workload": "obc_maxcut_4cycle (SHIL Jacobian ~5e9 rad/s)",
        "n_instances": n_instances,
        "n_points": n_points,
        "freeze_tol": 1e2,
        "full_seconds": round(full_seconds, 4),
        "masked_seconds": round(masked_seconds, 4),
        "speedup": round(full_seconds / masked_seconds, 2),
        "full_nfev": full.nfev,
        "masked_nfev": masked.nfev,
        "nfev_savings": round(1.0 - masked.nfev / full.nfev, 3),
        "frozen_instances": int(masked.frozen.sum()),
        "max_abs_deviation": deviation,
    }
    print(f"[step_mask] full {full_seconds:.2f}s/{full.nfev} evals  "
          f"masked {masked_seconds:.2f}s/{masked.nfev} evals  "
          f"({result['nfev_savings'] * 100:.0f}% fewer evals, "
          f"{result['frozen_instances']}/{n_instances} frozen, "
          f"max|dev| {deviation:.1e})")
    return result


ADAPTIVE_SIGMA = 10.0
ADAPTIVE_RTOL, ADAPTIVE_ATOL = 3e-2, 3e-4


def bench_adaptive_sde(smoke: bool) -> dict:
    """Adaptive vs. best-fixed-step drift evals at matched accuracy.

    The SHIL binarization term (``-1e9*sin(2*theta)``) makes the lock
    transient stiff: a fixed ladder must carry the transient's step
    everywhere, while the controller relaxes to the stability bound
    once every oscillator locks. All runs share one Brownian-bridge
    realization, so the RMS against the ``ref_level`` solve is a
    pathwise trajectory error, not a distributional one.
    """
    t_end = 200e-9 if smoke else 400e-9
    n_points = 79 if smoke else 157
    n_trials = 2 if smoke else 4
    levels = list(range(3, 6)) if smoke else list(range(3, 7))
    ref_level = 8 if smoke else 10
    rng = np.random.default_rng(1)
    initials = tuple(tuple(row) for row in
                     rng.uniform(0.0, 2.0 * np.pi, (n_trials, 4)))
    factory = MaxcutTrialFactory(((0, 1), (1, 2), (2, 3), (3, 0)), 4,
                                 initials, ADAPTIVE_SIGMA)
    batch = compile_batch([compile_graph(factory(k))
                           for k in range(n_trials)])
    tokens = [f"1:{k}" for k in range(n_trials)]
    span = (0.0, t_end)
    dt_out = t_end / (n_points - 1)

    def fixed(level):
        # Uniform level-`level` stepping on the same bridge lattice:
        # max_step pins the floor, the huge tolerances disable the
        # error test, and grow never passes level_min — i.e. a
        # fixed-step stochastic-Heun solve that is pathwise
        # comparable to every other run here.
        start = time.perf_counter()
        run = solve_sde(batch, span, noise_seeds=tokens,
                        n_points=n_points, method="heun-adaptive",
                        rtol=1e9, atol=1e9,
                        max_step=dt_out / 2 ** level)
        return run, time.perf_counter() - start

    reference, _ = fixed(ref_level)

    def rms(run):
        return float(np.sqrt(np.mean((run.y - reference.y) ** 2)))

    ladder = []
    for level in levels:
        run, seconds = fixed(level)
        ladder.append({"level": level,
                       "h": dt_out / 2 ** level,
                       "nfev": run.nfev,
                       "rms": rms(run),
                       "seconds": round(seconds, 4)})

    from repro.telemetry import RunReport, collect_metrics

    report = RunReport()
    start = time.perf_counter()
    with collect_metrics(into=report,
                         meta={"driver": "bench_adaptive_sde"}):
        adaptive = solve_sde(batch, span, noise_seeds=tokens,
                             n_points=n_points,
                             method="heun-adaptive",
                             rtol=ADAPTIVE_RTOL, atol=ADAPTIVE_ATOL)
    adaptive_seconds = time.perf_counter() - start
    adaptive_rms = rms(adaptive)
    # Cheapest fixed level at least as accurate as the adaptive run;
    # if none qualifies the comparison falls back to the finest rung
    # (and the ratio gate below will catch the regression).
    matched = [row for row in ladder if row["rms"] <= adaptive_rms]
    matched = min(matched, key=lambda row: row["nfev"])         if matched else ladder[-1]
    ratio = matched["nfev"] / adaptive.nfev
    result = {
        "workload": "obc_maxcut_4cycle (SHIL Jacobian ~4e9 rad/s)",
        "n_trials": n_trials,
        "n_points": n_points,
        "t_end": t_end,
        "noise_sigma": ADAPTIVE_SIGMA,
        "rtol": ADAPTIVE_RTOL,
        "atol": ADAPTIVE_ATOL,
        "reference_level": ref_level,
        "fixed_ladder": ladder,
        "adaptive": {
            "nfev": adaptive.nfev,
            "rms": adaptive_rms,
            "seconds": round(adaptive_seconds, 4),
            "steps_accepted": int(
                report.counter("solver.steps_accepted")),
            "steps_rejected": int(
                report.counter("solver.steps_rejected")),
        },
        "matched_fixed_level": matched["level"],
        "matched_fixed_nfev": matched["nfev"],
        "nfev_ratio": round(ratio, 2),
        "meets_2x": bool(ratio >= 2.0),
    }
    print(f"[adaptive_sde] adaptive nfev={adaptive.nfev} "
          f"rms={adaptive_rms:.2e}  matched fixed L="
          f"{matched['level']} nfev={matched['nfev']} "
          f"rms={matched['rms']:.2e}  ratio "
          f"{ratio:.1f}x  (gate >= 2x on full runs)")
    return result


def bench_correlated_noise(n_chips, n_trials, n_points) -> dict:
    """Shared-supply ripple vs. independent thermal noise, same
    amplitude: the differential response encoding should reject the
    common-mode disturbance far better, and the reliability gap
    measures exactly that."""
    from repro.puf import puf_reliability

    shared_design = PufDesign(spec=DESIGN.spec,
                              branch_positions=DESIGN.branch_positions,
                              branch_lengths=DESIGN.branch_lengths,
                              noise=DESIGN.noise, shared_supply=True)
    start = time.perf_counter()
    shared = puf_reliability(shared_design, CHALLENGE,
                             range(n_chips), trials=n_trials,
                             n_bits=N_BITS, n_points=n_points)
    shared_seconds = time.perf_counter() - start
    start = time.perf_counter()
    independent = puf_reliability(DESIGN, CHALLENGE, range(n_chips),
                                  trials=n_trials, n_bits=N_BITS,
                                  n_points=n_points)
    independent_seconds = time.perf_counter() - start
    result = {
        "n_chips": n_chips,
        "n_trials": n_trials,
        "n_points": n_points,
        "noise_amplitude": DESIGN.noise,
        "shared_seconds": round(shared_seconds, 4),
        "independent_seconds": round(independent_seconds, 4),
        "shared_mean_reliability": round(float(shared.mean), 4),
        "independent_mean_reliability": round(
            float(independent.mean), 4),
    }
    print(f"[correlated_noise] shared-supply rel "
          f"{result['shared_mean_reliability']:.3f} "
          f"({shared_seconds:.2f}s)  independent rel "
          f"{result['independent_mean_reliability']:.3f} "
          f"({independent_seconds:.2f}s)")
    return result


def bench_obc(trials, sigmas) -> dict:
    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    start = time.perf_counter()
    points = maxcut_noise_sweep(edges, 4, sigmas, trials=trials,
                                seed=1)
    elapsed = time.perf_counter() - start
    rows = [{
        "noise_sigma": point.noise_sigma,
        "sync_probability": round(point.sync_probability, 3),
        "solved_probability": round(point.solved_probability, 3),
        "mean_cut_ratio": round(point.mean_cut_ratio, 3),
    } for point in points]
    print(f"[obc_noise_sweep] {len(sigmas)} amplitudes x {trials} "
          f"trials in {elapsed:.2f}s  sync " +
          " ".join(f"{row['sync_probability']:.2f}" for row in rows))
    return {"edges": "4-cycle", "trials": trials,
            "seconds": round(elapsed, 4), "points": rows}


def append_history(payload: dict, history_path) -> None:
    """One history line per headline timing (see
    ``repro bench check``); the size tag keeps smoke and full-size
    baselines apart."""
    from repro.telemetry import RunReport, history

    tag = "smoke" if payload["smoke"] else "full"
    sha = history.git_sha()

    def record(workload, wall, **meta):
        report = RunReport(wall_seconds=float(wall),
                           meta={"driver": "bench.noise", **meta})
        history.append_entry(
            history_path, history.summarize(report, workload, sha=sha))

    puf = payload["puf_reliability"]
    record(f"noise.puf.batched[{tag}]", puf["batched_seconds"],
           n_chips=puf["n_chips"], n_trials=puf["n_trials"])
    sde = payload["sharded_sde"]
    record(f"noise.sde.pool_warm[{tag}]", sde["pool_warm_seconds"],
           processes=sde["processes"])
    mask = payload["step_mask"]
    record(f"noise.step_mask.masked[{tag}]", mask["masked_seconds"],
           n_instances=mask["n_instances"])
    adaptive = payload["adaptive_sde"]
    record(f"noise.sde.adaptive[{tag}]",
           adaptive["adaptive"]["seconds"],
           nfev=adaptive["adaptive"]["nfev"],
           nfev_ratio=adaptive["nfev_ratio"])
    ripple = payload["correlated_noise"]
    record(f"noise.puf.ripple[{tag}]", ripple["shared_seconds"],
           n_chips=ripple["n_chips"], n_trials=ripple["n_trials"])
    print(f"appended 5 history entries to {history_path} (sha {sha})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep sizes for a fast CI check")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="result JSON path (defaults to "
                        "BENCH_noise.json, or BENCH_noise_smoke.json "
                        "with --smoke)")
    parser.add_argument("--history", default=None,
                        help="benchmark history JSONL to append "
                        "headline timings to (default: "
                        "benchmarks/history.jsonl; 'none' disables)")
    args = parser.parse_args(argv)
    if args.smoke:
        n_chips, n_trials, n_points = 2, 2, 120
        mask_instances, mask_points = 4, 30
        obc_trials, sigmas = 4, [0.0, 2e4]
    else:
        n_chips, n_trials, n_points = 8, 8, 400
        mask_instances, mask_points = 16, 60
        obc_trials, sigmas = 16, [0.0, 5e3, 2e4, 6e4]
    out = args.out or (SMOKE_RESULT_PATH if args.smoke
                       else DEFAULT_RESULT_PATH)

    puf = bench_puf(n_chips, n_trials, n_points)
    payload = {
        "benchmark": "transient-noise (SDE) engine: serial vs batched "
                     "vs sharded, plus step masks",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": args.smoke,
        "puf_reliability": puf,
        "sharded_sde": bench_sharded_sde(n_chips, n_trials, n_points,
                                         puf["serial_seconds"]),
        "step_mask": bench_step_mask(mask_instances, mask_points),
        "obc_noise_sweep": bench_obc(obc_trials, sigmas),
        "adaptive_sde": bench_adaptive_sde(args.smoke),
        "correlated_noise": bench_correlated_noise(
            n_chips, n_trials, n_points),
    }
    if not payload["sharded_sde"]["bit_identical"]:
        print("ERROR: sharded SDE result is not bit-identical",
              file=sys.stderr)
        return 1
    if not payload["sharded_sde"]["pool_bit_identical"]:
        print("ERROR: pool SDE result is not bit-identical",
              file=sys.stderr)
        return 1
    if not payload["sharded_sde"]["scheduling"]["bit_identical"]:
        print("ERROR: cost-scheduled SDE result is not bit-identical",
              file=sys.stderr)
        return 1
    if not payload["puf_reliability"]["responses_identical"]:
        print("ERROR: serial and batched responses differ",
              file=sys.stderr)
        return 1
    if not args.smoke and not payload["adaptive_sde"]["meets_2x"]:
        print("ERROR: adaptive SDE is not >= 2x cheaper than the "
              "matched fixed-step ladder", file=sys.stderr)
        return 1
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    if args.history != "none":
        history_path = args.history or (
            pathlib.Path(__file__).resolve().parent / "history.jsonl")
        append_history(payload, history_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
