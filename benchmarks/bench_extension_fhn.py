"""Extension — the FHN spiking-neuron paradigm: wave propagation vs
the scipy reference, the mismatch timing-jitter study, and the cost of
one ring simulation."""

import numpy as np
import pytest

import repro
from repro.paradigms.fhn import (NeuronSpec, fhn_reference,
                                 neuron_chain, neuron_ring,
                                 resting_point, wave_arrival_times)

from conftest import report

TIGHT = dict(rtol=1e-9, atol=1e-11)
RING = 10


@pytest.mark.benchmark(group="fhn-compile")
def test_ring_compile_cost(benchmark):
    graph = neuron_ring(RING, coupling=0.8)
    benchmark(repro.compile_graph, graph)


@pytest.mark.benchmark(group="fhn-simulate")
def test_ring_simulate_cost(benchmark):
    system = repro.compile_graph(neuron_ring(RING, coupling=0.8))
    benchmark.pedantic(repro.simulate, args=(system, (0.0, 60.0)),
                       kwargs=dict(n_points=301), rounds=3,
                       iterations=1)


def test_report_fhn():
    n = 6
    run = repro.simulate(neuron_chain(n, coupling=0.8), (0.0, 80.0),
                         n_points=801, **TIGHT)
    rest_v, rest_w = resting_point()
    v0 = np.full(n, rest_v)
    v0[0] = 1.5
    reference = fhn_reference(n, NeuronSpec(), 0.8, False, v0,
                              np.full(n, rest_w), run.t)
    worst = max(np.abs(run[f"U_{k}"] - reference[k]).max()
                for k in range(n))

    ideal = repro.simulate(neuron_ring(RING, coupling=0.8),
                           (0.0, 60.0), n_points=601, **TIGHT)
    baseline = np.array(wave_arrival_times(ideal, RING))
    shifts = []
    for seed in range(4):
        chip = repro.simulate(
            neuron_ring(RING, coupling=0.8, mismatched_coupling=True,
                        seed=seed), (0.0, 60.0), n_points=601, **TIGHT)
        arrivals = np.array(wave_arrival_times(chip, RING))
        shifts.append(float(np.sqrt(np.mean(
            (arrivals - baseline) ** 2))))

    rows = [
        f"6-neuron chain vs independent scipy integration: max abs "
        f"error {worst:.2e}",
        f"{RING}-neuron ring, ideal wave arrival at antipode "
        f"{baseline[RING // 2]:.2f} (stimulus at site 0, t=0)",
        "10% gap-junction mismatch, rms arrival-time shift per chip: "
        + ", ".join(f"{s:.3f}" for s in shifts),
    ]
    report("extension_fhn", rows)
    assert worst < 1e-7
    assert all(s > 0.01 for s in shifts)
