"""Extension — CNN template library and PDE solving: pixel-exactness of
every library template against its discrete reference, heat-equation
accuracy against the exact solution, and the cost of one template
application at two grid sizes."""

import numpy as np
import pytest

from repro.paradigms.cnn import (LIBRARY, apply_template,
                                 diffusion_step_response,
                                 run_library_template)
from repro.paradigms.cnn.library import DILATION_TEMPLATE

from conftest import report


def random_image(seed: int, size: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.where(rng.random((size, size)) < 0.4, 1.0, -1.0)


@pytest.mark.benchmark(group="cnn-template-apply")
@pytest.mark.parametrize("size", (8, 12))
def test_template_apply_cost(benchmark, size):
    image = random_image(0, size)
    benchmark.pedantic(apply_template, args=(image, DILATION_TEMPLATE),
                       rounds=3, iterations=1)


def test_report_library():
    rows = ["library template vs discrete reference "
            "(10 random 8x8 images each):"]
    for name in sorted(LIBRARY):
        errors = 0
        for seed in range(10):
            output, reference = run_library_template(
                random_image(seed, 8), name)
            errors += int((output != reference).sum())
        rows.append(f"  {name:10s}: {errors} wrong pixels / 640")
        assert errors == 0, name
    result = diffusion_step_response(size=8, rate=0.5,
                                     times=(0.5, 1.0, 2.0))
    worst = float(result["rmse"].max())
    rows.append(f"heat equation, 8x8 grid: worst RMSE vs exact "
                f"solution {worst:.2e}")
    report("extension_cnn_library", rows)
    assert worst < 1e-5
