"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one of the paper's tables or
figures (reduced size; ``benchmarks/run_experiments.py`` produces the
full-size numbers) and measures the performance of its computational
kernel with pytest-benchmark. Reproduced numbers are printed through
:func:`report`, which both echoes to stdout (visible with ``-s``) and
appends to ``benchmarks/_results/<name>.txt`` so the artifacts survive
output capturing.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


def report(name: str, lines: list[str]):
    """Print reproduction lines and persist them under _results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n[{name}]\n{text}")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def mismatch_maxcut_factory():
    """The shared ensemble-engine benchmark workload: one fabricated
    ``Cpl_ofs`` instance of the Table 1 4-cycle per seed, with fixed
    starting phases so every instance shares structure and the batched
    engine applies. Used by both the pytest benchmarks
    (``bench_table1_maxcut.py``) and the JSON trend runner
    (``run_bench_ensemble.py``) so they measure the same thing."""
    import math

    import numpy as np

    from repro.paradigms.obc import maxcut_network

    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    phases = np.random.default_rng(7).uniform(0.0, 2.0 * math.pi, 4)
    return lambda seed: maxcut_network(edges, 4, initial_phases=phases,
                                       edge_type="Cpl_ofs", seed=seed)


def pytest_collection_modifyitems(items):
    """Keep benchmark ordering stable: reports run after their
    benchmarks within each module (pytest preserves file order, this is
    just a no-op hook kept for clarity)."""
